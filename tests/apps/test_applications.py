"""Tests for the donor/recipient application corpus."""

import pytest

from repro.apps import (
    AppError,
    all_applications,
    donors,
    donors_for_format,
    get_application,
    recipients,
)
from repro.experiments import ERROR_CASES
from repro.formats import InputGenerator, get_format
from repro.lang import run_program


class TestRegistry:
    def test_fourteen_applications_registered(self):
        assert len(all_applications()) == 14
        assert len(donors()) == 7
        assert len(recipients()) == 7

    def test_unknown_application_raises(self):
        with pytest.raises(AppError):
            get_application("photoshop")

    def test_donors_for_each_format(self):
        assert {a.name for a in donors_for_format("jpeg")} == {"feh", "mtpaint", "viewnior"}
        assert {a.name for a in donors_for_format("swf")} == {"gnash"}
        assert {a.name for a in donors_for_format("dcp")} == {"wireshark-1.8.6"}

    def test_targets_resolve(self):
        assert get_application("cwebp").target("jpegdec.c:248").site_function == "ReadJPEG"
        with pytest.raises(AppError):
            get_application("cwebp").target("nope.c:1")


@pytest.mark.parametrize("app", all_applications(), ids=lambda a: a.full_name)
class TestEveryApplication:
    def test_compiles(self, app):
        assert app.program().function("main") is not None

    def test_processes_every_seed_input(self, app):
        for format_name in app.formats:
            fmt = get_format(format_name)
            seed = fmt.build()
            result = run_program(app.program(), seed, fmt.field_map(seed))
            assert result.accepted, f"{app.full_name} rejected the {format_name} seed"

    def test_processes_regression_corpus(self, app):
        for format_name in app.formats:
            fmt = get_format(format_name)
            for data in InputGenerator(fmt).regression_corpus(5):
                result = run_program(app.program(), data, fmt.field_map(data))
                assert result.ok, f"{app.full_name} crashed on a benign {format_name} input"


@pytest.mark.parametrize("case_id", sorted(ERROR_CASES), ids=str)
class TestErrorCases:
    def test_recipient_crashes_on_error_input(self, case_id):
        case = ERROR_CASES[case_id]
        fmt = get_format(case.format_name)
        error_input = case.error_input()
        result = run_program(case.application().program(), error_input, fmt.field_map(error_input))
        assert result.crashed
        assert result.error.kind is case.target().error_kind
        assert result.error.function == case.target().site_function

    def test_recipient_accepts_seed_input(self, case_id):
        case = ERROR_CASES[case_id]
        fmt = get_format(case.format_name)
        seed = case.seed_input()
        assert run_program(case.application().program(), seed, fmt.field_map(seed)).accepted

    def test_every_listed_donor_survives_both_inputs(self, case_id):
        case = ERROR_CASES[case_id]
        fmt = get_format(case.format_name)
        seed, error_input = case.seed_input(), case.error_input()
        for donor_name in case.donors:
            donor = get_application(donor_name)
            assert run_program(donor.program(), seed, fmt.field_map(seed)).ok
            assert run_program(donor.program(), error_input, fmt.field_map(error_input)).ok
