"""Scoped (temporary) application registration."""

from __future__ import annotations

import pytest

from repro.apps.registry import (
    AppError,
    Application,
    get_application,
    register_application,
    scoped_registration,
    unregister_application,
)

_SOURCE = """
int main() {
    u8 first = read_byte();
    emit((u32) first);
    return 0;
}
"""


def _synthetic(name: str) -> Application:
    return Application(
        name=name,
        version="0",
        source=_SOURCE,
        formats=("raw",),
        role="donor",
    )


class TestScopedRegistration:
    def test_registers_for_block_only(self):
        app = _synthetic("scoped-app")
        with scoped_registration(app):
            assert get_application("scoped-app") is app
        with pytest.raises(AppError):
            get_application("scoped-app")

    def test_reentry_after_exit_does_not_collide(self):
        app = _synthetic("scoped-app")
        with scoped_registration(app):
            pass
        with scoped_registration(app):
            assert get_application("scoped-app") is app

    def test_cleanup_on_exception(self):
        app = _synthetic("scoped-app")
        with pytest.raises(RuntimeError):
            with scoped_registration(app):
                raise RuntimeError("boom")
        with pytest.raises(AppError):
            get_application("scoped-app")

    def test_name_clash_rolls_back_partial_registration(self):
        first = _synthetic("scoped-one")
        clash = _synthetic("cwebp")  # permanently registered by the corpus
        with pytest.raises(AppError):
            with scoped_registration(first, clash):
                pass  # pragma: no cover - never reached
        # The partial registration must not leak.
        with pytest.raises(AppError):
            get_application("scoped-one")
        # And the permanent registration must be untouched.
        assert get_application("cwebp").name == "cwebp"

    def test_compiled_program_not_stale_across_scopes(self):
        app = _synthetic("scoped-app")
        with scoped_registration(app):
            first_program = app.program()
        # Same (name, version) cache key, different source: only the scope
        # teardown's cache invalidation keeps this from serving stale code.
        replacement = Application(
            name="scoped-app",
            version="0",
            source=_SOURCE.replace("emit((u32) first);", "emit(7);"),
            formats=("raw",),
            role="donor",
        )
        with scoped_registration(replacement):
            second_program = replacement.program()
        assert first_program is not second_program


class TestUnregister:
    def test_unregister_round_trip(self):
        app = register_application(_synthetic("transient-app"))
        try:
            assert get_application("transient-app") is app
        finally:
            removed = unregister_application("transient-app")
        assert removed is app
        with pytest.raises(AppError):
            get_application("transient-app")

    def test_unknown_name(self):
        with pytest.raises(AppError):
            unregister_application("never-registered")
