"""Documentation drift checks (tier-1 mirror of the CI docs step).

``tools/check_docs.py`` is what CI runs; these tests exercise the same
checker so stale module references in ``docs/ARCHITECTURE.md`` or
``README.md`` fail locally before they fail in CI.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_architecture_doc_references_exist():
    document = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert document.exists(), "docs/ARCHITECTURE.md is part of the repo contract"
    assert check_docs.stale_references(document) == []


def test_readme_references_exist():
    assert check_docs.stale_references(REPO_ROOT / "README.md") == []


def test_readme_links_architecture_doc():
    assert "docs/ARCHITECTURE.md" in (REPO_ROOT / "README.md").read_text()


def test_checker_flags_missing_paths(tmp_path):
    stale = tmp_path / "doc.md"
    stale.write_text("see `src/repro/no_such_module.py` and `repro.not.there`")
    assert check_docs.stale_references(stale) == [
        "repro.not.there",
        "src/repro/no_such_module.py",
    ]
