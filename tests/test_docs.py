"""Documentation drift checks (tier-1 mirror of the CI docs steps).

``tools/check_docs.py`` is what CI runs; these tests exercise the same
checker so stale module references or broken links in ``docs/*.md`` or
``README.md`` fail locally before they fail in CI.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_default_documents_cover_all_docs():
    documents = check_docs.default_documents()
    assert REPO_ROOT / "docs" / "ARCHITECTURE.md" in documents
    assert REPO_ROOT / "docs" / "SOLVER.md" in documents
    assert REPO_ROOT / "docs" / "SCENARIOS.md" in documents
    assert REPO_ROOT / "docs" / "OBSERVABILITY.md" in documents
    assert REPO_ROOT / "README.md" in documents


def test_architecture_doc_references_exist():
    document = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    assert document.exists(), "docs/ARCHITECTURE.md is part of the repo contract"
    assert check_docs.stale_references(document) == []


def test_solver_doc_references_exist():
    document = REPO_ROOT / "docs" / "SOLVER.md"
    assert document.exists(), "docs/SOLVER.md is part of the repo contract"
    assert check_docs.stale_references(document) == []


def test_scenarios_doc_references_exist():
    document = REPO_ROOT / "docs" / "SCENARIOS.md"
    assert document.exists(), "docs/SCENARIOS.md is part of the repo contract"
    assert check_docs.stale_references(document) == []


def test_observability_doc_references_exist():
    document = REPO_ROOT / "docs" / "OBSERVABILITY.md"
    assert document.exists(), "docs/OBSERVABILITY.md is part of the repo contract"
    assert check_docs.stale_references(document) == []


def test_readme_references_exist():
    assert check_docs.stale_references(REPO_ROOT / "README.md") == []


def test_no_broken_links_in_default_documents():
    for document in check_docs.default_documents():
        assert check_docs.stale_links(document) == [], document


def test_readme_links_architecture_and_solver_docs():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/SOLVER.md" in readme
    assert "docs/SCENARIOS.md" in readme
    assert "docs/OBSERVABILITY.md" in readme


def test_checker_flags_missing_paths(tmp_path):
    stale = tmp_path / "doc.md"
    stale.write_text("see `src/repro/no_such_module.py` and `repro.not.there`")
    assert check_docs.stale_references(stale) == [
        "repro.not.there",
        "src/repro/no_such_module.py",
    ]


def test_checker_flags_broken_markdown_links(tmp_path):
    doc = tmp_path / "doc.md"
    (tmp_path / "exists.md").write_text("ok")
    doc.write_text(
        "[good](exists.md) [anchored](exists.md#section) "
        "[bad](missing.md) [web](https://example.com/page.md)"
    )
    assert check_docs.stale_links(doc) == ["missing.md"]


def test_checker_flags_broken_wiki_links(tmp_path):
    doc = tmp_path / "doc.md"
    (tmp_path / "present.md").write_text("ok")
    doc.write_text("see [[present]] and [[absent]] and [[present|with a label]]")
    assert check_docs.stale_links(doc) == ["absent"]


def test_main_reports_failures(tmp_path, capsys):
    doc = tmp_path / "doc.md"
    doc.write_text("[bad](nowhere.md) and `repro.not.there`")
    # Default mode: code references only.
    assert check_docs.main([str(doc)]) == 1
    captured = capsys.readouterr().err
    assert "repro.not.there" in captured and "nowhere.md" not in captured
    # --links-only: links only — each CI step fails on its own class.
    assert check_docs.main(["--links-only", str(doc)]) == 1
    captured = capsys.readouterr().err
    assert "nowhere.md" in captured and "repro.not.there" not in captured
