"""Tests for DIODE-style overflow discovery and the field fuzzer."""

import pytest

from repro.apps import get_application
from repro.discovery import Diode, DiodeOptions, FieldFuzzer, FuzzerOptions, fuzz_for_error
from repro.discovery.errors import same_error
from repro.formats import get_format
from repro.lang import ErrorKind, run_program


class TestDiode:
    def test_allocation_sites_reported(self):
        app = get_application("cwebp")
        diode = Diode(app.program(), get_format("jpeg"))
        sites = diode.allocation_sites(get_format("jpeg").build())
        assert len(sites) == 1
        assert sites[0].function == "ReadJPEG"
        assert sites[0].fields() >= {"/start_frame/content/width", "/start_frame/content/height"}

    def test_discovers_cwebp_overflow(self):
        app = get_application("cwebp")
        fmt = get_format("jpeg")
        findings = Diode(app.program(), fmt).discover(fmt.build())
        assert findings, "DIODE failed to find the CWebP overflow"
        finding = findings[0]
        assert finding.site_function == "ReadJPEG"
        result = run_program(app.program(), finding.error_input, fmt.field_map(finding.error_input))
        assert result.crashed and result.error.kind in (
            ErrorKind.INTEGER_OVERFLOW,
            ErrorKind.OUT_OF_BOUNDS_WRITE,
        )

    def test_function_scope_restricts_search(self):
        app = get_application("swfplay")
        fmt = get_format("swf")
        diode = Diode(app.program(), fmt)
        findings = diode.discover(fmt.build(), site_function="jpeg_rgb_decode")
        assert all(f.site_function == "jpeg_rgb_decode" for f in findings)

    def test_no_findings_for_safe_program(self):
        app = get_application("feh")  # the donor checks its dimensions
        fmt = get_format("jpeg")
        assert Diode(app.program(), fmt, DiodeOptions(max_trials=60)).discover(fmt.build()) == []


class TestFuzzer:
    def test_finds_gif2tiff_out_of_bounds(self):
        app = get_application("gif2tiff")
        fmt = get_format("gif")
        finding = fuzz_for_error(app.program(), fmt, iterations=400, application="gif2tiff")
        assert finding is not None
        assert finding.report.kind is ErrorKind.OUT_OF_BOUNDS_WRITE
        # The error-triggering input mutates the LZW code size field.
        assert fmt.parse(finding.error_input)["/image/code_size"] > 12

    def test_finds_wireshark_divide_by_zero(self):
        app = get_application("wireshark-1.4.14")
        fmt = get_format("dcp")
        fuzzer = FieldFuzzer(app.program(), fmt, FuzzerOptions(iterations=300, stop_after=1))
        findings = fuzzer.campaign(application="wireshark")
        assert findings and findings[0].report.kind is ErrorKind.DIVIDE_BY_ZERO

    def test_crashing_seed_rejected(self):
        app = get_application("wireshark-1.4.14")
        fmt = get_format("dcp")
        bad_seed = fmt.build({"/dcp/plen": 0})
        with pytest.raises(ValueError):
            FieldFuzzer(app.program(), fmt).campaign(bad_seed)

    def test_deduplication_by_error_site(self):
        app = get_application("gif2tiff")
        fmt = get_format("gif")
        fuzzer = FieldFuzzer(app.program(), fmt, FuzzerOptions(iterations=400))
        findings = fuzzer.campaign(application="gif2tiff")
        sites = [(f.report.function, f.report.line) for f in findings]
        assert len(sites) == len(set(sites))

    def test_same_error_helper(self):
        app = get_application("wireshark-1.4.14")
        fmt = get_format("dcp")
        finding = fuzz_for_error(app.program(), fmt, iterations=300)
        assert finding is not None
        assert same_error(finding.report, finding.report)
