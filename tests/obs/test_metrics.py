"""Metrics registry unit tests: switch semantics, merging, event folding."""

import pytest

from repro.core.events import (
    CandidateRejected,
    DonorAttempted,
    PatchValidated,
    ResidualErrorFound,
    StageFinished,
)
from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Histogram,
    MetricsEventObserver,
    MetricsRegistry,
    merge_snapshots,
)


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.enable()
    return registry


class TestSwitch:
    def test_disabled_by_default_and_recording_is_a_no_op(self):
        registry = MetricsRegistry()
        assert not registry.enabled
        registry.inc("a")
        registry.set_gauge("b", 3)
        registry.gauge_max("c", 9)
        registry.observe("d", 0.5)
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_keeps_the_switch(self, registry):
        registry.inc("a", 2)
        registry.reset()
        assert registry.enabled
        assert registry.counter("a") == 0


class TestRecording:
    def test_counters_accumulate(self, registry):
        registry.inc("queries")
        registry.inc("queries", 4)
        assert registry.counter("queries") == 5

    def test_gauges_keep_last_and_max(self, registry):
        registry.set_gauge("depth", 7)
        registry.set_gauge("depth", 2)
        assert registry.gauge("depth") == 2
        registry.gauge_max("peak", 3)
        registry.gauge_max("peak", 1)
        assert registry.gauge("peak") == 3

    def test_histograms_bucket_and_track_extremes(self, registry):
        registry.observe("seconds", 0.0002)
        registry.observe("seconds", 2.0)
        histogram = registry.histogram("seconds")
        assert histogram.count == 2
        assert histogram.minimum == 0.0002
        assert histogram.maximum == 2.0
        assert sum(histogram.buckets) == 2

    def test_overflow_bucket_catches_large_observations(self):
        histogram = Histogram()
        histogram.observe(max(DEFAULT_BOUNDS) * 10)
        assert histogram.buckets[-1] == 1


class TestMerging:
    def test_merge_snapshot_adds_counters_and_keeps_peak_gauges(self, registry):
        registry.inc("n", 1)
        registry.set_gauge("g", 5)
        other = MetricsRegistry()
        other.enable()
        other.inc("n", 2)
        other.set_gauge("g", 3)
        registry.merge_snapshot(other.snapshot())
        assert registry.counter("n") == 3
        assert registry.gauge("g") == 5

    def test_merge_works_while_disabled(self):
        registry = MetricsRegistry()
        registry.merge_snapshot({"counters": {"n": 4}})
        assert registry.counter("n") == 4

    def test_merge_histograms_bucketwise(self, registry):
        registry.observe("h", 0.001)
        other = MetricsRegistry()
        other.enable()
        other.observe("h", 10.0)
        registry.merge_snapshot(other.snapshot())
        histogram = registry.histogram("h")
        assert histogram.count == 2
        assert histogram.maximum == 10.0

    def test_merge_snapshots_helper_folds_plain_dicts(self):
        target = {}
        merge_snapshots(target, {"counters": {"a": 1}, "gauges": {"g": 2}})
        merge_snapshots(target, {"counters": {"a": 2}, "gauges": {"g": 1}})
        assert target["counters"]["a"] == 3
        assert target["gauges"]["g"] == 2


class TestEventObserver:
    def test_folds_the_event_taxonomy_into_counters(self, registry):
        observer = MetricsEventObserver(registry)
        observer(StageFinished(stage="validation", elapsed_s=0.5))
        observer(DonorAttempted(donor="feh", index=0, total=2))
        observer(CandidateRejected(kind="check", function="f", line=3, reason="r"))
        observer(PatchValidated(donor="feh", function="f", line=3, excised_size=4, translated_size=3))
        observer(ResidualErrorFound(count=2, round_index=0))
        assert registry.counter("pipeline.stage.validation.runs") == 1
        assert registry.counter("pipeline.stage.validation.seconds") == 0.5
        assert registry.counter("pipeline.donor_attempts") == 1
        assert registry.counter("pipeline.rejected.check") == 1
        assert registry.counter("pipeline.patches_validated") == 1
        assert registry.counter("pipeline.residual_errors") == 2
        assert registry.histogram("pipeline.stage_seconds").count == 1

    def test_observer_is_a_no_op_while_disabled(self):
        registry = MetricsRegistry()
        observer = MetricsEventObserver(registry)
        observer(StageFinished(stage="validation", elapsed_s=0.5))
        assert registry.snapshot()["counters"] == {}
