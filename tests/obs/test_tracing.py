"""Tracing tests: span mechanics, exports, and real-transfer coverage."""

import json

import pytest

from repro import api
from repro.core.events import (
    DonorAttempted,
    StageFinished,
    StageStarted,
    events_as_dicts,
)
from repro.core.stages import TransferEngine
from repro.experiments import ERROR_CASES
from repro.obs.tracing import (
    TraceObserver,
    Tracer,
    activate,
    active,
    deactivate,
    record_span,
    spans_from_events,
    trace_session,
    tracer_from_events,
)


class TestTracerMechanics:
    def test_spans_nest_under_the_open_stack(self):
        tracer = Tracer()
        outer = tracer.begin("outer", "stage")
        inner = tracer.begin("inner", "stage")
        tracer.end(inner)
        tracer.end(outer)
        spans = {span.name: span for span in tracer.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None

    def test_end_by_id_closes_stragglers_above_it(self):
        tracer = Tracer()
        outer = tracer.begin("outer", "stage")
        tracer.begin("straggler", "stage")
        tracer.end(outer)
        assert {span.name for span in tracer.spans} == {"outer", "straggler"}
        assert not tracer._stack

    def test_record_makes_a_leaf_under_the_open_span(self):
        tracer = Tracer()
        tracer.begin("stage", "stage")
        leaf = tracer.record("query", "solver", 0.01, cached=False)
        assert leaf.parent_id is not None
        assert leaf.attrs == {"cached": False}

    def test_finish_closes_everything(self):
        tracer = Tracer()
        tracer.begin("a", "x")
        tracer.begin("b", "x")
        tracer.finish()
        assert len(tracer.spans) == 2


class TestActiveTracer:
    def test_activation_stack_and_module_hook(self):
        assert active() is None
        tracer = Tracer()
        activate(tracer)
        try:
            assert active() is tracer
            record_span("q", "solver", 0.001)
            assert tracer.spans[0].name == "q"
        finally:
            deactivate(tracer)
        assert active() is None
        record_span("dropped", "solver", 0.001)  # no-op without a tracer
        assert len(tracer.spans) == 1

    def test_trace_session_finishes_and_deactivates(self):
        tracer = Tracer()
        with trace_session(tracer):
            tracer.begin("open", "stage")
            assert active() is tracer
        assert active() is None
        assert tracer.spans[0].name == "open"


class TestExports:
    def _traced(self):
        tracer = Tracer()
        span = tracer.begin("stage", "stage", round=0)
        tracer.record("query", "solver", 0.002)
        tracer.end(span)
        return tracer

    def test_jsonl_roundtrips_span_dicts(self):
        tracer = self._traced()
        lines = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
        assert {line["name"] for line in lines} == {"stage", "query"}
        assert all("span_id" in line and "duration_s" in line for line in lines)

    def test_chrome_export_shape(self):
        chrome = self._traced().to_chrome()
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        assert all(event["ph"] == "X" for event in events)
        assert all(event["ts"] >= 0 and event["dur"] >= 0 for event in events)
        assert {event["name"] for event in events} == {"stage", "query"}

    def test_write_both_formats(self, tmp_path):
        tracer = self._traced()
        jsonl = tracer.write(tmp_path / "trace.jsonl")
        chrome = tracer.write(tmp_path / "trace.json", chrome=True)
        assert len(jsonl.read_text().splitlines()) == 2
        assert json.loads(chrome.read_text())["traceEvents"]


class TestEventFolding:
    def test_observer_brackets_stage_events(self):
        tracer = Tracer()
        observer = TraceObserver(tracer)
        observer(DonorAttempted(donor="feh", index=0, total=1))
        observer(StageStarted(stage="excision", round_index=0))
        observer(StageFinished(stage="excision", elapsed_s=0.1, round_index=0))
        tracer.finish()
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["excision"].category == "stage"
        assert by_name["excision"].parent_id == by_name["donor feh"].span_id
        assert by_name["donor feh"].parent_id == by_name["transfer"].span_id

    def test_spans_from_events_accepts_dicts_with_virtual_clock(self):
        events = [
            StageStarted(stage="excision"),
            StageFinished(stage="excision", elapsed_s=0.25),
            StageStarted(stage="validation"),
            StageFinished(stage="validation", elapsed_s=0.5),
        ]
        spans = spans_from_events(events_as_dicts(events))
        by_name = {span.name: span for span in spans}
        assert by_name["excision"].duration_s == pytest.approx(0.25)
        assert by_name["validation"].duration_s == pytest.approx(0.5)
        assert by_name["validation"].start_s == pytest.approx(0.25)

    def test_tracer_from_events_is_exportable(self):
        events = [
            StageStarted(stage="excision"),
            StageFinished(stage="excision", elapsed_s=0.25),
        ]
        tracer = tracer_from_events(events)
        assert tracer.to_chrome()["traceEvents"]


class TestRealTransferCoverage:
    @pytest.fixture(scope="class")
    def traced_transfer(self):
        case = ERROR_CASES["cwebp-jpegdec"]
        tracer = Tracer()
        with trace_session(tracer):
            report = api.repair(
                api.RepairRequest(
                    recipient=case.application(),
                    target=case.target(),
                    seed=case.seed_input(),
                    error_input=case.error_input(),
                    format_name="jpeg",
                    donor="feh",
                ),
                observers=[TraceObserver(tracer)],
            )
        return tracer, report

    def test_every_executed_stage_has_a_span(self, traced_transfer):
        tracer, report = traced_transfer
        assert report.success
        stage_spans = {
            span.name for span in tracer.spans if span.category == "stage"
        }
        executed = {
            event.stage for event in report.events if isinstance(event, StageFinished)
        }
        assert executed <= stage_spans
        candidate_stages = {stage.name for stage in TransferEngine.CANDIDATE_STAGES}
        assert candidate_stages <= stage_spans

    def test_every_solver_query_has_a_span(self, traced_transfer):
        tracer, report = traced_transfer
        solver_spans = [span for span in tracer.spans if span.category == "solver"]
        query_spans = [
            span for span in solver_spans if span.name == "solver-equivalence"
        ]
        assert len(query_spans) == report.metrics.solver_queries
        # Live solver spans nest inside a stage span of the trace tree.
        by_id = {span.span_id: span for span in tracer.spans}
        for span in solver_spans:
            assert span.parent_id in by_id

    def test_vm_runs_are_traced(self, traced_transfer):
        tracer, _ = traced_transfer
        vm_spans = [
            span
            for span in tracer.spans
            if span.category == "vm" and span.name == "vm-run"
        ]
        assert vm_spans
        assert all(span.attrs["steps"] > 0 for span in vm_spans)

    def test_vm_spans_carry_the_execution_tier(self, traced_transfer):
        tracer, _ = traced_transfer
        vm_spans = [span for span in tracer.spans if span.name == "vm-run"]
        tiers = {span.attrs.get("tier") for span in vm_spans}
        assert tiers <= {"compiled", "interpreter"}
        assert None not in tiers
        # The compiled tier is the default, so it must dominate the trace.
        assert "compiled" in tiers

    def test_interpreter_runs_are_labeled_as_such(self):
        from repro.lang import VM, VMConfig, compile_program

        program = compile_program("int main() { emit(1); return 0; }")
        tracer = Tracer()
        with trace_session(tracer):
            VM(program, config=VMConfig(use_compiled=False)).run(b"")
            VM(program, config=VMConfig(use_compiled=True)).run(b"")
        tiers = [
            span.attrs["tier"] for span in tracer.spans if span.name == "vm-run"
        ]
        assert tiers == ["interpreter", "compiled"]
