"""Per-node distributed gauges must survive the coordinator's snapshot merge.

Gauges merge by *maximum* (peak-across-sources semantics), so two nodes
reporting the same gauge name would shadow each other.  The coordinator
therefore namespaces per-node gauges (``dist.node.<id>.*``) — distinct
names survive any merge order — and these tests pin that contract.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

from repro.campaign import RunStore, expand_plan
from repro.core.reporting import TransferRecord
from repro.dist import DistOptions, DistributedCoordinator
from repro.obs.metrics import MetricsRegistry, merge_snapshots


def test_distinct_node_gauge_names_survive_merge():
    merged: dict = {}
    merge_snapshots(
        merged,
        {
            "counters": {"dist.steals": 2, "dist.cache_hops": 5},
            "gauges": {
                "dist.node.node-0.queue_depth_peak": 7,
                "dist.node.node-0.utilization": 0.9,
            },
        },
    )
    merge_snapshots(
        merged,
        {
            "counters": {"dist.steals": 1, "dist.cache_hops": 3},
            "gauges": {
                "dist.node.node-1.queue_depth_peak": 4,
                "dist.node.node-1.utilization": 0.5,
            },
        },
    )
    # Counters add across sources; namespaced gauges all survive.
    assert merged["counters"]["dist.steals"] == 3
    assert merged["counters"]["dist.cache_hops"] == 8
    assert merged["gauges"]["dist.node.node-0.queue_depth_peak"] == 7
    assert merged["gauges"]["dist.node.node-1.queue_depth_peak"] == 4
    assert merged["gauges"]["dist.node.node-0.utilization"] == 0.9
    assert merged["gauges"]["dist.node.node-1.utilization"] == 0.5


def test_same_name_gauges_keep_the_peak():
    registry = MetricsRegistry()
    registry.merge_snapshot({"gauges": {"campaign.queue_depth_peak": 3}})
    registry.merge_snapshot({"gauges": {"campaign.queue_depth_peak": 9}})
    registry.merge_snapshot({"gauges": {"campaign.queue_depth_peak": 5}})
    assert registry.gauge("campaign.queue_depth_peak") == 9


def _fake_record(payload: dict) -> dict:
    return asdict(
        TransferRecord(
            recipient=payload["case_id"],
            target="site:1",
            donor=payload["donor"],
            success=True,
            generation_time_s=0.01,
            relevant_branches=1,
            flipped_branches="1",
            used_checks=1,
            insertion_points="1 - 0 - 0 = 1",
            check_size="2 -> 1",
        )
    )


def snapshot_runner(payload: dict, cache_spec) -> dict:
    """Ship a worker-style metrics snapshot with per-job dist counters."""
    return {
        "record": _fake_record(payload),
        "elapsed_s": 0.01,
        "metrics": {
            "counters": {
                "dist.cache_hops": 2,
                "dist.cache_local_hits": 5,
                "solver.queries": 3,
            },
            "gauges": {},
            "histograms": {},
        },
    }


def test_coordinator_merges_node_snapshots_and_gauges(tmp_path):
    plan = expand_plan(cases=["cwebp-jpegdec", "swfplay-rgb"], name="obs-dist")
    store = RunStore(tmp_path / "run")
    store.initialise(plan)
    report = DistributedCoordinator(
        plan,
        store,
        DistOptions(nodes=2, start_method="fork", poll_interval_s=0.01),
        runner=snapshot_runner,
    ).run()

    counters = report.metrics["counters"]
    gauges = report.metrics["gauges"]
    # Worker snapshots folded in: counters add across jobs and nodes.
    assert counters["dist.cache_hops"] == 2 * len(plan)
    assert counters["dist.cache_local_hits"] == 5 * len(plan)
    assert counters["solver.queries"] == 3 * len(plan)
    # The coordinator's own control-plane metrics are merged alongside.
    assert gauges["dist.nodes"] == 2
    assert "campaign.worker_utilization" in gauges
    for node_id in ("node-0", "node-1"):
        assert f"dist.node.{node_id}.utilization" in gauges
        assert f"dist.node.{node_id}.cache_hops" in gauges
    # Per-node hop attribution sums back to the global counter.
    attributed = sum(
        gauges[f"dist.node.{node_id}.cache_hops"] for node_id in ("node-0", "node-1")
    )
    assert attributed == counters["dist.cache_hops"]
    # The summary renders the distributed line from these merged metrics.
    assert "distributed: 2 nodes" in report.summary()
