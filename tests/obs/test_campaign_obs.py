"""Campaign telemetry: worker payloads, store persistence, trace/bundle CLI."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import cli
from repro.campaign import CampaignScheduler, RunStore, SchedulerOptions, expand_plan
from repro.core.reporting import TransferRecord
from repro.obs import metrics as obs_metrics
from repro.obs.schema import ensure_valid_bundle


def _stub_record(job) -> TransferRecord:
    return TransferRecord(
        recipient=job["case_id"],
        target="t",
        donor=job["donor"],
        success=True,
        generation_time_s=0.1,
        relevant_branches=1,
        flipped_branches="1",
        used_checks=1,
        insertion_points="-",
        check_size="1",
    )


def stub_runner(payload: dict, cache_path) -> dict:
    """Module-level (picklable) runner emitting a canned telemetry payload."""
    return {
        "record": dataclasses.asdict(_stub_record(payload)),
        "elapsed_s": 0.01,
        "events": [
            {"event": "StageStarted", "stage": "excision", "round_index": 0},
            {"event": "StageFinished", "stage": "excision", "elapsed_s": 0.01, "round_index": 0},
        ],
        "metrics": {
            "counters": {
                "solver.queries": 7,
                "vm.instructions_retired": 100,
                "vm.runs": 5,
                "vm.runs_compiled": 4,
                "vm.runs_interpreted": 1,
                "vm.compiles": 2,
                "vm.compile_cache_hits": 3,
            },
            "gauges": {},
            "histograms": {},
        },
    }


class TestWorkerPayloadPlumbing:
    @pytest.fixture
    def campaign(self, tmp_path):
        plan = expand_plan(cases=["cwebp-jpegdec"], name="obs-stub")
        store = RunStore(tmp_path / "run")
        store.initialise(plan)
        scheduler = CampaignScheduler(
            plan, store, SchedulerOptions(jobs=2, start_method="fork"), runner=stub_runner
        )
        return plan, store, scheduler.run()

    def test_events_are_persisted_per_job(self, campaign):
        plan, store, report = campaign
        assert report.completed == len(plan)
        for job_id in plan.job_ids():
            events = store.load_event_dicts(job_id)
            assert [event["event"] for event in events] == ["StageStarted", "StageFinished"]

    def test_worker_metrics_are_merged_into_the_report(self, campaign):
        plan, _, report = campaign
        counters = report.metrics.get("counters") or {}
        assert counters["solver.queries"] == 7 * len(plan)
        assert counters["vm.instructions_retired"] == 100 * len(plan)
        # Scheduler-side gauges ride along with the worker counters.
        gauges = report.metrics.get("gauges") or {}
        assert 0.0 <= gauges["campaign.worker_utilization"] <= 1.0
        assert "telemetry:" in report.summary()
        assert "workers:" in report.summary()

    def test_execution_tier_counters_surface_in_the_report(self, campaign):
        plan, _, report = campaign
        counters = report.metrics.get("counters") or {}
        assert counters["vm.runs_compiled"] == 4 * len(plan)
        assert counters["vm.runs_interpreted"] == 1 * len(plan)
        assert counters["vm.compile_cache_hits"] == 3 * len(plan)
        summary = report.summary()
        assert "execution tiers:" in summary
        assert f"{4 * len(plan)} compiled / {1 * len(plan)} interpreted" in summary


class TestStoreEventsDirectory:
    def test_roundtrip_and_overwrite(self, tmp_path):
        plan = expand_plan(cases=["cwebp-jpegdec"], name="events")
        store = RunStore(tmp_path / "run")
        store.initialise(plan)
        job_id = plan.job_ids()[0]
        store.write_events(job_id, [{"event": "A"}, {"event": "B"}])
        store.write_events(job_id, [{"event": "C"}])  # latest attempt wins
        assert store.load_event_dicts(job_id) == [{"event": "C"}]

    def test_missing_and_torn_lines_are_tolerated(self, tmp_path):
        plan = expand_plan(cases=["cwebp-jpegdec"], name="events")
        store = RunStore(tmp_path / "run")
        store.initialise(plan)
        assert store.load_event_dicts("absent") == []
        path = store.events_path("torn")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"event": "A"}\n\n{truncat')
        assert store.load_event_dicts("torn") == [{"event": "A"}]

    def test_fresh_initialise_clears_events(self, tmp_path):
        plan = expand_plan(cases=["cwebp-jpegdec"], name="events")
        store = RunStore(tmp_path / "run")
        store.initialise(plan)
        store.write_events(plan.job_ids()[0], [{"event": "A"}])
        store.initialise(plan, fresh=True)
        assert store.load_event_dicts(plan.job_ids()[0]) == []


class TestTraceAndBundleCli:
    @pytest.fixture(scope="class")
    def real_campaign(self, tmp_path_factory):
        """One real single-job campaign backing the post-hoc CLI commands."""
        plan = expand_plan(cases=["cwebp-jpegdec"], donors=["feh"], name="obs-cli")
        store = RunStore(tmp_path_factory.mktemp("obs-cli") / "run")
        store.initialise(plan)
        report = CampaignScheduler(
            plan, store, SchedulerOptions(jobs=1, start_method="fork")
        ).run()
        assert report.completed == 1 and not report.failed
        return store, plan.job_ids()[0]

    def test_trace_command_reconstructs_spans(self, real_campaign, tmp_path, capsys):
        store, job_id = real_campaign
        out = tmp_path / "trace.jsonl"
        assert cli.main(
            ["trace", job_id, "--store", str(store.directory), "--out", str(out)]
        ) == 0
        spans = [json.loads(line) for line in out.read_text().splitlines()]
        names = {span["name"] for span in spans}
        assert "transfer" in names and "validation" in names

    def test_trace_command_chrome_export(self, real_campaign, tmp_path):
        store, job_id = real_campaign
        out = tmp_path / "trace.json"
        assert cli.main(
            ["trace", job_id, "--store", str(store.directory), "--out", str(out), "--chrome"]
        ) == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_bundle_command_exports_a_valid_bundle(self, real_campaign, tmp_path):
        store, job_id = real_campaign
        out = tmp_path / "bundle.json"
        assert cli.main(
            ["bundle", job_id, "--store", str(store.directory), "--out", str(out)]
        ) == 0
        bundle = json.loads(out.read_text())
        ensure_valid_bundle(bundle)
        assert bundle["repair"]["success"] is True
        assert bundle["events"]

    def test_unknown_job_id_fails_cleanly(self, real_campaign, tmp_path, capsys):
        store, _ = real_campaign
        assert cli.main(["trace", "feedface0000", "--store", str(store.directory)]) != 0


class TestProgressMetricsLine:
    def test_none_while_disabled(self):
        from repro.api.progress import ProgressPrinter

        obs_metrics.REGISTRY.disable()
        assert ProgressPrinter().metrics_line() is None

    def test_formats_live_counters_when_enabled(self):
        from repro.api.progress import ProgressPrinter

        registry = obs_metrics.REGISTRY
        registry.reset()
        registry.enable()
        try:
            registry.inc("pipeline.donor_attempts", 2)
            registry.inc("solver.queries", 10)
            registry.inc("solver.cache_hits", 5)
            registry.inc("vm.instructions_retired", 123)
            line = ProgressPrinter().metrics_line()
        finally:
            registry.reset()
            registry.disable()
        assert "2 donor attempt(s)" in line
        assert "10 solver queries (50% cache hits)" in line
        assert "123 VM instructions" in line
