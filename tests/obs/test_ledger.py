"""Perf-trajectory ledger tests: summaries, entries, gating, check_perf CLI."""

import json
import sys
from pathlib import Path

import pytest

from repro.obs.ledger import (
    GATED_COUNTERS,
    LedgerError,
    append_entry,
    baseline_entry,
    check_results,
    compare_entries,
    empty_ledger,
    entry_from_summaries,
    is_summary,
    load_ledger,
    load_summaries,
    make_summary,
)

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"


def _write_summary(results_dir, name, total_ms, counters=None):
    results_dir.mkdir(exist_ok=True)
    summary = make_summary(name, {"total": total_ms}, counters=counters)
    (results_dir / f"{name}.json").write_text(json.dumps(summary))
    return summary


class TestSummaries:
    def test_total_is_computed_from_the_parts(self):
        summary = make_summary("b", {"parse": 10.0, "solve": 30.0})
        assert summary["wall_ms"]["total"] == 40.0

    def test_explicit_total_is_kept(self):
        summary = make_summary("b", {"parse": 10.0, "total": 99.0})
        assert summary["wall_ms"]["total"] == 99.0

    def test_is_summary_rejects_legacy_shapes(self):
        assert not is_summary({"stages": {"validation": 1.0}})
        assert is_summary(make_summary("b", {"total": 1.0}))

    def test_load_summaries_skips_non_summary_json(self, tmp_path):
        _write_summary(tmp_path, "good", 5.0)
        (tmp_path / "legacy.json").write_text('{"rows": []}')
        (tmp_path / "torn.json").write_text("{not json")
        summaries = load_summaries(tmp_path)
        assert set(summaries) == {"good"}

    def test_missing_results_dir_is_empty(self, tmp_path):
        assert load_summaries(tmp_path / "nope") == {}


class TestLedgerFile:
    def test_absent_file_is_an_empty_ledger(self, tmp_path):
        ledger = load_ledger(tmp_path / "trajectory.json")
        assert ledger == empty_ledger()
        assert baseline_entry(ledger) is None

    def test_append_creates_and_accumulates(self, tmp_path):
        path = tmp_path / "trajectory.json"
        summaries = {"b": make_summary("b", {"total": 10.0})}
        append_entry(path, entry_from_summaries(summaries, label="first"))
        ledger = append_entry(path, entry_from_summaries(summaries, label="second"))
        assert [entry["label"] for entry in ledger["entries"]] == ["first", "second"]
        assert baseline_entry(load_ledger(path))["label"] == "second"

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other"}')
        with pytest.raises(LedgerError):
            load_ledger(path)

    def test_entry_requires_summaries(self):
        with pytest.raises(LedgerError):
            entry_from_summaries({})


class TestGating:
    def _entry(self, total_ms, share=None):
        counters = {"validation_share": share} if share is not None else {}
        return entry_from_summaries(
            {"bench": make_summary("bench", {"total": total_ms}, counters=counters)}
        )

    def test_within_allowance_passes(self):
        assert compare_entries(self._entry(100.0), self._entry(124.0)) == []

    def test_wall_time_regression_is_caught(self):
        regressions = compare_entries(self._entry(100.0), self._entry(130.0))
        assert len(regressions) == 1
        regression = regressions[0]
        assert regression.metric == "wall_ms.total"
        assert regression.ratio == pytest.approx(1.3)
        assert "+30" in regression.describe()

    def test_gated_counter_regression_is_caught(self):
        assert "validation_share" in GATED_COUNTERS
        regressions = compare_entries(
            self._entry(100.0, share=0.6), self._entry(100.0, share=0.9)
        )
        assert [r.metric for r in regressions] == ["counters.validation_share"]

    def test_improvements_never_fail(self):
        assert compare_entries(self._entry(100.0, share=0.8), self._entry(50.0, share=0.4)) == []

    def test_unshared_benchmarks_are_ignored(self):
        baseline = entry_from_summaries({"a": make_summary("a", {"total": 1.0})})
        current = entry_from_summaries({"b": make_summary("b", {"total": 1000.0})})
        assert compare_entries(baseline, current) == []

    def test_check_results_end_to_end(self, tmp_path):
        results = tmp_path / "results"
        ledger_path = tmp_path / "trajectory.json"
        _write_summary(results, "bench", 100.0)
        append_entry(ledger_path, entry_from_summaries(load_summaries(results)))
        # No change: passes.
        regressions, summaries = check_results(ledger_path, results)
        assert regressions == [] and set(summaries) == {"bench"}
        # 2x slower: gated.
        _write_summary(results, "bench", 200.0)
        regressions, _ = check_results(ledger_path, results)
        assert [r.metric for r in regressions] == ["wall_ms.total"]


class TestCheckPerfCli:
    @pytest.fixture
    def check_perf(self):
        sys.path.insert(0, str(TOOLS_DIR))
        try:
            import check_perf

            yield check_perf
        finally:
            sys.path.remove(str(TOOLS_DIR))

    def test_append_then_gate_cycle(self, check_perf, tmp_path, capsys):
        results = tmp_path / "results"
        ledger_path = tmp_path / "trajectory.json"
        _write_summary(results, "bench", 100.0)
        base_args = ["--ledger", str(ledger_path), "--results", str(results)]

        # Empty ledger: nothing to gate against, passes with a note.
        assert check_perf.main(base_args) == 0
        assert "nothing to gate against" in capsys.readouterr().out

        assert check_perf.main(base_args + ["--append", "--label", "seed"]) == 0
        assert check_perf.main(base_args) == 0
        assert "OK" in capsys.readouterr().out

        _write_summary(results, "bench", 400.0)
        assert check_perf.main(base_args) == 1
        assert "FAIL" in capsys.readouterr().err

        # A generous allowance lets the same results pass.
        assert check_perf.main(base_args + ["--max-regression", "4.0"]) == 0

    def test_append_with_no_summaries_errors(self, check_perf, tmp_path):
        args = [
            "--ledger", str(tmp_path / "t.json"),
            "--results", str(tmp_path / "empty"),
            "--append",
        ]
        assert check_perf.main(args) == 2

    def test_committed_ledger_has_a_baseline(self, check_perf):
        ledger = load_ledger(TOOLS_DIR.parent / "benchmarks" / "trajectory.json")
        assert baseline_entry(ledger) is not None
