"""Evidence bundle tests: schema registry, validator, builders."""

import pytest

from repro import api
from repro.experiments import ERROR_CASES
from repro.obs.bundle import (
    BundleError,
    build_bundle,
    bundle_from_report,
    bundle_from_store,
    load_bundle,
    write_bundle,
)
from repro.obs.schema import (
    BUNDLE_SCHEMA,
    LATEST_SCHEMA_VERSION,
    SCHEMA_VERSIONS,
    SchemaError,
    ensure_valid_bundle,
    validate_bundle,
)


@pytest.fixture(scope="module")
def transfer_report():
    case = ERROR_CASES["cwebp-jpegdec"]
    return api.repair(
        api.RepairRequest(
            recipient=case.application(),
            target=case.target(),
            seed=case.seed_input(),
            error_input=case.error_input(),
            format_name="jpeg",
            donor="feh",
        )
    )


@pytest.fixture(scope="module")
def bundle(transfer_report):
    return bundle_from_report(transfer_report)


class TestSchemaRegistry:
    def test_latest_version_is_registered(self):
        assert LATEST_SCHEMA_VERSION in SCHEMA_VERSIONS

    def test_unknown_version_is_rejected(self, bundle):
        broken = dict(bundle, schema_version=LATEST_SCHEMA_VERSION + 1)
        errors = validate_bundle(broken)
        assert any("schema_version" in error for error in errors)

    def test_wrong_schema_tag_is_rejected(self, bundle):
        errors = validate_bundle(dict(bundle, schema="something-else"))
        assert errors

    def test_missing_section_is_reported_by_path(self, bundle):
        broken = {key: value for key, value in bundle.items() if key != "solver"}
        errors = validate_bundle(broken)
        assert any("solver" in error for error in errors)

    def test_type_violations_are_reported(self, bundle):
        broken = dict(bundle, repair=dict(bundle["repair"], success="yes"))
        errors = validate_bundle(broken)
        assert any("repair.success" in error for error in errors)

    def test_ensure_valid_raises_schema_error(self, bundle):
        with pytest.raises(SchemaError):
            ensure_valid_bundle(dict(bundle, events="not-a-list"))


class TestBundleFromReport:
    def test_validates_against_the_latest_schema(self, bundle):
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["schema_version"] == LATEST_SCHEMA_VERSION
        assert validate_bundle(bundle) == []

    def test_carries_the_repair_verdict_and_provenance(self, bundle, transfer_report):
        assert bundle["repair"]["success"] is transfer_report.success
        assert bundle["repair"]["donor"] == "feh-2.9.3"
        assert bundle["provenance"]["validated_checks"], "no validated check recorded"
        check = bundle["provenance"]["validated_checks"][0]
        assert check["excised_size"] > 0

    def test_embeds_the_full_event_stream(self, bundle, transfer_report):
        assert len(bundle["events"]) == len(transfer_report.events)
        assert all("event" in event for event in bundle["events"])

    def test_solver_accounting_matches_the_metrics(self, bundle, transfer_report):
        assert bundle["solver"]["queries"] == transfer_report.metrics.solver_queries
        assert bundle["solver"]["backend"] == "cdcl"

    def test_roundtrips_through_disk(self, bundle, tmp_path):
        path = write_bundle(bundle, tmp_path / "bundle.json")
        assert load_bundle(path) == bundle


class TestBuildBundle:
    def test_budget_overrides_are_surfaced(self):
        job = {
            "job_id": "abc",
            "case_id": "c",
            "donor": "d",
            "strategy": "guard",
            "variant": "default",
            "overrides": {"backend": "dpll", "sat_conflict_budget": 100, "other": 1},
        }
        record = {"success": True}
        bundle = build_bundle(job=job, record=record)
        assert bundle["solver"]["backend"] == "dpll"
        assert bundle["solver"]["budgets"] == {"sat_conflict_budget": 100}

    def test_rejections_are_counted_by_kind(self):
        events = [
            {"event": "CandidateRejected", "kind": "check", "function": "f", "line": 1, "reason": "r"},
            {"event": "CandidateRejected", "kind": "check", "function": "g", "line": 2, "reason": "r"},
            {"event": "CandidateRejected", "kind": "patch", "function": "g", "line": 2, "reason": "r"},
        ]
        bundle = build_bundle(job={}, record={}, events=events)
        assert bundle["obligations"]["rejected"] == {"check": 2, "patch": 1}


class TestBundleFromStore:
    def test_missing_job_raises(self, tmp_path):
        from repro.campaign import CampaignPlan, RunStore

        store = RunStore(tmp_path / "store")
        store.initialise(CampaignPlan(name="empty", jobs=()))
        with pytest.raises(BundleError):
            bundle_from_store(store, "nope")
