"""Scenario synthesis: determinism, per-class behaviour, manifest round-trip."""

from __future__ import annotations

import pytest

from repro.formats.registry import get_format
from repro.lang.checker import compile_program
from repro.lang.trace import ErrorKind
from repro.lang.vm import VM
from repro.scenarios import (
    CorpusConfig,
    ScenarioCorpus,
    ScenarioError,
    generate_corpus,
    synthesize_pair,
)


def _run(application, data, format_name):
    spec = get_format(format_name)
    program = compile_program(application.source, name=application.full_name)
    return VM(program).run(data, field_map=spec.field_map(data))


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first = generate_corpus(seed=3, pairs_per_class=2)
        second = generate_corpus(seed=3, pairs_per_class=2)
        assert [pair.case_id for pair in first] == [pair.case_id for pair in second]
        assert [pair.recipient.source for pair in first] == [
            pair.recipient.source for pair in second
        ]
        assert [pair.donor.source for pair in first] == [
            pair.donor.source for pair in second
        ]
        assert [pair.error_values for pair in first] == [
            pair.error_values for pair in second
        ]

    def test_different_seeds_differ(self):
        first = generate_corpus(seed=0, pairs_per_class=1)
        second = generate_corpus(seed=1, pairs_per_class=1)
        assert [pair.case_id for pair in first] != [pair.case_id for pair in second]

    def test_digest_is_content_addressed(self):
        pair = synthesize_pair(ErrorKind.DIVIDE_BY_ZERO, "png", index=0, seed=0)
        assert pair.case_id.endswith(pair.digest)
        assert pair.recipient.name.endswith(pair.digest)
        assert pair.donor.name.endswith(pair.digest)
        # full_name stays the bare name (version == digest suffix).
        assert pair.recipient.full_name == pair.recipient.name

    def test_index_distinguishes_pairs_of_one_class(self):
        corpus = generate_corpus(seed=0, pairs_per_class=3)
        assert len({pair.case_id for pair in corpus}) == len(corpus)


class TestGeneratedBehaviour:
    @pytest.mark.parametrize("kind", list(ErrorKind))
    def test_recipient_errs_and_donor_survives(self, kind):
        corpus = generate_corpus(seed=0, pairs_per_class=1, error_kinds=(kind,))
        (pair,) = corpus.pairs
        seed, error = pair.seed_input(), pair.error_input()

        seed_run = _run(pair.recipient, seed, pair.format_name)
        assert seed_run.accepted, "recipient must process the seed input"

        error_run = _run(pair.recipient, error, pair.format_name)
        assert error_run.crashed
        assert error_run.error.kind is kind
        assert error_run.error.function == pair.target().site_function

        assert _run(pair.donor, seed, pair.format_name).ok
        assert _run(pair.donor, error, pair.format_name).ok, (
            "the donor's protective check must reject the error input cleanly"
        )

    def test_pair_reads_shared_format_fields(self):
        pair = synthesize_pair(ErrorKind.OUT_OF_BOUNDS_WRITE, "gif", index=0, seed=0)
        assert pair.recipient.formats == pair.donor.formats == ("gif",)
        assert all(path.startswith("/") for path in pair.defect_fields)
        spec = get_format("gif")
        layout = spec.field_map(spec.build())
        for path in pair.defect_fields:
            assert layout.has_field(path)

    def test_unsuitable_format_is_rejected(self):
        # dcp has a single wide field in the benign window; the overflow
        # template needs two.
        with pytest.raises(ScenarioError):
            synthesize_pair(ErrorKind.INTEGER_OVERFLOW, "dcp", index=0, seed=0)


class TestManifest:
    def test_round_trip(self, tmp_path):
        corpus = generate_corpus(seed=2, pairs_per_class=2)
        path = corpus.save(tmp_path / "scenarios.json")
        loaded = ScenarioCorpus.load(path)
        assert loaded.config == corpus.config
        assert loaded.pairs == corpus.pairs

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ScenarioError):
            ScenarioCorpus.load(tmp_path / "nope.json")

    def test_unknown_case_lookup(self):
        corpus = generate_corpus(seed=0, pairs_per_class=1)
        with pytest.raises(ScenarioError):
            corpus.pair("gen-unknown-case")

    def test_config_round_trip(self):
        config = CorpusConfig(
            seed=9,
            pairs_per_class=3,
            error_kinds=(ErrorKind.DIVIDE_BY_ZERO,),
            formats=("png", "gif"),
        )
        assert CorpusConfig.from_dict(config.to_dict()) == config

    def test_kind_maps(self):
        corpus = generate_corpus(seed=0, pairs_per_class=1)
        by_case = corpus.kind_of_case()
        by_recipient = corpus.kind_of_recipient()
        for pair in corpus:
            assert by_case[pair.case_id] == pair.error_kind.value
            assert by_recipient[pair.recipient.full_name] == pair.error_kind.value
