"""The transfer matrix: plan expansion, end-to-end campaign, resume, stats."""

from __future__ import annotations

import pytest

from repro.campaign import PlanError, SchedulerOptions, matrix_plan
from repro.lang.trace import ErrorKind
from repro.scenarios import corpus_plan, generate_corpus, run_matrix


class TestMatrixPlan:
    def test_expansion_and_deterministic_ids(self):
        corpus = generate_corpus(seed=0, pairs_per_class=2)
        plan = corpus_plan(corpus)
        assert len(plan) == len(corpus)
        regenerated = corpus_plan(generate_corpus(seed=0, pairs_per_class=2))
        assert plan.job_ids() == regenerated.job_ids()

    def test_strategies_cross_product(self):
        corpus = generate_corpus(seed=0, pairs_per_class=1)
        plan = corpus_plan(corpus, strategies=["exit", "return0"])
        assert len(plan) == 2 * len(corpus)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PlanError):
            matrix_plan([("case", "donor")], strategies=["teleport"])

    def test_unknown_variant_override_rejected(self):
        with pytest.raises(PlanError):
            matrix_plan([("case", "donor")], variants={"bad": {"nope": 1}})

    def test_empty_matrix_rejected(self):
        with pytest.raises(PlanError):
            matrix_plan([])

    def test_duplicate_transfers_deduplicated(self):
        plan = matrix_plan([("case", "donor"), ("case", "donor")])
        assert len(plan) == 1


class TestMatrixCampaign:
    """One real end-to-end matrix over every error class (the tentpole)."""

    @pytest.fixture(scope="class")
    def matrix_run(self, tmp_path_factory):
        corpus = generate_corpus(seed=0, pairs_per_class=1)
        store_dir = tmp_path_factory.mktemp("matrix") / "run"
        report, database = run_matrix(
            corpus,
            store_dir,
            options=SchedulerOptions(jobs=2, start_method="fork"),
        )
        return corpus, store_dir, report, database

    def test_every_error_class_validates_a_transfer(self, matrix_run):
        corpus, _, report, database = matrix_run
        assert report.completed == len(corpus)
        assert not report.failed
        rates = report.class_success_rates()
        for kind in ErrorKind:
            assert rates[kind.value] == 1.0, f"no validated transfer for {kind.value}"
        assert len(database.records) == len(corpus)
        assert all(record.success for record in database.records)

    def test_class_summary_from_merged_database(self, matrix_run):
        corpus, _, _, database = matrix_run
        by_recipient = corpus.kind_of_recipient()
        summary = database.class_summary(
            lambda record: by_recipient.get(record.recipient)
        )
        assert set(summary) == {kind.value for kind in ErrorKind}
        assert all(entry["success_rate"] == 1.0 for entry in summary.values())

    def test_resume_skips_everything_and_keeps_class_stats(self, matrix_run):
        corpus, store_dir, _, _ = matrix_run
        report, database = run_matrix(
            corpus,
            store_dir,
            options=SchedulerOptions(jobs=1, start_method="fork"),
        )
        assert report.completed == 0
        assert report.skipped == len(corpus)
        # Skipped jobs still contribute their stored verdicts.
        rates = report.class_success_rates()
        assert all(rates[kind.value] == 1.0 for kind in ErrorKind)
        assert len(database.records) == len(corpus)

    def test_records_carry_generated_names(self, matrix_run):
        corpus, _, _, database = matrix_run
        recipients = {record.recipient for record in database.records}
        assert recipients == {pair.recipient.full_name for pair in corpus}
