"""Adversarial corpora: near-miss rejection, multi-defect repair, cross-format.

The hard dimensions only earn their keep if validation actually separates
them: every near-miss donor must be *rejected* while the matching true donor
validates on the same recipient, multi-defect recipients must come out with
zero residual errors, and cross-format patches must speak the recipient's
field vocabulary.  These tests run the real pipeline end to end per case.
"""

from __future__ import annotations

import pytest

from repro.api import RepairSession
from repro.apps.registry import scoped_registration
from repro.core.events import ResidualErrorFound
from repro.formats.fields import Field, FieldMap, FormatSpec
from repro.formats.registry import get_format
from repro.lang.checker import compile_program
from repro.lang.trace import ErrorKind
from repro.lang.vm import VM, set_default_execution_tier
from repro.scenarios import (
    NEAR_MISS_MODES,
    CorpusConfig,
    ScenarioCorpus,
    ScenarioError,
    TEMPLATES,
    generate_corpus,
    suitable_fields,
    synthesize_multi_defect_pair,
)

#: Floor on the near-miss differential below: every error class must face
#: both near-miss windows (fails-open and overbroad), so the corpus this
#: module pins can never silently shrink below kinds x modes cases.
MINIMUM_ADVERSARIAL_CASES = len(ErrorKind) * len(NEAR_MISS_MODES)

# Generated at collection time so the differential can parametrize over it;
# generation is deterministic and cheap (no repairs run here).
ADVERSARIAL_CORPUS = generate_corpus(
    CorpusConfig(seed=11, pairs_per_class=2, hardness=("adversarial",))
)


def _case_label(pair) -> str:
    return f"{pair.error_kind.value}-{pair.near_miss_mode}"


class TestNearMissDifferential:
    """kinds x modes: the near-miss fails where the true donor succeeds."""

    @pytest.mark.parametrize("pair", ADVERSARIAL_CORPUS.pairs, ids=_case_label)
    def test_near_miss_rejected_and_true_donor_accepted(self, pair):
        assert pair.adversarial and pair.true_donor is not None
        with scoped_registration(pair.recipient, pair.donor, pair.true_donor):
            session = RepairSession()
            near_miss = session.run_case(pair, donor=pair.donor)
            assert not near_miss.success, (
                f"{pair.near_miss_mode} near-miss donor validated on "
                f"{pair.case_id}: a false accept"
            )
            true = session.run_case(pair, donor=pair.true_donor)
            assert true.success, (
                f"true donor must validate on the same recipient ({pair.case_id})"
            )

    def test_corpus_meets_case_floor(self):
        assert len(ADVERSARIAL_CORPUS.pairs) >= MINIMUM_ADVERSARIAL_CASES
        covered = {
            (pair.error_kind, pair.near_miss_mode) for pair in ADVERSARIAL_CORPUS.pairs
        }
        expected = {(kind, mode) for kind in ErrorKind for mode in NEAR_MISS_MODES}
        assert covered == expected, (
            f"missing near-miss windows: {sorted(str(c) for c in expected - covered)}"
        )


class TestMultiDefect:
    @pytest.fixture(scope="class")
    def three_defect_repair(self):
        pair = synthesize_multi_defect_pair(
            (
                ErrorKind.DIVIDE_BY_ZERO,
                ErrorKind.NULL_DEREFERENCE,
                ErrorKind.OUT_OF_BOUNDS_WRITE,
            ),
            "gif",
            index=0,
            seed=0,
        )
        with scoped_registration(pair.recipient, *pair.donor_pool):
            report = RepairSession().run_case(pair, donors=pair.donor_pool)
        return pair, report

    def test_repaired_to_zero_residual_errors(self, three_defect_repair):
        pair, report = three_defect_repair
        assert report.success
        # One transferred check per repair round: three defects need the
        # recursive loop, not a single pass.
        assert len(report.outcome.checks) == 3
        # Zero residual: the final patched program survives the seed and
        # every declared per-defect trigger.
        spec = get_format(pair.format_name)
        program = compile_program(report.patched_source, name="patched")
        inputs = [pair.seed_input(), *pair.probe_inputs()]
        for data in inputs:
            result = VM(program).run(data, field_map=spec.field_map(data))
            assert result.ok, f"residual error survived repair: {result.error}"

    def test_residual_events_carry_remaining_kinds_in_order(self, three_defect_repair):
        pair, report = three_defect_repair
        residuals = [
            event for event in report.events if isinstance(event, ResidualErrorFound)
        ]
        assert residuals, "a multi-defect repair must report residuals between rounds"
        by_round = {}
        for event in residuals:
            by_round.setdefault(event.round_index, set()).add(event.kinds)
        # After round 0 repairs the primary (divide-by-zero), the remaining
        # kinds are reported in declaration order; after round 1, only the
        # last defect is left.
        assert ("null-dereference", "out-of-bounds-write") in by_round[0]
        assert ("out-of-bounds-write",) in by_round[1]
        for event in residuals:
            assert event.count == len(event.kinds)

    @pytest.mark.parametrize("kind", list(ErrorKind), ids=lambda kind: kind.value)
    def test_every_class_leads_a_validated_stack(self, kind, multi_defect_reports):
        pair, report = multi_defect_reports[kind]
        assert pair.defect_count >= 2
        assert pair.error_kind is kind
        assert report.success, f"{pair.case_id} did not fully validate"

    @pytest.fixture(scope="class")
    def multi_defect_reports(self):
        corpus = generate_corpus(
            CorpusConfig(seed=0, pairs_per_class=1, hardness=("multi_defect",))
        )
        reports = {}
        for pair in corpus.pairs:
            with scoped_registration(pair.recipient, *pair.donor_pool):
                reports[pair.error_kind] = (
                    pair,
                    RepairSession().run_case(pair, donors=pair.donor_pool),
                )
        return reports


class TestCrossFormat:
    @pytest.fixture(scope="class")
    def cross_format_reports(self):
        corpus = generate_corpus(
            CorpusConfig(seed=0, pairs_per_class=1, hardness=("cross_format",))
        )
        reports = {}
        for pair in corpus.pairs:
            with scoped_registration(pair.recipient, pair.donor):
                reports[pair.error_kind] = (
                    pair,
                    RepairSession().run_case(pair, donor=pair.donor),
                )
        return reports

    @pytest.mark.parametrize("kind", list(ErrorKind), ids=lambda kind: kind.value)
    def test_every_class_validates_a_cross_format_transfer(
        self, kind, cross_format_reports
    ):
        pair, report = cross_format_reports[kind]
        assert pair.cross_format and pair.donor_format != pair.format_name
        assert report.success, f"{pair.case_id} did not fully validate"

    @pytest.mark.parametrize("kind", list(ErrorKind), ids=lambda kind: kind.value)
    def test_patch_speaks_recipient_vocabulary(self, kind, cross_format_reports):
        pair, report = cross_format_reports[kind]
        patched = report.patched_source
        # The donor reads the same bytes through its own format's field
        # names (all prefixed with the donor format); a genuine symbolic
        # translation grounds the patch in the recipient's layout instead.
        assert f"{pair.donor_format}_" not in patched
        # The defect fields the check protects exist in the recipient layout.
        spec = get_format(pair.format_name)
        layout = spec.field_map(spec.build())
        for path in pair.defect_fields:
            assert layout.has_field(path)

    def test_compiled_and_interpreted_tiers_agree(self, cross_format_reports):
        pair, compiled = cross_format_reports[ErrorKind.OUT_OF_BOUNDS_WRITE]
        set_default_execution_tier(False)
        try:
            with scoped_registration(pair.recipient, pair.donor):
                interpreted = RepairSession().run_case(pair, donor=pair.donor)
        finally:
            set_default_execution_tier(True)
        assert interpreted.success == compiled.success
        assert interpreted.patched_source == compiled.patched_source


class _BarrenSpec(FormatSpec):
    """A format no defect template can seed: one 1-byte field, default 0."""

    name = "barren"

    def matches(self, data: bytes) -> bool:
        return True

    def field_map(self, data: bytes) -> FieldMap:
        return FieldMap(
            [Field(path="/hdr/flag", offset=0, size=1)],
            total_size=1,
            format_name=self.name,
        )

    def build(self, values=None, **overrides) -> bytes:
        return b"\x00"


class TestSuitableFields:
    def test_empty_result_raises_targeted_error(self):
        template = TEMPLATES[ErrorKind.INTEGER_OVERFLOW]
        with pytest.raises(ScenarioError) as excinfo:
            suitable_fields(_BarrenSpec(), template)
        message = str(excinfo.value)
        assert "barren" in message
        assert "integer-overflow" in message
        assert type(template).__name__ in message

    def test_allow_empty_returns_bare_list(self):
        fields = suitable_fields(
            _BarrenSpec(), TEMPLATES[ErrorKind.INTEGER_OVERFLOW], allow_empty=True
        )
        assert fields == []


class TestHardManifest:
    def test_all_dimension_round_trip(self, tmp_path):
        corpus = generate_corpus(
            CorpusConfig(
                seed=4,
                pairs_per_class=1,
                hardness=(
                    "baseline",
                    "multi_defect",
                    "cross_format",
                    "adversarial",
                    "mutation",
                ),
            )
        )
        path = corpus.save(tmp_path / "scenarios.json")
        loaded = ScenarioCorpus.load(path)
        assert loaded.config == corpus.config
        assert loaded.pairs == corpus.pairs

    def test_version_1_manifest_still_loads(self):
        corpus = ScenarioCorpus.from_dict({"version": 1, "config": {}, "pairs": []})
        assert corpus.config.hardness == ("baseline",)

    def test_unknown_version_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioCorpus.from_dict({"version": 99, "config": {}, "pairs": []})

    def test_classes_of_case_axes(self):
        corpus = generate_corpus(
            CorpusConfig(
                seed=4,
                pairs_per_class=1,
                hardness=("multi_defect", "cross_format", "adversarial"),
            )
        )
        classes = corpus.classes_of_case()
        for pair in corpus.pairs:
            names = classes[pair.case_id]
            assert pair.error_kind.value in names
            assert f"hardness:{pair.hardness}" in names
            if pair.defect_count > 1:
                assert f"defect_count:{pair.defect_count}" in names
            if pair.cross_format:
                assert "cross_format" in names
            if pair.adversarial:
                assert "adversarial" in names
