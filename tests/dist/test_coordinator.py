"""JobBoard placement policy (pure) and coordinator end-to-end runs."""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.campaign import RunStore, expand_plan
from repro.campaign.plan import CampaignPlan
from repro.core.reporting import TransferRecord
from repro.dist import DistOptions, DistributedCoordinator, JobBoard
from repro.dist.coordinator import SPANS_FILE


def _fake_record(payload: dict) -> dict:
    return asdict(
        TransferRecord(
            recipient=payload["case_id"],
            target="site:1",
            donor=payload["donor"],
            success=True,
            generation_time_s=0.01,
            relevant_branches=1,
            flipped_branches="1",
            used_checks=1,
            insertion_points="1 - 0 - 0 = 1",
            check_size="2 -> 1",
            solver_queries=10,
            solver_cache_hits=4,
            solver_persistent_hits=2,
            solver_expensive_queries=1,
            solver_batch_hits=3,
        )
    )


def _marker_dir(spec) -> Path:
    # The cache spec's first path segment lives inside the store directory.
    base = Path(str(spec).split("::")[0]).parent if spec else Path("/tmp")
    directory = base / "ran"
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def ok_runner(payload: dict, cache_spec) -> dict:
    (_marker_dir(cache_spec) / f"{payload['job_id']}-{os.getpid()}").touch()
    return {"record": _fake_record(payload), "elapsed_s": 0.01}


def error_runner(payload: dict, cache_spec) -> dict:
    raise ValueError("synthetic failure")


def flaky_runner(payload: dict, cache_spec) -> dict:
    marker = _marker_dir(cache_spec) / f"flaky-{payload['job_id']}"
    if not marker.exists():
        marker.touch()
        raise ValueError("first attempt always fails")
    return {"record": _fake_record(payload), "elapsed_s": 0.01}


def slow_runner(payload: dict, cache_spec) -> dict:
    time.sleep(0.05)
    return ok_runner(payload, cache_spec)


class _Job:
    def __init__(self, index: int) -> None:
        self.job_id = f"job-{index:04d}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.job_id


# -- JobBoard (no processes) ---------------------------------------------------------


def test_board_partitions_every_job_exactly_once():
    jobs = [_Job(i) for i in range(100)]
    board = JobBoard(jobs, ["node-0", "node-1", "node-2"])
    assert board.pending() == 100
    total = sum(board.depth(node) for node in ("node-0", "node-1", "node-2"))
    assert total == 100


def test_board_claims_own_partition_before_stealing():
    jobs = [_Job(i) for i in range(50)]
    board = JobBoard(jobs, ["node-0", "node-1"])
    own_depth = board.depth("node-0")
    for _ in range(own_depth):
        job, stolen = board.claim("node-0")
        assert job is not None and not stolen
    job, stolen = board.claim("node-0")
    assert job is not None and stolen  # own queue empty -> steal
    assert board.steals == 1
    assert board.steals_by_node == {"node-0": 1}


def test_board_steals_from_the_most_loaded_peer():
    board = JobBoard([], ["a", "b", "c"])
    board.queues["b"].extend(_Job(i) for i in range(2))
    board.queues["c"].extend(_Job(i) for i in range(10, 15))
    job, stolen = board.claim("a")
    assert stolen
    assert job.job_id == "job-0010"  # head of the deepest queue (c)


def test_board_drains_to_none():
    jobs = [_Job(i) for i in range(4)]
    board = JobBoard(jobs, ["node-0", "node-1"])
    claimed = []
    while True:
        job, _ = board.claim("node-0")
        if job is None:
            break
        claimed.append(job.job_id)
    assert sorted(claimed) == sorted(j.job_id for j in jobs)
    assert board.pending() == 0


def test_fail_node_rerings_unclaimed_jobs_without_loss():
    jobs = [_Job(i) for i in range(60)]
    board = JobBoard(jobs, ["node-0", "node-1", "node-2"])
    stranded = board.depth("node-1")
    moved = board.fail_node("node-1")
    assert moved == stranded
    assert board.reassigned == stranded
    assert board.pending() == 60  # nothing lost
    assert board.depth("node-1") == 0
    # Re-rung jobs land only on survivors.
    assert board.depth("node-0") + board.depth("node-2") == 60


def test_fail_last_node_orphans_then_add_node_rehomes():
    jobs = [_Job(i) for i in range(5)]
    board = JobBoard(jobs, ["only"])
    board.fail_node("only")
    assert board.pending() == 5  # orphaned, not lost
    assert len(board.orphans) == 5
    board.add_node("replacement")
    assert len(board.orphans) == 0
    assert board.depth("replacement") == 5


def test_requeue_respects_the_current_ring():
    jobs = [_Job(i) for i in range(10)]
    board = JobBoard(jobs, ["node-0", "node-1"])
    job, _ = board.claim("node-0")
    board.fail_node("node-1")
    board.requeue(job)
    assert board.depth("node-0") == board.pending()  # only live owner


# -- coordinator end-to-end ----------------------------------------------------------


@pytest.fixture
def plan() -> CampaignPlan:
    return expand_plan(cases=["cwebp-jpegdec", "swfplay-rgb"], name="dist-test")


@pytest.fixture
def store(tmp_path, plan) -> RunStore:
    run_store = RunStore(tmp_path / "run")
    run_store.initialise(plan)
    return run_store


def _options(**overrides) -> DistOptions:
    base = dict(nodes=2, start_method="fork", poll_interval_s=0.01)
    base.update(overrides)
    return DistOptions(**base)


def test_coordinator_completes_all_jobs(plan, store):
    report = DistributedCoordinator(
        plan, store, _options(), runner=ok_runner
    ).run()
    assert report.completed == len(plan)
    assert not report.failed
    assert store.completed_ids() == set(plan.job_ids())
    # The coordinator is the only writer: the merged table is complete.
    database = store.merge_into_database(plan)
    assert len(database.records) == len(plan)
    # Distributed control-plane telemetry landed in the report.
    assert report.metrics["gauges"]["dist.nodes"] == 2
    assert "distributed: 2 nodes" in report.summary()


def test_coordinator_resume_skips_completed_jobs(plan, store):
    first = DistributedCoordinator(plan, store, _options(), runner=ok_runner).run()
    assert first.completed == len(plan)
    ran_dir = store.directory / "ran"
    for path in ran_dir.iterdir():
        path.unlink()

    second = DistributedCoordinator(plan, store, _options(), runner=ok_runner).run()
    assert second.completed == 0
    assert second.skipped == len(plan)
    assert list(ran_dir.iterdir()) == []  # no job executed twice


def test_runner_errors_are_retried_then_failed(plan, store):
    report = DistributedCoordinator(
        plan, store, _options(retries=0), runner=error_runner
    ).run()
    assert report.completed == 0
    assert sorted(report.failed) == sorted(plan.job_ids())
    attempts = list(store.attempts())
    assert len(attempts) == len(plan)
    assert all("synthetic failure" in result.error for result in attempts)


def test_flaky_jobs_recover_on_retry(plan, store):
    report = DistributedCoordinator(
        plan, store, _options(retries=1), runner=flaky_runner
    ).run()
    assert report.completed == len(plan)
    assert not report.failed
    # One failed + one done attempt per job, all recorded.
    assert len(list(store.attempts())) == 2 * len(plan)


def test_single_node_campaign_works(plan, store):
    report = DistributedCoordinator(
        plan, store, _options(nodes=1), runner=ok_runner
    ).run()
    assert report.completed == len(plan)
    assert report.metrics["counters"]["dist.steals"] == 0


def test_coordinator_writes_per_node_spans(plan, store):
    DistributedCoordinator(plan, store, _options(), runner=slow_runner).run()
    spans_path = store.directory / SPANS_FILE
    assert spans_path.exists()
    import json

    spans = [json.loads(line) for line in spans_path.read_text().splitlines()]
    assert len(spans) == len(plan)  # one span per settled attempt
    categories = {span["category"] for span in spans}
    assert categories <= {"node:node-0", "node:node-1"}
    names = {span["name"] for span in spans}
    assert names == {f"job:{job_id}" for job_id in plan.job_ids()}
    for span in spans:
        assert span["attrs"]["status"] == "done"
        assert span["attrs"]["attempt"] == 1


def test_per_node_gauges_present(plan, store):
    report = DistributedCoordinator(plan, store, _options(), runner=ok_runner).run()
    gauges = report.metrics["gauges"]
    for node_id in ("node-0", "node-1"):
        for suffix in (
            "queue_depth_peak",
            "jobs_completed",
            "steals_received",
            "cache_hops",
            "utilization",
        ):
            assert f"dist.node.{node_id}.{suffix}" in gauges
    completed = sum(
        gauges[f"dist.node.{node_id}.jobs_completed"]
        for node_id in ("node-0", "node-1")
    )
    assert completed == len(plan)
