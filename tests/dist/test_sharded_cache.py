"""Partitioned verdict key-space: routing, locality metrics, sharing."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    ShardedSolverCache,
    open_solver_cache,
    sharded_cache_spec,
)
from repro.campaign.cache import _OPEN_SHARDED
from repro.dist.ring import shard_of
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _metrics_registry():
    obs_metrics.REGISTRY.reset()
    obs_metrics.REGISTRY.enable()
    yield
    obs_metrics.REGISTRY.reset()
    obs_metrics.REGISTRY.disable()


def test_keys_route_to_their_home_shard_file(tmp_path):
    cache = ShardedSolverCache(tmp_path, partitions=4)
    keys = [f"digest-{i}||digest-{i + 1}" for i in range(40)]
    for key in keys:
        cache.put(key, {"verdict": "equivalent"})
    for key in keys:
        home = shard_of(key, 4)
        assert cache.shard_index(key) == home
        text = cache.shard_path(home).read_text()
        assert any(json.loads(line)["k"] == key for line in text.splitlines())
    # More than one shard file exists once enough keys are spread.
    populated = [p for p in tmp_path.iterdir() if p.name.startswith("shard-")]
    assert len(populated) > 1


def test_cross_instance_sharing_regardless_of_local_partition(tmp_path):
    writer = ShardedSolverCache(tmp_path, partitions=3, local_partition=0)
    writer.put("shared-key", {"verdict": "equivalent"})
    for partition in range(3):
        reader = ShardedSolverCache(tmp_path, partitions=3, local_partition=partition)
        assert reader.get("shared-key") == {"verdict": "equivalent"}


def test_hop_and_hit_counters(tmp_path):
    partitions = 4
    key = "some-key||other"
    home = shard_of(key, partitions)
    local = ShardedSolverCache(tmp_path, partitions, local_partition=home)
    remote = ShardedSolverCache(
        tmp_path, partitions, local_partition=(home + 1) % partitions
    )

    assert local.get(key) is None
    assert obs_metrics.REGISTRY.counter("dist.cache_misses") == 1
    assert obs_metrics.REGISTRY.counter("dist.cache_hops") == 0

    local.put(key, {"verdict": "equivalent"})  # home shard: no hop
    assert obs_metrics.REGISTRY.counter("dist.cache_hops") == 0
    assert local.get(key) is not None  # overlay hit
    assert obs_metrics.REGISTRY.counter("dist.cache_local_hits") == 1

    assert remote.get(key) is not None  # file hit on a non-local shard
    assert obs_metrics.REGISTRY.counter("dist.cache_hops") == 1
    assert obs_metrics.REGISTRY.counter("dist.cache_remote_hits") == 1
    assert remote.get(key) is not None  # now in the overlay: local, no hop
    assert obs_metrics.REGISTRY.counter("dist.cache_hops") == 1
    assert obs_metrics.REGISTRY.counter("dist.cache_local_hits") == 2


def test_contains_is_metric_free(tmp_path):
    cache = ShardedSolverCache(tmp_path, partitions=2, local_partition=0)
    cache_key = "probe||probe2"
    assert cache_key not in cache
    cache.put(cache_key, {"verdict": "equivalent"})
    assert cache_key in cache
    snapshot = obs_metrics.REGISTRY.snapshot()
    assert "dist.cache_misses" not in snapshot["counters"]
    assert snapshot["counters"].get("dist.cache_hops", 0) in (0, 1)  # put only


def test_len_counts_distinct_keys_across_shards_and_overlay(tmp_path):
    cache = ShardedSolverCache(tmp_path, partitions=3)
    for i in range(10):
        cache.put(f"key-{i}", {"verdict": "equivalent"})
    assert len(cache) == 10
    fresh = ShardedSolverCache(tmp_path, partitions=3)
    for i in range(10):
        assert fresh.get(f"key-{i}") is not None
    assert len(fresh) == 10


def test_spec_round_trip_and_memoization(tmp_path):
    spec = sharded_cache_spec(tmp_path / "shards", 5, 2)
    assert spec.endswith("::shards=5::local=2")
    first = open_solver_cache(spec)
    assert isinstance(first, ShardedSolverCache)
    assert first.partitions == 5
    assert first.local_partition == 2
    # Memoized per spec: one warm overlay per node process.
    assert open_solver_cache(spec) is first
    try:
        other = open_solver_cache(sharded_cache_spec(tmp_path / "shards", 5, 3))
        assert other is not first
    finally:
        _OPEN_SHARDED.clear()


def test_spec_without_local_partition(tmp_path):
    spec = sharded_cache_spec(tmp_path / "shards", 2)
    try:
        cache = open_solver_cache(spec)
        assert cache.local_partition is None
        cache.put("k", {"verdict": "equivalent"})
        assert obs_metrics.REGISTRY.counter("dist.cache_hops") == 0  # no locality
    finally:
        _OPEN_SHARDED.clear()


def test_plain_path_opens_the_flat_cache(tmp_path):
    from repro.campaign import PersistentSolverCache

    cache = open_solver_cache(str(tmp_path / "cache.jsonl"))
    assert isinstance(cache, PersistentSolverCache)


def test_unknown_spec_field_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown cache spec field"):
        open_solver_cache(f"{tmp_path}::bogus=1")


def test_checker_accepts_a_sharded_spec(tmp_path):
    """EquivalenceChecker routes a sharded spec through open_solver_cache."""
    from repro.solver.equivalence import (
        EquivalenceChecker,
        EquivalenceOptions,
        Verdict,
    )
    from repro.symbolic import builder

    spec = sharded_cache_spec(tmp_path / "shards", 2, 0)
    try:
        options = EquivalenceOptions(persistent_cache_path=spec)
        left = builder.mul(builder.input_field("/x", 16), builder.const(2, 16))
        right = builder.shl(builder.input_field("/x", 16), builder.const(1, 16))

        first = EquivalenceChecker(options=options)
        assert first.equivalent(left, right).verdict is Verdict.EQUIVALENT
        assert first.statistics.persistent_cache_hits == 0

        second = EquivalenceChecker(options=options)
        assert second.equivalent(left, right).verdict is Verdict.EQUIVALENT
        assert second.statistics.persistent_cache_hits == 1
    finally:
        _OPEN_SHARDED.clear()
