"""Failure model: killed nodes, killed coordinators, restart-resume.

The invariant under test everywhere: completed jobs are never lost and
never duplicated.  A job id appears with status ``done`` exactly once in
``records.jsonl`` no matter which process died when.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import warnings
from collections import Counter
from dataclasses import asdict
from pathlib import Path

from repro.campaign import STATUS_DONE, RunStore, matrix_plan
from repro.core.reporting import TransferRecord
from repro.dist import DistOptions, DistributedCoordinator


def _fake_record(payload: dict) -> dict:
    return asdict(
        TransferRecord(
            recipient=payload["case_id"],
            target="site:1",
            donor=payload["donor"],
            success=True,
            generation_time_s=0.01,
            relevant_branches=1,
            flipped_branches="1",
            used_checks=1,
            insertion_points="1 - 0 - 0 = 1",
            check_size="2 -> 1",
        )
    )


def _store_dir(cache_spec) -> Path:
    return Path(str(cache_spec).split("::")[0]).parent


def pid_slow_runner(payload: dict, cache_spec) -> dict:
    """Advertise this node's pid, then work slowly enough to be killed."""
    pids = _store_dir(cache_spec) / "pids"
    pids.mkdir(parents=True, exist_ok=True)
    (pids / str(os.getpid())).touch()
    time.sleep(0.25)
    return {"record": _fake_record(payload), "elapsed_s": 0.25}


def marked_runner(payload: dict, cache_spec) -> dict:
    """Record each execution so tests can assert what actually re-ran."""
    ran = _store_dir(cache_spec) / "ran"
    ran.mkdir(parents=True, exist_ok=True)
    (ran / f"{payload['job_id']}-{time.monotonic_ns()}").touch()
    return {"record": _fake_record(payload), "elapsed_s": 0.0}


def half_failing_runner(payload: dict, cache_spec) -> dict:
    """Deterministically fail half the jobs (odd content-addressed ids)."""
    if int(payload["job_id"], 16) % 2:
        raise ValueError("deterministic first-run failure")
    return marked_runner(payload, cache_spec)


def _plan(jobs: int, name: str):
    return matrix_plan(
        [(f"case-{index:03d}", "donor-a") for index in range(jobs)], name=name
    )


def _done_counts(store: RunStore) -> Counter:
    # A kill may leave a torn trailing record; the skip-and-warn path is
    # under test elsewhere — here we only care about the surviving lines.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        attempts = list(store.attempts())
    return Counter(r.job_id for r in attempts if r.status == STATUS_DONE)


def _options(**overrides) -> DistOptions:
    base = dict(nodes=2, start_method="fork", poll_interval_s=0.01)
    base.update(overrides)
    return DistOptions(**base)


def test_killing_one_node_mid_campaign_loses_and_duplicates_nothing(tmp_path):
    plan = _plan(12, "kill-one-node")
    store = RunStore(tmp_path / "run")
    store.initialise(plan)
    killed = {"pid": None}

    def killer() -> None:
        pids = store.directory / "pids"
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            victims = sorted(pids.iterdir()) if pids.exists() else []
            if victims:
                pid = int(victims[0].name)
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    return
                killed["pid"] = pid
                return
            time.sleep(0.01)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    report = DistributedCoordinator(
        plan, store, _options(retries=1), runner=pid_slow_runner
    ).run()
    thread.join(timeout=10)

    assert killed["pid"] is not None, "the killer never found a node to kill"
    assert report.completed == len(plan)
    assert not report.failed
    assert store.completed_ids() == set(plan.job_ids())
    done = _done_counts(store)
    assert set(done) == set(plan.job_ids())
    assert all(count == 1 for count in done.values()), done  # zero duplicates
    assert report.metrics["counters"]["dist.node_failures"] >= 1


def test_all_nodes_killed_campaign_still_finishes(tmp_path):
    plan = _plan(6, "kill-all-nodes")
    store = RunStore(tmp_path / "run")
    store.initialise(plan)

    def killer() -> None:
        pids = store.directory / "pids"
        seen: set[str] = set()
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline and len(seen) < 2:
            for victim in sorted(pids.iterdir()) if pids.exists() else []:
                if victim.name in seen:
                    continue
                seen.add(victim.name)
                try:
                    os.kill(int(victim.name), signal.SIGKILL)
                except ProcessLookupError:
                    pass
            time.sleep(0.01)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    # Budget covers both murders: 1 + 2 retries > 2 killed attempts.
    report = DistributedCoordinator(
        plan, store, _options(retries=2), runner=pid_slow_runner
    ).run()
    thread.join(timeout=15)

    assert report.completed == len(plan)
    done = _done_counts(store)
    assert all(count == 1 for count in done.values()), done


def _campaign_child(store_dir: str, jobs: int, name: str) -> None:
    plan = _plan(jobs, name)
    store = RunStore(store_dir)
    DistributedCoordinator(
        plan, store, _options(retries=1), runner=pid_slow_runner
    ).run()


def test_killed_coordinator_restart_resumes_from_store(tmp_path):
    plan = _plan(12, "kill-coordinator")
    store = RunStore(tmp_path / "run")
    store.initialise(plan)

    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_campaign_child,
        args=(str(store.directory), 12, "kill-coordinator"),
    )
    child.start()
    # Let it complete some (but not all) jobs, then kill the whole campaign.
    deadline = time.monotonic() + 20
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        while time.monotonic() < deadline:
            if store.records_path.exists() and len(store.completed_ids()) >= 2:
                break
            time.sleep(0.05)
    os.kill(child.pid, signal.SIGKILL)
    child.join(timeout=5)
    # SIGKILL skipped the child's cleanup, so its node processes were
    # orphaned rather than terminated: put them down before resuming.
    pids = store.directory / "pids"
    for victim in pids.iterdir() if pids.exists() else []:
        try:
            os.kill(int(victim.name), signal.SIGKILL)
        except ProcessLookupError:
            pass
    time.sleep(0.1)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        before = store.completed_ids()
    assert before, "child never completed a job"
    assert len(before) < len(plan), "child finished before the kill"

    report = DistributedCoordinator(
        plan, store, _options(retries=1), runner=marked_runner
    ).run()
    assert report.skipped == len(before)
    assert store.completed_ids() == set(plan.job_ids())
    done = _done_counts(store)
    assert all(count == 1 for count in done.values()), done
    # The resumed run executed only the unfinished jobs.
    ran = {
        path.name.rsplit("-", 1)[0]
        for path in (store.directory / "ran").iterdir()
    }
    assert ran == set(plan.job_ids()) - before


def test_restart_after_partial_failures_runs_only_the_remainder(tmp_path):
    plan = _plan(10, "partial-failures")
    store = RunStore(tmp_path / "run")
    store.initialise(plan)

    first = DistributedCoordinator(
        plan, store, _options(retries=0), runner=half_failing_runner
    ).run()
    failed = set(first.failed)
    assert failed and first.completed == len(plan) - len(failed)

    ran_dir = store.directory / "ran"
    for path in ran_dir.iterdir():
        path.unlink()
    second = DistributedCoordinator(
        plan, store, _options(retries=0), runner=marked_runner
    ).run()
    assert second.skipped == first.completed
    assert second.completed == len(failed)
    assert store.completed_ids() == set(plan.job_ids())
    ran = {path.name.rsplit("-", 1)[0] for path in ran_dir.iterdir()}
    assert ran == failed  # completed jobs never re-ran
    done = _done_counts(store)
    assert all(count == 1 for count in done.values()), done
