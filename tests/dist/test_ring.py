"""Consistent-hash ring: determinism, balance, minimal re-homing."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.dist import HashRing, shard_of, stable_hash


def test_stable_hash_is_process_independent():
    # SHA-1 derived: fixed values, unlike the salted builtin hash().
    assert stable_hash("job-0") == stable_hash("job-0")
    assert stable_hash("") == 0xDA39A3EE5E6B4B0D
    assert stable_hash("a") != stable_hash("b")


def test_owner_is_deterministic_and_total():
    ring = HashRing(["node-0", "node-1", "node-2"])
    keys = [f"key-{i}" for i in range(500)]
    owners = [ring.owner(key) for key in keys]
    assert owners == [ring.owner(key) for key in keys]
    assert set(owners) == {"node-0", "node-1", "node-2"}


def test_virtual_nodes_balance_load():
    ring = HashRing([f"node-{i}" for i in range(4)], vnodes=64)
    counts = Counter(ring.owner(f"key-{i}") for i in range(4000))
    assert len(counts) == 4
    for owner in counts.values():
        # Perfect balance would be 1000; vnodes keep skew modest.
        assert 500 < owner < 1600


def test_removing_a_member_only_rehomes_its_keys():
    ring = HashRing(["node-0", "node-1", "node-2"])
    keys = [f"key-{i}" for i in range(1000)]
    before = {key: ring.owner(key) for key in keys}
    ring.remove("node-1")
    for key in keys:
        after = ring.owner(key)
        if before[key] != "node-1":
            assert after == before[key]  # survivors keep their keys
        else:
            assert after in {"node-0", "node-2"}


def test_adding_a_member_is_idempotent_and_removal_symmetric():
    ring = HashRing(["node-0"])
    ring.add("node-1")
    ring.add("node-1")
    assert ring.members() == ["node-0", "node-1"]
    ring.remove("node-1")
    ring.remove("node-1")
    assert ring.members() == ["node-0"]
    assert "node-1" not in ring


def test_empty_ring_owns_nothing():
    ring = HashRing()
    assert ring.owner("anything") is None
    assert len(ring) == 0


def test_shard_of_is_stable_and_in_range():
    for partitions in (1, 2, 4, 7):
        for i in range(200):
            index = shard_of(f"key-{i}", partitions)
            assert 0 <= index < partitions
            assert index == shard_of(f"key-{i}", partitions)
    # Single-partition fast path.
    assert shard_of("whatever", 1) == 0


def test_shard_of_spreads_keys_across_partitions():
    counts = Counter(shard_of(f"key-{i}", 4) for i in range(2000))
    assert set(counts) == {0, 1, 2, 3}


def test_invalid_arguments_raise():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        shard_of("key", 0)
