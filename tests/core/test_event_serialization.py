"""Exhaustiveness guarantees for the typed event stream.

Two invariants the telemetry layer depends on:

* every :class:`PipelineEvent` subclass round-trips through the JSONL
  serializer (so persisted campaign event streams lose nothing), and
* every stage a real transfer executes emits a balanced
  ``StageStarted``/``StageFinished`` pair (so trace reconstruction can
  bracket spans).
"""

import dataclasses

import pytest

from repro import api
from repro.core import events as events_module
from repro.core.events import (
    EVENT_TYPES,
    PipelineEvent,
    StageFinished,
    StageStarted,
    event_from_dict,
    event_from_sse,
    event_to_dict,
    event_to_sse,
    events_from_jsonl,
    events_from_sse,
    events_to_jsonl,
    events_to_sse,
)
from repro.experiments import ERROR_CASES

#: One fully-populated sample per event type; the exhaustiveness test below
#: fails if a new event class is added without a sample here.
SAMPLE_EVENTS = [
    events_module.StageStarted(stage="excision", round_index=1),
    events_module.StageFinished(stage="excision", elapsed_s=0.125, round_index=1),
    events_module.DonorAttempted(donor="feh", index=1, total=3),
    events_module.CandidateRejected(kind="check", function="f", line=7, reason="no parse"),
    events_module.PatchValidated(
        donor="feh", function="f", line=7, excised_size=5, translated_size=4
    ),
    events_module.ResidualErrorFound(
        count=2, round_index=0, kinds=("divide-by-zero", "null-dereference")
    ),
]


def _subclasses(cls):
    found = set()
    for sub in cls.__subclasses__():
        found.add(sub)
        found |= _subclasses(sub)
    return found


class TestRegistryExhaustiveness:
    def test_every_event_class_is_registered(self):
        assert set(EVENT_TYPES.values()) == _subclasses(PipelineEvent)

    def test_every_event_class_has_a_sample(self):
        assert {type(event) for event in SAMPLE_EVENTS} == set(EVENT_TYPES.values())

    def test_unregistered_events_are_rejected(self):
        @dataclasses.dataclass(frozen=True)
        class Rogue:
            pass

        with pytest.raises(ValueError):
            event_to_dict(Rogue())
        with pytest.raises(ValueError):
            event_from_dict({"event": "Rogue"})


class TestRoundTrip:
    @pytest.mark.parametrize(
        "event", SAMPLE_EVENTS, ids=[type(e).__name__ for e in SAMPLE_EVENTS]
    )
    def test_dict_roundtrip_preserves_every_field(self, event):
        payload = event_to_dict(event)
        assert payload["event"] == type(event).__name__
        restored = event_from_dict(payload)
        assert restored == event
        assert type(restored) is type(event)

    def test_jsonl_roundtrip_preserves_order_and_values(self):
        text = events_to_jsonl(SAMPLE_EVENTS)
        assert len(text.splitlines()) == len(SAMPLE_EVENTS)
        assert events_from_jsonl(text) == SAMPLE_EVENTS

    def test_jsonl_skips_blank_lines(self):
        text = "\n" + events_to_jsonl(SAMPLE_EVENTS[:1]) + "\n\n"
        assert events_from_jsonl(text) == SAMPLE_EVENTS[:1]


class TestSSEWireFormat:
    """The service's SSE framing is a lossless wrapper over the registry.

    Parametrising over ``SAMPLE_EVENTS`` keeps the suite exhaustive by
    construction: ``TestRegistryExhaustiveness`` forces one sample per
    registered type, so a new event class cannot land without an SSE
    round-trip test of its own.
    """

    @pytest.mark.parametrize(
        "event", SAMPLE_EVENTS, ids=[type(e).__name__ for e in SAMPLE_EVENTS]
    )
    def test_every_event_type_roundtrips_through_sse(self, event):
        assert event_from_sse(event_to_sse(event)) == event

    @pytest.mark.parametrize(
        "event", SAMPLE_EVENTS, ids=[type(e).__name__ for e in SAMPLE_EVENTS]
    )
    def test_frames_are_self_describing_and_terminated(self, event):
        frame = event_to_sse(event, event_id=7)
        assert frame.startswith("id: 7\n")
        assert f"event: {type(event).__name__}\n" in frame
        assert frame.endswith("\n\n")

    def test_stream_roundtrip_preserves_order_and_fields(self):
        stream = events_to_sse(SAMPLE_EVENTS, start_id=3)
        assert events_from_sse(stream) == SAMPLE_EVENTS
        ids = [
            int(line.partition(":")[2])
            for line in stream.split("\n")
            if line.startswith("id:")
        ]
        assert ids == list(range(3, 3 + len(SAMPLE_EVENTS)))

    def test_control_frames_and_keepalives_are_skipped(self):
        stream = (
            'event: status\ndata: {"status":"running"}\n\n'
            + ": keep-alive\n\n"
            + events_to_sse(SAMPLE_EVENTS[:2])
            + 'event: end\ndata: {"status":"done"}\n\n'
        )
        assert events_from_sse(stream) == SAMPLE_EVENTS[:2]

    def test_frame_without_data_is_rejected(self):
        with pytest.raises(ValueError):
            event_from_sse("event: StageStarted\n\n")

    def test_disagreeing_event_tag_is_rejected(self):
        frame = event_to_sse(SAMPLE_EVENTS[0]).replace(
            "event: StageStarted", "event: StageFinished", 1
        )
        with pytest.raises(ValueError):
            event_from_sse(frame)

    def test_unknown_event_type_is_rejected(self):
        with pytest.raises(ValueError):
            event_from_sse('event: Rogue\ndata: {"event":"Rogue"}\n\n')

    def test_multiline_data_chunks_are_rejoined(self):
        # The spec splits payloads across data: lines re-joined with \n;
        # the parser must honour that even though our writer never does.
        payload = event_to_dict(SAMPLE_EVENTS[0])
        import json as json_module

        text = json_module.dumps(payload)
        # Rejoining inserts a newline inside the JSON, which is valid
        # whitespace only between tokens — split at a comma boundary.
        comma = text.index(",")
        frame = (
            f"event: {payload['event']}\n"
            f"data: {text[: comma + 1]}\ndata: {text[comma + 1 :]}\n\n"
        )
        assert event_from_sse(frame) == SAMPLE_EVENTS[0]


class TestStagePairing:
    @pytest.fixture(scope="class")
    def transfer_events(self):
        case = ERROR_CASES["cwebp-jpegdec"]
        report = api.repair(
            api.RepairRequest(
                recipient=case.application(),
                target=case.target(),
                seed=case.seed_input(),
                error_input=case.error_input(),
                format_name="jpeg",
                donor="feh",
            )
        )
        return report.events

    def test_every_stage_emits_balanced_started_finished_pairs(self, transfer_events):
        open_stages: list[str] = []
        pairs = 0
        for event in transfer_events:
            if isinstance(event, StageStarted):
                open_stages.append(event.stage)
            elif isinstance(event, StageFinished):
                assert open_stages and open_stages[-1] == event.stage, (
                    f"StageFinished({event.stage}) without a matching StageStarted"
                )
                open_stages.pop()
                pairs += 1
        assert not open_stages, f"stages left open: {open_stages}"
        assert pairs >= 5  # a real transfer runs the full candidate graph

    def test_the_whole_stream_survives_jsonl(self, transfer_events):
        assert events_from_jsonl(events_to_jsonl(transfer_events)) == list(transfer_events)
