"""Unit tests for the individual CP pipeline stages."""

import pytest

from repro.apps import get_application
from repro.core import (
    CodePhage,
    Rewriter,
    build_patch,
    discover_candidate_checks,
    excise_check,
    find_insertion_points,
    relevant_fields,
    select_donors,
)
from repro.core.patch import PatchStrategy, render_microc
from repro.core.traversal import RecipientName, collect_names
from repro.experiments import ERROR_CASES
from repro.formats import get_format
from repro.lang import compile_program, parse_expression
from repro.lang.debuginfo import ScopeVariable
from repro.solver import EquivalenceChecker
from repro.symbolic import builder, evaluate


CASE = ERROR_CASES["cwebp-jpegdec"]
FMT = get_format("jpeg")
SEED = CASE.seed_input()
ERROR = CASE.error_input()


@pytest.fixture(scope="module")
def feh_discovery():
    donor = get_application("feh")
    return discover_candidate_checks(
        donor.program(), FMT, SEED, ERROR, relevant=relevant_fields(FMT, SEED, ERROR)
    )


class TestDonorSelection:
    def test_all_jpeg_donors_selected_for_cwebp(self):
        selection = select_donors("jpeg", SEED, ERROR, recipient=CASE.application())
        assert {d.name for d in selection.donors} == {"feh", "mtpaint", "viewnior"}

    def test_recipient_excluded_from_donor_pool(self):
        selection = select_donors("jpeg", SEED, ERROR, recipient=CASE.application())
        assert "cwebp" not in {d.name for d in selection.donors}

    def test_same_library_filter(self):
        from repro.apps import donors_for_format

        pool = donors_for_format("jpeg")
        selection = select_donors("jpeg", SEED, ERROR, applications=pool + pool)
        names = [d.name for d in selection.donors]
        assert len(names) == len(set(names))

    def test_multiversion_donor_allowed(self):
        case = ERROR_CASES["wireshark-dcp"]
        selection = select_donors(
            "dcp", case.seed_input(), case.error_input(), recipient=case.application()
        )
        assert [d.name for d in selection.donors] == ["wireshark-1.8.6"]


class TestCheckDiscovery:
    def test_relevant_fields_are_the_differing_fields(self):
        assert relevant_fields(FMT, SEED, ERROR) == frozenset(
            {"/start_frame/content/width", "/start_frame/content/height"}
        )

    def test_single_flipped_branch_in_feh(self, feh_discovery):
        assert feh_discovery.flipped_branches == 1
        candidate = feh_discovery.candidates[0]
        assert candidate.function == "load_jpeg"
        assert candidate.error_direction is True and candidate.seed_direction is False

    def test_candidate_condition_separates_the_inputs(self, feh_discovery):
        candidate = feh_discovery.candidates[0]
        seed_values = FMT.parse(SEED)
        error_values = FMT.parse(ERROR)
        assert evaluate(candidate.condition, error_values) == 1
        assert evaluate(candidate.condition, seed_values) == 0

    def test_identical_inputs_produce_no_candidates(self):
        donor = get_application("feh")
        result = discover_candidate_checks(donor.program(), FMT, SEED, SEED)
        assert result.candidates == []


class TestExcision:
    def test_guard_follows_error_direction(self, feh_discovery):
        donor = get_application("feh")
        excised = excise_check(donor.program(), FMT, ERROR, feh_discovery.candidates[0])
        assert excised.guard == excised.condition  # error direction is "taken"
        assert excised.fields >= relevant_fields(FMT, SEED, ERROR)
        assert excised.operation_count > 0

    def test_negated_guard_for_wireshark(self):
        case = ERROR_CASES["wireshark-dcp"]
        fmt = get_format("dcp")
        donor = get_application("wireshark-1.8.6")
        discovery = discover_candidate_checks(
            donor.program(), fmt, case.seed_input(), case.error_input()
        )
        candidate = discovery.candidates[0]
        assert candidate.error_direction is False  # `if (real_len)` not taken on the error input
        excised = excise_check(donor.program(), fmt, case.error_input(), candidate)
        assert evaluate(excised.guard, fmt.parse(case.error_input())) == 1
        assert evaluate(excised.guard, fmt.parse(case.seed_input())) == 0


class TestTraversalAndInsertion:
    def test_traversal_reaches_struct_fields_and_pointers(self):
        source = """
        struct inner { u32 value; };
        struct outer { struct inner nested; };
        int main() {
            struct outer o;
            o.nested.value = read_u16_be();
            struct outer* p = &o;
            emit(p->nested.value);
            return 0;
        }
        """
        program = compile_program(source)
        from repro.lang.vm import VM, VMConfig

        collected = {}

        class Hooks:
            def on_statement(self, vm, frame, statement):
                names = collect_names(
                    frame.locals, vm.globals, program.debug_info.scope_at(statement.node_id)
                )
                collected[statement.node_id] = names

            def on_branch(self, vm, frame, record): ...
            def on_allocation(self, vm, frame, record): ...
            def on_call(self, vm, frame): ...
            def on_return(self, vm, frame): ...

        VM(program).run(b"\x01\x00", hooks=Hooks())
        final_names = collected[max(collected)]
        paths = {name.path for name in final_names}
        # The nested struct field is reachable; the pointer alias `p` reaches
        # the same cell, which the Figure 6 Visited set reports only once.
        assert "o.nested.value" in paths

    def test_traversal_follows_struct_pointers(self):
        source = """
        struct info { u32 width; };
        u32 consume(struct info* data) {
            emit(data->width);
            return data->width;
        }
        int main() {
            struct info local;
            local.width = read_u16_be();
            return (i32) consume(&local);
        }
        """
        program = compile_program(source)
        from repro.lang.vm import VM

        collected = {}

        class Hooks:
            def on_statement(self, vm, frame, statement):
                if frame.function == "consume":
                    names = collect_names(
                        frame.locals, vm.globals, program.debug_info.scope_at(statement.node_id)
                    )
                    collected[statement.node_id] = {name.path for name in names}

            def on_branch(self, vm, frame, record): ...
            def on_allocation(self, vm, frame, record): ...
            def on_call(self, vm, frame): ...
            def on_return(self, vm, frame): ...

        VM(program).run(b"\x00\x40", hooks=Hooks())
        assert collected
        assert any("data->width" in paths for paths in collected.values())

    def test_insertion_points_require_all_fields(self, feh_discovery):
        excised = excise_check(
            get_application("feh").program(), FMT, ERROR, feh_discovery.candidates[0]
        )
        report = find_insertion_points(
            CASE.application().program(), SEED, FMT.field_map(SEED), excised.fields
        )
        assert report.candidate_count > 0
        # Points before the width has been read cannot be candidates: every
        # candidate point must be able to reach all required fields.
        for point in report.stable_points:
            reachable = set()
            for name in point.names:
                reachable |= name.expression.fields()
            assert excised.fields <= reachable

    def test_no_points_for_unavailable_fields(self):
        report = find_insertion_points(
            CASE.application().program(),
            SEED,
            FMT.field_map(SEED),
            frozenset({"/nonexistent/field"}),
        )
        assert report.candidate_count == 0


class TestRewrite:
    def _names(self):
        width = builder.input_field("/start_frame/content/width", 16)
        height = builder.input_field("/start_frame/content/height", 16)
        return [
            RecipientName("dinfo.output_width", builder.zext(width, 32), 32, False),
            RecipientName("dinfo.output_height", builder.zext(height, 32), 32, False),
        ]

    def test_whole_subtree_collapses_to_name(self):
        width = builder.input_field("/start_frame/content/width", 16)
        result = Rewriter(self._names()).rewrite(builder.zext(width, 32))
        assert result is not None
        assert result.expression.fields() == {"dinfo.output_width"}
        assert result.expression.op_count() == 0

    def test_feh_check_translates(self):
        width = builder.input_field("/start_frame/content/width", 16)
        height = builder.input_field("/start_frame/content/height", 16)
        check = builder.ule(
            builder.mul(builder.zext(width, 64), builder.zext(height, 64)), (1 << 29) - 1
        )
        result = Rewriter(self._names()).rewrite(check)
        assert result is not None
        assert set(result.matched_names) == {"dinfo.output_width", "dinfo.output_height"}
        # The translated check evaluates like the original, reading the
        # recipient names instead of the input fields.
        env_fields = {"/start_frame/content/width": 1000, "/start_frame/content/height": 1000}
        env_names = {"dinfo.output_width": 1000, "dinfo.output_height": 1000}
        assert evaluate(check, env_fields) == evaluate(result.expression, env_names)

    def test_missing_value_fails(self):
        other = builder.input_field("/start_frame/content/nr_components", 8)
        result = Rewriter(self._names()).rewrite(builder.ugt(builder.zext(other, 32), 4))
        assert result is None

    def test_constants_translate_directly(self):
        result = Rewriter(self._names()).rewrite(builder.const(99, 32))
        assert result is not None and result.expression == builder.const(99, 32)


class TestPatchGeneration:
    def test_render_microc_parses_and_matches_semantics(self):
        guard = builder.ugt(
            builder.mul(
                builder.zext(builder.input_field("img.width", 32), 64),
                builder.zext(builder.input_field("img.height", 32), 64),
            ),
            (1 << 29) - 1,
        )
        source = render_microc(guard)
        parse_expression(source)  # must be valid MicroC
        assert "img.width" in source and "img.height" in source

    def test_build_patch_records_sizes(self):
        from repro.core.insertion import InsertionPoint

        guard = builder.ugt(builder.zext(builder.input_field("x", 32), 64), 10)
        excised = builder.ugt(builder.zext(builder.input_field("/f", 16), 64), 10)
        point = InsertionPoint(statement_id=1, function="f", line=1, names=())
        patch = build_patch(guard, excised, point, PatchStrategy.EXIT)
        assert patch.translated_size == guard.op_count()
        assert patch.excised_size == excised.op_count()
        assert patch.render().startswith("if (")
        assert patch.source_patch().insertion_statement_id == 1


class TestReporting:
    def test_round_trip_save_load(self, tmp_path):
        from repro.core.reporting import ResultsDatabase

        phage = CodePhage()
        outcome = phage.transfer(
            CASE.application(), CASE.target(), get_application("mtpaint"), SEED, ERROR, "jpeg"
        )
        database = ResultsDatabase()
        database.add(outcome)
        path = tmp_path / "results.json"
        database.save(path)
        loaded = ResultsDatabase.load(path)
        assert loaded.records[0].recipient == "cwebp-0.3.1"
        assert "Recipient" in loaded.to_table()
        assert loaded.summary()["transfers"] == 1
