"""ResultsDatabase: save/load round trip, table rendering, summaries."""

from __future__ import annotations

from repro.core.reporting import ResultsDatabase, TransferRecord


def _record(**overrides) -> TransferRecord:
    base = dict(
        recipient="cwebp-0.3.1",
        target="jpegdec.c:248",
        donor="feh-2.9.3",
        success=True,
        generation_time_s=0.42,
        relevant_branches=3,
        flipped_branches="1",
        used_checks=1,
        insertion_points="15 - 0 - 0 = 15",
        check_size="14 -> 11",
        patch_preview="if (...) exit(-1);",
        failure_reason="",
        solver_queries=120,
        solver_cache_hits=40,
        solver_persistent_hits=7,
        solver_expensive_queries=2,
    )
    base.update(overrides)
    return TransferRecord(**base)


def test_save_load_round_trip(tmp_path):
    database = ResultsDatabase(
        records=[
            _record(),
            _record(donor="mtpaint-3.40", success=False, failure_reason="no patch"),
        ]
    )
    path = tmp_path / "results.json"
    database.save(path)
    loaded = ResultsDatabase.load(path)
    assert loaded.records == database.records


def test_load_tolerates_records_without_solver_fields(tmp_path):
    """Records saved before the campaign engine (no solver counters) still load."""
    database = ResultsDatabase(records=[_record()])
    path = tmp_path / "results.json"
    database.save(path)
    import json

    payload = json.loads(path.read_text())
    for entry in payload:
        for key in list(entry):
            if key.startswith("solver_"):
                del entry[key]
    path.write_text(json.dumps(payload))
    loaded = ResultsDatabase.load(path)
    assert loaded.records[0].solver_queries == 0
    assert loaded.records[0].recipient == "cwebp-0.3.1"


def test_table_rendering_is_stable():
    database = ResultsDatabase(records=[_record()])
    table = database.to_table(title="Figure 8 (reproduction)")
    lines = table.splitlines()
    assert lines[0] == "### Figure 8 (reproduction)"
    assert lines[2] == (
        "| Recipient | Target | Donor | Time (s) | Relevant | Flipped | Checks "
        "| Insertion Pts | Check Size |"
    )
    assert lines[3] == "|" + "---|" * 9
    assert lines[4] == (
        "| cwebp-0.3.1 | jpegdec.c:248 | feh-2.9.3 | 0.42 | 3 | 1 | 1 "
        "| 15 - 0 - 0 = 15 | 14 -> 11 |"
    )
    # The solver accounting is carried by the records but kept out of the
    # rendered Figure 8 columns.
    assert "solver" not in table


def test_table_without_title_has_no_heading():
    table = ResultsDatabase(records=[_record()]).to_table()
    assert table.splitlines()[0].startswith("| Recipient ")


def test_summary_aggregates_success_and_reduction():
    database = ResultsDatabase(
        records=[
            _record(check_size="14 -> 7"),
            _record(success=False, check_size="[8 -> 4, 6 -> 3]"),
        ]
    )
    summary = database.summary()
    assert summary["transfers"] == 2
    assert summary["successful"] == 1
    assert summary["success_rate"] == 0.5
    assert summary["mean_check_size_reduction"] == 2.0
