"""Shared fixtures for the CP reproduction test suite."""

from __future__ import annotations

import pytest

from repro.formats import get_format
from repro.solver import EquivalenceChecker
from repro.symbolic import builder


@pytest.fixture
def jpeg_format():
    return get_format("jpeg")


@pytest.fixture
def png_format():
    return get_format("png")


@pytest.fixture
def checker():
    return EquivalenceChecker()


@pytest.fixture
def width_field():
    return builder.input_field("/start_frame/content/width", 16)


@pytest.fixture
def height_field():
    return builder.input_field("/start_frame/content/height", 16)
