"""Unit and property tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import Solver, Status, solve_clauses


def brute_force(clauses, num_vars):
    """Reference satisfiability by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any((literal > 0) == bits[abs(literal) - 1] for literal in clause)
            for clause in clauses
        ):
            return True
    return False


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert solve_clauses([], num_vars=2).is_sat

    def test_single_unit_clause(self):
        result = solve_clauses([[1]])
        assert result.is_sat
        assert result.model[1] is True

    def test_contradictory_units(self):
        assert solve_clauses([[1], [-1]]).is_unsat

    def test_simple_implication_chain(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        result = solve_clauses(clauses)
        assert result.is_sat
        assert all(result.model[v] for v in (1, 2, 3, 4))

    def test_unsat_pigeonhole_2_in_1(self):
        # Two pigeons, one hole.
        clauses = [[1], [2], [-1, -2]]
        assert solve_clauses(clauses).is_unsat

    def test_tautological_clause_ignored(self):
        assert solve_clauses([[1, -1], [2]]).is_sat

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, -3], [-1, 3], [-2, -3], [2, 3]]
        result = solve_clauses(clauses, num_vars=3)
        assert result.is_sat
        for clause in clauses:
            assert any(
                (lit > 0) == result.model[abs(lit)] for lit in clause
            ), f"clause {clause} not satisfied"

    def test_assumptions_restrict_search(self):
        solver = Solver()
        solver.ensure_vars(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).is_sat
        solver2 = Solver()
        solver2.ensure_vars(2)
        solver2.add_clause([1, 2])
        solver2.add_clause([-2])
        assert solver2.solve(assumptions=[-1]).is_unsat

    def test_conflict_limit_returns_unknown_or_decides(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [1], [2]]
        result = solve_clauses(clauses, max_conflicts=0)
        assert result.status in (Status.UNSAT, Status.UNKNOWN, Status.SAT)

    def test_zero_literal_rejected(self):
        solver = Solver()
        with pytest.raises(Exception):
            solver.add_clause([0])


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(1, 8))
    num_clauses = draw(st.integers(1, 24))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(1, 3))
        clause = [
            draw(st.integers(1, num_vars)) * draw(st.sampled_from([1, -1]))
            for _ in range(size)
        ]
        clauses.append(clause)
    return num_vars, clauses


@given(random_cnf())
@settings(max_examples=120, deadline=None)
def test_agrees_with_brute_force(problem):
    num_vars, clauses = problem
    expected = brute_force(clauses, num_vars)
    result = solve_clauses(clauses, num_vars=num_vars)
    assert result.is_sat == expected
    if result.is_sat:
        for clause in clauses:
            assert any((lit > 0) == result.model[abs(lit)] for lit in clause)
