"""Tests for the integer-overflow-specific validation queries."""

from repro.solver import (
    EquivalenceChecker,
    check_blocks_overflow,
    overflow_condition,
    overflow_witness,
    widen,
)
from repro.symbolic import builder, evaluate


W = builder.input_field("/w", 16)
H = builder.input_field("/h", 16)
#: 32-bit allocation size: width * height * 3 (the CWebP/Dillo shape).
SIZE = builder.mul(builder.mul(builder.zext(W, 32), builder.zext(H, 32)), builder.const(3, 32))


class TestWiden:
    def test_widen_reveals_wraparound(self):
        env = {"/w": 65535, "/h": 65535}
        wrapped = evaluate(SIZE, env)
        widened = evaluate(widen(SIZE, 64), env)
        assert widened == 65535 * 65535 * 3
        assert wrapped == (65535 * 65535 * 3) & 0xFFFFFFFF
        assert widened != wrapped

    def test_widen_is_identity_for_small_values(self):
        env = {"/w": 10, "/h": 20}
        assert evaluate(widen(SIZE, 64), env) == evaluate(SIZE, env) == 600

    def test_widen_of_leaf(self):
        assert widen(W, 32).width == 32


class TestOverflowCondition:
    def test_condition_true_exactly_on_overflow(self):
        condition = overflow_condition(SIZE)
        assert evaluate(condition, {"/w": 65535, "/h": 65535}) == 1
        assert evaluate(condition, {"/w": 100, "/h": 100}) == 0

    def test_witness_found(self):
        checker = EquivalenceChecker()
        witness = overflow_witness(checker, SIZE)
        assert witness is not None
        assert evaluate(overflow_condition(SIZE), witness) == 1


class TestCheckBlocksOverflow:
    def test_feh_style_check_eliminates_overflow(self):
        checker = EquivalenceChecker()
        guard = builder.logical_not(
            builder.ule(builder.mul(builder.zext(W, 64), builder.zext(H, 64)), (1 << 29) - 1)
        )
        verdict = check_blocks_overflow(checker, guard, SIZE)
        assert verdict.eliminated

    def test_too_weak_check_does_not_eliminate(self):
        checker = EquivalenceChecker()
        # Barely constrains the width: large width/height pairs still overflow.
        guard = builder.ugt(builder.zext(W, 32), builder.const(65000, 32))
        verdict = check_blocks_overflow(checker, guard, SIZE)
        assert not verdict.eliminated
        assert verdict.witness is not None

    def test_path_constraints_can_rule_out_overflow(self):
        checker = EquivalenceChecker()
        guard = builder.false()  # a patch that never fires
        constraint = builder.logical_and(
            builder.ule(builder.zext(W, 32), 16), builder.ule(builder.zext(H, 32), 16)
        )
        verdict = check_blocks_overflow(checker, guard, SIZE, path_constraints=[constraint])
        assert verdict.eliminated
