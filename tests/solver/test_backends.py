"""Backend parity: DPLL, CDCL, and portfolio must agree on every verdict.

The :class:`SolverBackend` contract allows backends to differ in *which*
model witnesses a SAT answer and in budget-limited UNKNOWN outcomes — never
in SAT vs UNSAT.  These property tests drive all three backends over
randomized CNF formulas and randomized *blasted* bitvector queries (the
formulas the rewrite algorithm actually produces) and check:

* identical status on every query (no budget, so no UNKNOWNs);
* every SAT model satisfies every clause of the CNF;
* incremental use (clauses added between solves, assumption-scoped queries)
  agrees with a fresh solve of the same accumulated formula.
"""

import random

import pytest

from repro.solver.backends import BACKENDS, make_backend
from repro.solver.bitblast import BitBlaster
from repro.solver.sat import Status
from repro.symbolic import builder


ALL_BACKENDS = sorted(BACKENDS)


def random_cnf(rng: random.Random) -> tuple[int, list[list[int]]]:
    num_vars = rng.randint(3, 18)
    num_clauses = rng.randint(2, num_vars * 4)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, 3)
        clauses.append(
            [rng.choice((1, -1)) * rng.randint(1, num_vars) for _ in range(width)]
        )
    return num_vars, clauses


def solve_with(name: str, num_vars: int, clauses: list[list[int]], assumptions=()):
    backend = make_backend(name)
    backend.ensure_vars(num_vars)
    for clause in clauses:
        backend.add_clause(clause)
    return backend.solve(assumptions=assumptions)


def assert_model_satisfies(model: dict[int, bool], clauses: list[list[int]]) -> None:
    for clause in clauses:
        literals = set(clause)
        if any(-lit in literals for lit in literals):
            continue  # tautology, dropped at add_clause time
        assert any(
            (lit > 0) == model.get(abs(lit), False) for lit in literals
        ), f"model violates clause {clause}"


class TestRandomCnfParity:
    def test_verdicts_agree_and_models_satisfy(self):
        rng = random.Random(0xBACC)
        for _ in range(150):
            num_vars, clauses = random_cnf(rng)
            verdicts = {}
            for name in ALL_BACKENDS:
                result = solve_with(name, num_vars, clauses)
                assert result.status is not Status.UNKNOWN
                verdicts[name] = result.status
                if result.status is Status.SAT:
                    assert_model_satisfies(result.model, clauses)
            assert len(set(verdicts.values())) == 1, verdicts

    def test_verdicts_agree_under_assumptions(self):
        rng = random.Random(0xA55)
        for _ in range(80):
            num_vars, clauses = random_cnf(rng)
            assumptions = [
                rng.choice((1, -1)) * var
                for var in rng.sample(range(1, num_vars + 1), k=min(3, num_vars))
            ]
            verdicts = {
                name: solve_with(name, num_vars, clauses, assumptions).status
                for name in ALL_BACKENDS
            }
            assert len(set(verdicts.values())) == 1, (verdicts, assumptions)


def random_expression(rng: random.Random, fields, depth: int):
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.4:
            return builder.const(rng.getrandbits(8), 8)
        return rng.choice(fields)
    op = rng.choice(["add", "sub", "and", "or", "xor", "mul"])
    left = random_expression(rng, fields, depth - 1)
    right = random_expression(rng, fields, depth - 1)
    return {
        "add": builder.add,
        "sub": builder.sub,
        "and": builder.bvand,
        "or": builder.bvor,
        "xor": builder.bvxor,
        "mul": builder.mul,
    }[op](left, right)


class TestBlastedQueryParity:
    def test_backends_agree_on_blasted_queries(self):
        rng = random.Random(0xB1A5)
        fields = [builder.input_field("/x", 8), builder.input_field("/y", 8)]
        for _ in range(40):
            left = random_expression(rng, fields, 2)
            right = random_expression(rng, fields, 2)
            condition = builder.ne(left, right)

            blaster = BitBlaster()
            bit = blaster.blast(condition)[0]
            if isinstance(bit, bool):
                continue  # constant-folded: nothing for a backend to decide
            blaster.assert_bit(bit, True)
            clauses = blaster.cnf.clauses

            verdicts = {}
            for name in ALL_BACKENDS:
                result = solve_with(name, blaster.cnf.num_vars, clauses)
                assert result.status is not Status.UNKNOWN
                verdicts[name] = result.status
                if result.status is Status.SAT:
                    assert_model_satisfies(result.model, clauses)
            assert len(set(verdicts.values())) == 1, verdicts


class TestIncrementalContract:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_incremental_matches_fresh(self, name):
        """Adding clauses between solves == solving the whole formula fresh."""
        rng = random.Random(0x1C0)
        for _ in range(25):
            num_vars, clauses = random_cnf(rng)
            split = rng.randint(0, len(clauses))
            incremental = make_backend(name)
            incremental.ensure_vars(num_vars)
            for clause in clauses[:split]:
                incremental.add_clause(clause)
            incremental.solve()  # intermediate query; must not poison the next
            for clause in clauses[split:]:
                incremental.add_clause(clause)
            assert (
                incremental.solve().status
                == solve_with(name, num_vars, clauses).status
            )

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_assumptions_scope_single_query(self, name):
        backend = make_backend(name)
        backend.add_clause([1, 2])
        assert backend.solve(assumptions=[-1, -2]).status is Status.UNSAT
        assert backend.solve().status is Status.SAT

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_root_unsat_is_sticky(self, name):
        backend = make_backend(name)
        backend.add_clause([1])
        backend.add_clause([-1])
        assert backend.solve().status is Status.UNSAT
        assert backend.solve().status is Status.UNSAT

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_statistics_accumulate(self, name):
        backend = make_backend(name)
        backend.add_clause([1, 2])
        backend.solve()
        backend.solve(assumptions=[-1])
        stats = backend.statistics
        assert stats.queries == 2
        assert stats.sat == 2
        payload = stats.as_dict()
        assert payload["queries"] == 2

    def test_portfolio_records_wins(self):
        backend = make_backend("portfolio")
        backend.add_clause([1, 2])
        backend.solve()
        by_name = backend.statistics_by_name()
        assert set(by_name) == {"portfolio", "cdcl", "dpll"}
        assert sum(stats.wins for stats in by_name.values()) == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            make_backend("z3")
