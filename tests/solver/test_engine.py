"""ValidationEngine and QueryBatch: incremental solving, dedupe, namespacing."""

import pytest

from repro.solver import EquivalenceChecker, EquivalenceOptions, Verdict
from repro.solver.engine import QueryBatch, ValidationEngine
from repro.solver.equivalence import CACHE_SCHEMA_VERSION
from repro.solver.sat import Status
from repro.symbolic import builder, evaluate


A8 = builder.input_field("/a", 8)
B8 = builder.input_field("/b", 8)


class TestQueryBatch:
    def test_hit_and_miss_accounting(self):
        batch = QueryBatch()
        assert batch.get("cnf", "d1") is None
        batch.put("cnf", "d1", "outcome")
        assert batch.get("cnf", "d1") == "outcome"
        assert batch.hits == 1 and batch.misses == 1
        assert batch.dedupe_rate == 0.5

    def test_kinds_do_not_collide(self):
        batch = QueryBatch()
        batch.put("cnf", "d1", "a")
        batch.put("satisfiable", "d1", "b")
        assert batch.get("cnf", "d1") == "a"
        assert batch.get("satisfiable", "d1") == "b"


class TestValidationEngine:
    def test_sat_query_with_witness(self):
        engine = ValidationEngine()
        condition = builder.ugt(A8, 200)
        outcome = engine.check_sat(condition)
        assert outcome.is_sat
        assert evaluate(condition, outcome.witness) == 1

    def test_unsat_query(self):
        engine = ValidationEngine()
        condition = builder.logical_and(builder.ugt(A8, 200), builder.ult(A8, 100))
        assert engine.check_sat(condition).is_unsat

    def test_repeat_query_is_batched(self):
        engine = ValidationEngine()
        condition = builder.ugt(builder.add(A8, B8), 40)
        first = engine.check_sat(condition)
        queries_after_first = sum(
            stats.queries for stats in engine.statistics_by_name().values()
        )
        second = engine.check_sat(condition)
        queries_after_second = sum(
            stats.queries for stats in engine.statistics_by_name().values()
        )
        assert first.status == second.status
        assert queries_after_second == queries_after_first  # no new solver work
        assert engine.batch.hits == 1

    def test_queries_share_one_incremental_solver(self):
        """Later queries reuse the gates (and solver clauses) of earlier ones."""
        engine = ValidationEngine()
        shared = builder.mul(builder.add(A8, B8), 3)
        engine.check_sat(builder.ugt(shared, 100))
        fed_before = engine._fed_clauses
        # Same subcircuit, different comparison: only the comparison's gates
        # are new, so far fewer clauses are fed than a fresh blast would add.
        engine.check_sat(builder.ult(shared, 10))
        assert engine._fed_clauses > fed_before
        assert engine._fed_clauses - fed_before < fed_before

    def test_assumption_scoping_between_queries(self):
        """An UNSAT query must not poison a later satisfiable one."""
        engine = ValidationEngine()
        impossible = builder.logical_and(builder.ugt(A8, 200), builder.ult(A8, 100))
        assert engine.check_sat(impossible).is_unsat
        possible = builder.ugt(A8, 200)
        outcome = engine.check_sat(possible)
        assert outcome.is_sat
        assert evaluate(possible, outcome.witness) == 1

    def test_width_clash_falls_back_to_one_shot(self):
        engine = ValidationEngine()
        engine.check_sat(builder.ugt(builder.input_field("/w", 8), 10))
        # Same path at a different width clashes with the shared blaster's
        # field variables; the engine must still answer, via a fresh blast.
        clash = builder.ugt(builder.input_field("/w", 16), 1000)
        outcome = engine.check_sat(clash)
        assert outcome.is_sat
        assert evaluate(clash, outcome.witness) == 1

    def test_failed_blast_leaves_no_trace_in_the_shared_blaster(self):
        """A width-clashing query must not pollute later queries' state."""
        engine = ValidationEngine()
        engine.check_sat(builder.ugt(builder.input_field("/w", 8), 10))
        clauses_before = len(engine._blaster.cnf.clauses)
        # /fresh at 16 registers, then /w clashes: the whole episode must
        # roll back — no orphan gates, no half-registered /fresh field.
        clash = builder.logical_and(
            builder.ugt(builder.input_field("/fresh", 16), 5),
            builder.ugt(builder.input_field("/w", 16), 1000),
        )
        assert engine.check_sat(clash).is_sat  # answered one-shot
        assert len(engine._blaster.cnf.clauses) == clauses_before
        # /fresh at 8 now blasts in the shared solver without a clash.
        follow_up = builder.ugt(builder.input_field("/fresh", 8), 200)
        outcome = engine.check_sat(follow_up)
        assert outcome.is_sat
        assert evaluate(follow_up, outcome.witness) == 1
        assert len(engine._blaster.cnf.clauses) > clauses_before

    def test_unknown_outcomes_are_not_cached(self):
        engine = ValidationEngine(conflict_limit=0)
        # A commuted-addition miter needs search: budget 0 -> UNKNOWN.
        condition = builder.ne(builder.add(A8, B8), builder.add(B8, A8))
        assert engine.check_sat(condition).status is Status.UNKNOWN
        # A later ask with a real budget must re-solve, not replay UNKNOWN.
        assert engine.check_sat(condition, conflict_limit=100000).is_unsat

    def test_use_batch_false_disables_memoisation(self):
        engine = ValidationEngine(use_batch=False)
        condition = builder.ugt(builder.add(A8, B8), 40)
        engine.check_sat(condition)
        engine.check_sat(condition)
        assert engine.batch.hits == 0 and len(engine.batch) == 0

    def test_backend_parity_across_engines(self):
        conditions = [
            builder.ugt(builder.mul(A8, B8), 200),
            builder.logical_and(builder.ugt(A8, 200), builder.ult(A8, 100)),
            builder.eq(builder.add(A8, B8), builder.add(B8, A8)),
        ]
        for condition in conditions:
            statuses = {
                ValidationEngine(backend=name).check_sat(condition).status
                for name in ("cdcl", "dpll", "portfolio")
            }
            assert len(statuses) == 1
            assert Status.UNKNOWN not in statuses


class TestCheckerBackendSelection:
    @pytest.mark.parametrize("backend", ["cdcl", "dpll", "portfolio"])
    def test_checker_verdicts_identical_across_backends(self, backend):
        checker = EquivalenceChecker(options=EquivalenceOptions(backend=backend))
        result = checker.equivalent(builder.add(A8, B8), builder.add(B8, A8))
        assert result.verdict is Verdict.EQUIVALENT
        satisfiable, witness = checker.satisfiable(builder.ugt(A8, 200))
        assert satisfiable and witness["/a"] > 200

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            EquivalenceChecker(options=EquivalenceOptions(backend="minisat"))

    def test_satisfiable_verdicts_are_batched(self):
        checker = EquivalenceChecker()
        condition = builder.ugt(builder.mul(A8, B8), 200)
        first = checker.satisfiable(condition)
        hits_before = checker.query_batch.hits
        second = checker.satisfiable(condition)
        assert first == second
        assert checker.query_batch.hits > hits_before


class TestPersistentNamespacing:
    def _checker(self, tmp_path, backend="cdcl", **overrides):
        options = EquivalenceOptions(
            persistent_cache_path=str(tmp_path / "cache.jsonl"),
            backend=backend,
            **overrides,
        )
        return EquivalenceChecker(options=options)

    def test_proved_verdicts_shared_across_backends(self, tmp_path):
        writer = self._checker(tmp_path, backend="cdcl")
        writer.equivalent(builder.add(A8, B8), builder.add(B8, A8))  # proved
        reader = self._checker(tmp_path, backend="dpll")
        reader.equivalent(builder.add(A8, B8), builder.add(B8, A8))
        assert reader.statistics.persistent_cache_hits == 1

    def test_namespace_carries_schema_version(self, tmp_path):
        checker = self._checker(tmp_path)
        assert checker._ns_neutral.startswith(str(CACHE_SCHEMA_VERSION) + ":")
        assert checker._ns_backend == checker._ns_neutral + ":cdcl"

    def test_satisfiable_verdicts_persist(self, tmp_path):
        writer = self._checker(tmp_path)
        condition = builder.ugt(builder.mul(A8, B8), 200)
        answer = writer.satisfiable(condition)
        reader = self._checker(tmp_path)
        assert reader.satisfiable(condition) == answer
        assert reader.statistics.persistent_cache_hits == 1

    def test_sat_timeout_verdicts_quarantined_per_backend(self, tmp_path):
        # A conflict budget of zero forces the blasted equivalence query to
        # time out, producing a backend-dependent "sat-timeout" verdict.
        # (A commuted multiplication is genuinely equivalent, so sampling
        # cannot refute it, and the zero budget stops the UNSAT proof.)
        left = builder.mul(A8, B8)
        right = builder.mul(B8, A8)
        writer = self._checker(
            tmp_path,
            backend="cdcl",
            sample_count=0,
            exhaustive_bit_limit=0,
            sat_conflict_limit=0,
            sat_cost_budget=100000,
        )
        result = writer.equivalent(left, right)
        assert result.method == "sat-timeout"
        # Same options, different backend: must not replay cdcl's timeout.
        reader = self._checker(
            tmp_path,
            backend="dpll",
            sample_count=0,
            exhaustive_bit_limit=0,
            sat_conflict_limit=0,
            sat_cost_budget=100000,
        )
        reader.equivalent(left, right)
        assert reader.statistics.persistent_cache_hits == 0
        # But the same backend does hit its own quarantined entry.
        replay = self._checker(
            tmp_path,
            backend="cdcl",
            sample_count=0,
            exhaustive_bit_limit=0,
            sat_conflict_limit=0,
            sat_cost_budget=100000,
        )
        replay.equivalent(left, right)
        assert replay.statistics.persistent_cache_hits == 1
