"""Tests for the hybrid equivalence checker and its two paper optimisations."""

from repro.solver import EquivalenceChecker, EquivalenceOptions, Verdict
from repro.symbolic import SimplifyOptions, builder


A8 = builder.input_field("/a", 8)
B8 = builder.input_field("/b", 8)
W16 = builder.input_field("/w", 16)


class TestVerdicts:
    def test_syntactic_equivalence(self, checker):
        result = checker.equivalent(builder.add(A8, 1), builder.add(A8, 1))
        assert result.verdict is Verdict.EQUIVALENT
        assert result.method == "syntactic"

    def test_simplification_based_equivalence(self, checker):
        hi = builder.extract(W16, 15, 8)
        lo = builder.extract(W16, 7, 0)
        assembled = builder.bvor(builder.shl(builder.zext(hi, 16), 8), builder.zext(lo, 16))
        assert checker.equivalent(assembled, W16).verdict is Verdict.EQUIVALENT

    def test_commutativity_proved(self, checker):
        result = checker.equivalent(builder.add(A8, B8), builder.add(B8, A8))
        assert result.verdict is Verdict.EQUIVALENT
        assert result.method in ("exhaustive", "sat")

    def test_inequivalence_with_witness(self, checker):
        result = checker.equivalent(builder.add(A8, 1), builder.add(A8, 2))
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert result.witness is not None

    def test_width_mismatch_not_equivalent(self, checker):
        result = checker.equivalent(A8, W16)
        assert result.verdict is Verdict.NOT_EQUIVALENT

    def test_disjoint_fields_skips_solver(self, checker):
        result = checker.equivalent(A8, B8)
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert result.method == "disjoint-fields"
        assert checker.statistics.disjoint_field_skips == 1

    def test_wide_multiplication_falls_back_to_sampling(self, checker):
        w32 = builder.input_field("/w32", 32)
        h32 = builder.input_field("/h32", 32)
        left = builder.mul(builder.zext(w32, 64), builder.zext(h32, 64))
        right = builder.mul(builder.zext(h32, 64), builder.zext(w32, 64))
        result = checker.equivalent(left, right)
        assert result.verdict in (Verdict.PROBABLY_EQUIVALENT, Verdict.EQUIVALENT)
        assert result.verdict.accepts

    def test_verdict_accepts_property(self):
        assert Verdict.EQUIVALENT.accepts
        assert Verdict.PROBABLY_EQUIVALENT.accepts
        assert not Verdict.NOT_EQUIVALENT.accepts
        assert Verdict.EQUIVALENT.proved and Verdict.NOT_EQUIVALENT.proved
        assert not Verdict.PROBABLY_EQUIVALENT.proved


class TestOptimisations:
    def test_query_cache_hit(self):
        checker = EquivalenceChecker()
        checker.equivalent(builder.add(A8, B8), builder.add(B8, A8))
        checker.equivalent(builder.add(A8, B8), builder.add(B8, A8))
        assert checker.statistics.cache_hits == 1

    def test_cache_is_symmetric(self):
        checker = EquivalenceChecker()
        checker.equivalent(builder.add(A8, B8), builder.add(B8, A8))
        checker.equivalent(builder.add(B8, A8), builder.add(A8, B8))
        assert checker.statistics.cache_hits == 1

    def test_optimisations_can_be_disabled(self):
        options = EquivalenceOptions(use_cache=False, use_disjoint_field_filter=False)
        checker = EquivalenceChecker(options=options)
        checker.equivalent(A8, B8)
        checker.equivalent(A8, B8)
        assert checker.statistics.cache_hits == 0
        assert checker.statistics.disjoint_field_skips == 0

    def test_statistics_track_queries(self):
        checker = EquivalenceChecker()
        checker.equivalent(A8, builder.add(A8, 0))
        assert checker.statistics.queries == 1


class TestSatisfiability:
    def test_satisfiable_condition(self, checker):
        satisfiable, witness = checker.satisfiable(builder.ugt(A8, 200))
        assert satisfiable
        assert witness["/a"] > 200

    def test_unsatisfiable_condition(self, checker):
        condition = builder.logical_and(builder.ugt(A8, 200), builder.ult(A8, 100))
        satisfiable, witness = checker.satisfiable(condition)
        assert not satisfiable

    def test_simplifier_options_respected(self):
        checker = EquivalenceChecker(simplify_options=SimplifyOptions.none())
        result = checker.equivalent(builder.add(A8, 0), A8)
        # Even without simplification the exhaustive/SAT path proves it.
        assert result.verdict.accepts
