"""Bit-blaster tests: circuits must agree with the expression evaluator."""

from hypothesis import given, settings, strategies as st

from repro.solver import BitBlaster, Solver, estimate_blast_cost
from repro.symbolic import Kind, builder, evaluate
from repro.symbolic.expr import Binary


A = builder.input_field("/a", 4)
B = builder.input_field("/b", 4)


def circuit_value(expr, env):
    """Evaluate ``expr`` through the CNF encoding with inputs pinned to ``env``."""
    blaster = BitBlaster()
    bits = blaster.blast(expr)
    # Pin the input field bits (allocating any field variables the expression
    # did not reference before sizing the solver).
    assumptions = []
    for path, value in env.items():
        for index, literal in enumerate(blaster.field_bits(path, 4)):
            assumptions.append(literal if (value >> index) & 1 else -literal)
    solver = Solver()
    solver.ensure_vars(blaster.cnf.num_vars)
    for clause in blaster.cnf.clauses:
        solver.add_clause(clause)
    result = solver.solve(assumptions=assumptions)
    assert result.is_sat
    value = 0
    for index, bit in enumerate(bits):
        if isinstance(bit, bool):
            bit_value = bit
        else:
            bit_value = result.model[abs(bit)] if bit > 0 else not result.model[abs(bit)]
        if bit_value:
            value |= 1 << index
    return value


_BINARY_OPS = [
    builder.add,
    builder.sub,
    builder.mul,
    builder.udiv,
    builder.urem,
    builder.sdiv,
    builder.srem,
    builder.bvand,
    builder.bvor,
    builder.bvxor,
    builder.shl,
    builder.lshr,
    builder.ashr,
    builder.eq,
    builder.ne,
    builder.ult,
    builder.ule,
    builder.slt,
    builder.sle,
    builder.ugt,
    builder.sge,
]


@given(
    st.sampled_from(_BINARY_OPS),
    st.integers(0, 15),
    st.integers(0, 15),
)
@settings(max_examples=300, deadline=None)
def test_binary_operators_match_evaluator(operation, a, b):
    expr = operation(A, B)
    env = {"/a": a, "/b": b}
    assert circuit_value(expr, env) == evaluate(expr, env)


@given(st.integers(0, 15), st.integers(0, 15))
@settings(max_examples=60, deadline=None)
def test_composed_expression_matches_evaluator(a, b):
    expr = builder.ule(
        builder.mul(builder.zext(A, 8), builder.zext(B, 8)), builder.const(29, 8)
    )
    env = {"/a": a, "/b": b}
    assert circuit_value(expr, env) == evaluate(expr, env)


@given(st.integers(0, 15))
@settings(max_examples=30, deadline=None)
def test_unary_and_structural_nodes(a):
    env = {"/a": a, "/b": 0}
    for expr in (
        builder.neg(A),
        builder.bvnot(A),
        builder.extract(A, 2, 1),
        builder.zext(A, 9),
        builder.sext(A, 9),
        builder.concat(A, B),
        builder.ite(builder.ult(A, B), A, B),
    ):
        assert circuit_value(expr, env) == evaluate(expr, env)


def test_cost_estimate_orders_operations():
    cheap = builder.add(builder.zext(A, 32), builder.zext(B, 32))
    multiply = builder.mul(builder.zext(A, 32), builder.zext(B, 32))
    divide = builder.udiv(builder.zext(A, 32), builder.zext(B, 32))
    assert estimate_blast_cost(cheap) < estimate_blast_cost(multiply) < estimate_blast_cost(divide)


def test_field_width_conflict_rejected():
    blaster = BitBlaster()
    blaster.field_bits("/x", 8)
    try:
        blaster.field_bits("/x", 16)
        assert False, "expected BlastError"
    except Exception:
        pass
