"""Tests for the field/field-map primitives, raw mode, and the generator."""

import pytest

from repro.formats import Field, FieldMap, FormatError, InputGenerator, RawFormat, get_format, raw_path
from repro.formats.generator import corpus_for
from repro.symbolic import evaluate


class TestField:
    def test_big_endian_read_write(self):
        field = Field(path="/x", offset=2, size=2, endianness="big")
        data = bytearray(6)
        field.write(data, 0xABCD)
        assert bytes(data[2:4]) == b"\xab\xcd"
        assert field.read(bytes(data)) == 0xABCD

    def test_little_endian_read_write(self):
        field = Field(path="/x", offset=0, size=4, endianness="little")
        data = bytearray(4)
        field.write(data, 0x11223344)
        assert field.read(bytes(data)) == 0x11223344
        assert data[0] == 0x44

    def test_symbolic_byte_positions(self):
        field = Field(path="/x", offset=0, size=2, endianness="big")
        assert evaluate(field.symbolic_byte(0), {"/x": 0xABCD}) == 0xAB
        assert evaluate(field.symbolic_byte(1), {"/x": 0xABCD}) == 0xCD
        little = Field(path="/y", offset=0, size=2, endianness="little")
        assert evaluate(little.symbolic_byte(0), {"/y": 0xABCD}) == 0xCD

    def test_invalid_fields_rejected(self):
        with pytest.raises(FormatError):
            Field(path="x", offset=0, size=1)
        with pytest.raises(FormatError):
            Field(path="/x", offset=0, size=0)
        with pytest.raises(FormatError):
            Field(path="/x", offset=0, size=1, endianness="middle")

    def test_read_past_end_rejected(self):
        field = Field(path="/x", offset=4, size=4)
        with pytest.raises(FormatError):
            field.read(b"\x00" * 6)


class TestFieldMap:
    def _map(self):
        return FieldMap(
            [
                Field(path="/a", offset=0, size=2),
                Field(path="/b", offset=4, size=1),
            ],
            total_size=8,
        )

    def test_lookup_by_path_and_offset(self):
        layout = self._map()
        assert layout.field("/a").size == 2
        assert layout.field_at(1).path == "/a"
        assert layout.field_at(4).path == "/b"
        assert layout.field_at(3) is None

    def test_overlapping_fields_rejected(self):
        with pytest.raises(FormatError):
            FieldMap(
                [Field(path="/a", offset=0, size=2), Field(path="/b", offset=1, size=2)],
                total_size=4,
            )

    def test_duplicate_paths_rejected(self):
        with pytest.raises(FormatError):
            FieldMap(
                [Field(path="/a", offset=0, size=1), Field(path="/a", offset=2, size=1)],
                total_size=4,
            )

    def test_differing_fields(self):
        layout = self._map()
        first = bytes([0, 1, 0, 0, 7, 0, 0, 0])
        second = bytes([0, 2, 0, 0, 7, 0, 0, 0])
        assert layout.differing_fields(first, second) == ["/a"]

    def test_unknown_path_raises(self):
        with pytest.raises(FormatError):
            self._map().field("/zzz")


class TestRawMode:
    def test_every_byte_is_a_field(self):
        data = b"\x01\x02\x03"
        layout = RawFormat().field_map(data)
        assert len(layout) == 3
        assert layout.field(raw_path(1)).read(data) == 2

    def test_build_from_offsets(self):
        data = RawFormat().build({raw_path(0): 0xAA, raw_path(3): 0xBB})
        assert data == b"\xaa\x00\x00\xbb"


class TestGenerator:
    def test_regression_corpus_is_benign(self):
        spec = get_format("swf")
        corpus = InputGenerator(spec).regression_corpus(10)
        assert len(corpus) == 10
        for data in corpus[1:]:
            values = spec.parse(data)
            # Single-byte fields (sampling factors) stay within donor-accepted
            # ranges so regression suites do not exercise rejected inputs.
            assert 1 <= values["/jpeg/h_samp"] <= 4
            assert 1 <= values["/jpeg/width"] <= 64

    def test_regression_corpus_is_deterministic(self):
        spec = get_format("png")
        assert InputGenerator(spec, seed=7).regression_corpus() == InputGenerator(
            spec, seed=7
        ).regression_corpus()

    def test_mutations_change_named_field(self):
        spec = get_format("gif")
        generator = InputGenerator(spec)
        seed = generator.seed_input()
        mutated = generator.mutate_field(seed, "/image/code_size", 16)
        assert spec.parse(mutated)["/image/code_size"] == 16

    def test_random_mutations_touch_requested_fields_only(self):
        spec = get_format("dcp")
        generator = InputGenerator(spec)
        seed = generator.seed_input()
        layout = spec.field_map(seed)
        for mutant in generator.random_field_mutations(seed, 20, paths=["/dcp/plen"]):
            assert set(layout.differing_fields(seed, mutant)) <= {"/dcp/plen"}

    def test_corpus_for_labels_inputs(self):
        corpus = corpus_for([get_format("jpeg"), get_format("png")], per_format=3)
        assert len(corpus) == 6
        assert {entry.format_name for entry in corpus} == {"jpeg", "png"}
