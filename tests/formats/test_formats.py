"""Tests for every registered input format."""

import pytest

from repro.formats import FormatError, all_formats, get_format, identify
from repro.symbolic import evaluate

FORMAT_NAMES = [spec.name for spec in all_formats()]


@pytest.mark.parametrize("name", FORMAT_NAMES)
class TestEveryFormat:
    def test_seed_matches_magic(self, name):
        spec = get_format(name)
        assert spec.matches(spec.build())

    def test_identify_round_trip(self, name):
        spec = get_format(name)
        assert identify(spec.build()).name == name

    def test_parse_build_round_trip(self, name):
        spec = get_format(name)
        seed = spec.build()
        assert spec.build(spec.parse(seed)) == seed

    def test_field_values_match_defaults(self, name):
        spec = get_format(name)
        values = spec.parse(spec.build())
        for default in spec.field_defaults:
            assert values[default.path] == default.default

    def test_with_values_changes_exactly_one_field(self, name):
        spec = get_format(name)
        seed = spec.build()
        layout = spec.field_map(seed)
        path = layout.paths()[0]
        mutated = spec.with_values(seed, **{path: 1})
        differing = layout.differing_fields(seed, mutated)
        assert differing in ([path], [])  # [] if the default already equals 1

    def test_symbolic_byte_consistency(self, name):
        """Concatenating each field's byte expressions reproduces the field value."""
        spec = get_format(name)
        seed = spec.build()
        layout = spec.field_map(seed)
        values = layout.values(seed)
        for field in layout:
            total = 0
            for offset in range(field.offset, field.end):
                byte_expr = layout.symbolic_byte(offset)
                byte_value = evaluate(byte_expr, {field.path: values[field.path]})
                assert seed[offset] == byte_value
                total = (total << 8) | byte_value if field.endianness == "big" else total
            if field.endianness == "big":
                assert total == values[field.path]

    def test_unstructured_bytes_get_raw_labels(self, name):
        spec = get_format(name)
        seed = spec.build()
        layout = spec.field_map(seed)
        structured = {offset for field in layout for offset in range(field.offset, field.end)}
        for offset in range(len(seed)):
            expr = layout.symbolic_byte(offset)
            if offset not in structured:
                assert expr.fields() == frozenset({f"/raw/offset_{offset}"})

    def test_describe_mentions_every_field(self, name):
        spec = get_format(name)
        description = spec.describe()
        for default in spec.field_defaults:
            assert default.path in description


class TestRegistry:
    def test_unknown_format_raises(self):
        with pytest.raises(FormatError):
            get_format("bmp")

    def test_unknown_field_override_rejected(self):
        with pytest.raises(FormatError):
            get_format("jpeg").build({"/nope": 1})

    def test_identify_falls_back_to_raw(self):
        assert identify(b"\x00" * 64).name == "raw"

    def test_all_formats_excludes_raw(self):
        assert "raw" not in [spec.name for spec in all_formats()]
        assert len(all_formats()) == 7
