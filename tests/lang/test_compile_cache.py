"""Regression tests for the content-addressed compile cache.

The stale-cache bug class: a compiled artifact outliving the source it was
built from.  The cache is keyed by ``program_digest`` (SHA-256 of the source
text), so every semantic change — in particular a ``patcher`` rewrite that
inserts a transferred check — lands under a fresh key and the stale artifact
is unreachable by construction.  These tests pin that property down,
including across ``scoped_registration`` boundaries (campaign workers
register and tear down generated applications constantly) and at the LRU
capacity bound.
"""

from __future__ import annotations

import pytest

from repro.apps.registry import Application, scoped_registration
from repro.lang import (
    RunStatus,
    SourcePatch,
    apply_patch,
    clear_compile_cache,
    compile_bytecode,
    compile_cache_info,
    compile_program,
    parse_program,
    program_digest,
    run_program,
)

SOURCE = """
struct image { u32 width; u32 height; };

int load() {
    struct image img;
    img.width = read_u16_be();
    img.height = read_u16_be();
    u8* data = malloc(img.width * img.height * 4);
    if (data == 0) {
        return 1;
    }
    emit(img.width);
    return 0;
}

int main() {
    return load();
}
"""


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _anchor_statement() -> int:
    unit = parse_program(SOURCE)
    return unit.function("load").body.statements[2].node_id


class TestPatcherInvalidation:
    def test_patched_program_compiles_under_fresh_key(self):
        original = compile_program(SOURCE)
        compile_bytecode(original)  # warm the cache with the unpatched form

        patch = SourcePatch(_anchor_statement(), "img.width > 1000")
        patched = apply_patch(SOURCE, patch)

        assert program_digest(patched.program) != program_digest(original)
        compile_bytecode(patched.program)
        digests = compile_cache_info()["digests"]
        assert program_digest(original) in digests
        assert program_digest(patched.program) in digests

    def test_patched_behaviour_not_served_from_stale_artifact(self):
        # Run the unpatched program first so its compiled form is cached,
        # then run the patched program: the check must actually fire.
        big = (2000).to_bytes(2, "big") + (10).to_bytes(2, "big")
        original = compile_program(SOURCE)
        assert run_program(original, big).accepted

        patch = SourcePatch(_anchor_statement(), "img.width > 1000")
        patched = apply_patch(SOURCE, patch)
        assert run_program(patched.program, big).status is RunStatus.EXIT
        # And the original, still-cached artifact keeps its old behaviour.
        assert run_program(original, big).accepted

    def test_equal_sources_share_one_artifact(self):
        first = compile_program(SOURCE, name="a")
        second = compile_program(SOURCE, name="a")
        assert compile_bytecode(first) is compile_bytecode(second)
        assert compile_cache_info()["entries"] == 1


class TestScopedRegistrationBoundaries:
    """Campaign workers re-register generated apps; content addressing makes
    the compile cache immune to name reuse across those boundaries."""

    def _app(self, source: str) -> Application:
        return Application(
            name="gen-cache-probe",
            version="0",
            source=source,
            formats=("raw",),
            role="recipient",
            library="gen-test",
        )

    def test_name_reuse_with_different_source_is_not_stale(self):
        emit_one = "int main() { emit(1); return 0; }"
        emit_two = "int main() { emit(2); return 0; }"

        with scoped_registration(self._app(emit_one)) as (app,):
            assert run_program(app.program(), b"").output == [1]
        with scoped_registration(self._app(emit_two)) as (app,):
            # Same registry name, different source: must not replay 1.
            assert run_program(app.program(), b"").output == [2]

        digests = compile_cache_info()["digests"]
        assert program_digest(compile_program(emit_one)) in digests
        assert program_digest(compile_program(emit_two)) in digests

    def test_artifact_survives_scope_exit_for_same_content(self):
        source = "int main() { emit(7); return 0; }"
        with scoped_registration(self._app(source)) as (app,):
            artifact = compile_bytecode(app.program())
        # The registry scope is gone, but the same content re-registered
        # under any name still hits the same compiled artifact.
        with scoped_registration(self._app(source)) as (app,):
            assert compile_bytecode(app.program()) is artifact


class TestCacheBounds:
    def test_lru_evicts_oldest_beyond_capacity(self):
        capacity = compile_cache_info()["capacity"]
        programs = [
            compile_program(f"int main() {{ emit({i}); return 0; }}")
            for i in range(capacity + 3)
        ]
        for program in programs:
            compile_bytecode(program)
        info = compile_cache_info()
        assert info["entries"] == capacity
        assert program_digest(programs[0]) not in info["digests"]
        assert program_digest(programs[-1]) in info["digests"]

    def test_observed_artifact_cached_under_distinct_key(self):
        program = compile_program(SOURCE)
        plain = compile_bytecode(program)
        observed = compile_bytecode(program, observed=True)
        assert observed is not plain
        info = compile_cache_info()
        assert info["entries"] == 2
        # A second observed request hits the observed entry, not the plain one.
        assert compile_bytecode(program, observed=True) is observed
        assert compile_bytecode(program) is plain
