"""Tests for the MicroC VM: semantics, taint/symbolic shadow state, errors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.formats import RawFormat, get_format
from repro.lang import ErrorKind, RunStatus, compile_program, run_program
from repro.symbolic import evaluate


def run_source(source, data=b"", field_map=None):
    program = compile_program(source)
    return run_program(program, data, field_map)


class TestArithmeticSemantics:
    def test_unsigned_wraparound(self):
        result = run_source("int main() { u32 x = 4294967295; x = x + 2; emit(x); return 0; }")
        assert result.output == [1]

    def test_signed_division_truncates(self):
        result = run_source("int main() { i32 x = -7; i32 y = 2; emit((u32)(x / y)); return 0; }")
        assert result.output == [(-3) & 0xFFFFFFFF]

    def test_mixed_width_promotion(self):
        result = run_source(
            "int main() { u16 a = 40000; u32 b = 100000; emit(a + b); return 0; }"
        )
        assert result.output == [140000]

    def test_shift_and_mask(self):
        result = run_source("int main() { u32 x = (255 << 8) | 7; emit(x & 0xFF00); return 0; }")
        assert result.output == [0xFF00]

    def test_logical_short_circuit(self):
        # The right operand would divide by zero; && must not evaluate it.
        result = run_source(
            "int main() { u32 z = 0; if ((z != 0) && ((10 / z) > 0)) { emit(1); } emit(2); return 0; }"
        )
        assert result.status is RunStatus.OK
        assert result.output == [2]

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_addition_matches_reference(self, a, b):
        result = run_source(f"int main() {{ u32 a = {a}; u32 b = {b}; emit(a + b); return 0; }}")
        assert result.output == [(a + b) & 0xFFFFFFFF]


class TestControlFlowAndCalls:
    def test_while_loop_and_function_call(self):
        result = run_source(
            """
            u32 sum_to(u32 n) {
                u32 total = 0;
                u32 i = 1;
                while (i <= n) {
                    total = total + i;
                    i = i + 1;
                }
                return total;
            }
            int main() { emit(sum_to(10)); return 0; }
            """
        )
        assert result.output == [55]

    def test_struct_pointer_arguments(self):
        result = run_source(
            """
            struct box { u32 value; };
            int fill(struct box* b) { b->value = 42; return 0; }
            int main() { struct box b; fill(&b); emit(b.value); return 0; }
            """
        )
        assert result.output == [42]

    def test_runaway_loop_is_stopped(self):
        result = run_source("int main() { u32 x = 1; while (x) { x = 1; } return 0; }")
        assert result.status is RunStatus.ERROR
        assert result.error.kind is ErrorKind.RESOURCE_EXHAUSTED


class TestErrorDetection:
    def test_divide_by_zero(self):
        result = run_source("int main() { u32 z = 0; emit(4 / z); return 0; }")
        assert result.error.kind is ErrorKind.DIVIDE_BY_ZERO

    def test_out_of_bounds_write(self):
        result = run_source(
            "int main() { u8* b = malloc(4); store8(b, 4, 1); return 0; }"
        )
        assert result.error.kind is ErrorKind.OUT_OF_BOUNDS_WRITE

    def test_in_bounds_write_ok(self):
        result = run_source(
            "int main() { u8* b = malloc(4); store8(b, 3, 9); emit(load8(b, 3)); return 0; }"
        )
        assert result.ok and result.output == [9]

    def test_null_dereference(self):
        result = run_source(
            """
            struct s { u32 x; };
            int main() { struct s* p; emit(p->x); return 0; }
            """
        )
        assert result.error.kind is ErrorKind.NULL_DEREFERENCE

    def test_allocation_overflow_detected(self):
        result = run_source(
            "int main() { u32 big = 70000; u8* b = malloc(big * big); return 0; }"
        )
        assert result.error.kind is ErrorKind.INTEGER_OVERFLOW
        assert result.allocations[0].overflowed

    def test_exit_is_not_an_error(self):
        result = run_source("int main() { exit(-1); return 0; }")
        assert result.status is RunStatus.EXIT
        assert result.exit_code == -1
        assert result.ok


class TestTaintAndSymbolicTracking:
    SOURCE = """
    int main() {
        u8 hi = read_byte();
        u8 lo = read_byte();
        u32 width = ((u32) hi << 8) | (u32) lo;
        if (width > 100) {
            emit(1);
        }
        u8* buffer = malloc(width * 4);
        return 0;
    }
    """

    def _run(self, value):
        program = compile_program(self.SOURCE)
        from repro.formats import Field, FieldMap

        data = value.to_bytes(2, "big")
        layout = FieldMap([Field(path="/w", offset=0, size=2, endianness="big")], 2)
        return run_program(program, data, layout)

    def test_branch_condition_symbolic_over_field(self):
        result = self._run(300)
        branch = result.branches[0]
        assert branch.taken is True
        assert branch.fields() == frozenset({"/w"})
        assert evaluate(branch.symbolic, {"/w": 300}) == 1
        assert evaluate(branch.symbolic, {"/w": 50}) == 0

    def test_allocation_symbolic_expression(self):
        result = self._run(70)
        allocation = result.allocations[0]
        assert allocation.size == 280
        assert evaluate(allocation.symbolic, {"/w": 70}) == 280
        assert result.fields_read == frozenset({"/w"})

    def test_raw_mode_labels(self):
        program = compile_program(self.SOURCE)
        result = run_program(program, b"\x00\x05", RawFormat().field_map(b"\x00\x05"))
        assert result.allocations[0].fields() == {"/raw/offset_0", "/raw/offset_1"}


class TestBehaviourAndRegression:
    def test_behaviour_tuple_captures_output_and_exit(self):
        first = run_source("int main() { emit(1); emit(2); return 0; }")
        second = run_source("int main() { emit(1); emit(2); return 0; }")
        third = run_source("int main() { emit(1); emit(3); return 0; }")
        assert first.behaviour() == second.behaviour()
        assert first.behaviour() != third.behaviour()

    def test_run_on_format_seed(self):
        jpeg = get_format("jpeg")
        from repro.apps import get_application

        result = run_program(
            get_application("cwebp").program(), jpeg.build(), jpeg.field_map(jpeg.build())
        )
        assert result.accepted
