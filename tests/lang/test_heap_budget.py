"""Edge-case tests for ``VMConfig.max_heap_bytes``.

The budget is a strict ceiling on *cumulative wrapped allocation size*: an
allocation that lands the total exactly on the budget succeeds, one byte
more raises ``RESOURCE_EXHAUSTED``, and a budget of 0 disables the check.
Both execution tiers account identically — including for sparse buffers
above ``ARENA_LIMIT``, where the compiled tier's arena backing switches to
the interpreter's dict representation but the budget still counts the full
requested size, not the bytes materialised by the host.
"""

from __future__ import annotations

import pytest

from repro.lang import ErrorKind, RunStatus, VMConfig, VM, compile_program
from repro.lang.memory import ARENA_LIMIT

TIERS = [pytest.param(False, id="interpreter"), pytest.param(True, id="compiled")]


def _run(source: str, *, max_heap_bytes: int, compiled: bool):
    program = compile_program(source)
    config = VMConfig(max_heap_bytes=max_heap_bytes, use_compiled=compiled)
    vm = VM(program, config=config)
    return vm.run(b""), vm


@pytest.mark.parametrize("compiled", TIERS)
class TestBudgetBoundary:
    def test_allocation_exactly_at_budget_succeeds(self, compiled):
        result, _ = _run(
            "int main() { u8* p = malloc(4096); emit(1); return 0; }",
            max_heap_bytes=4096,
            compiled=compiled,
        )
        assert result.status is RunStatus.OK
        assert result.output == [1]

    def test_one_byte_over_budget_is_resource_exhausted(self, compiled):
        result, _ = _run(
            "int main() { u8* p = malloc(4097); emit(1); return 0; }",
            max_heap_bytes=4096,
            compiled=compiled,
        )
        assert result.status is RunStatus.ERROR
        assert result.error.kind is ErrorKind.RESOURCE_EXHAUSTED
        assert result.output == []  # the failing allocation never completes

    def test_budget_is_cumulative_across_allocations(self, compiled):
        source = """
        int main() {
            u8* a = malloc(3000);
            u8* b = malloc(1096);
            emit(1);
            u8* c = malloc(1);
            emit(2);
            return 0;
        }
        """
        result, vm = _run(source, max_heap_bytes=4096, compiled=compiled)
        assert result.status is RunStatus.ERROR
        assert result.error.kind is ErrorKind.RESOURCE_EXHAUSTED
        assert result.output == [1]  # first two allocations fill it exactly
        assert len(vm.heap) == 2

    def test_zero_budget_disables_the_check(self, compiled):
        result, _ = _run(
            f"int main() {{ u8* p = malloc64({1 << 33}); emit(1); return 0; }}",
            max_heap_bytes=0,
            compiled=compiled,
        )
        assert result.status is RunStatus.OK

    def test_failed_allocation_still_recorded_in_trace(self, compiled):
        result, _ = _run(
            "int main() { u8* p = malloc(100); return 0; }",
            max_heap_bytes=10,
            compiled=compiled,
        )
        assert result.status is RunStatus.ERROR
        assert [record.size for record in result.allocations] == [100]


@pytest.mark.parametrize("compiled", TIERS)
class TestArenaDictParity:
    """Budget accounting must not depend on the storage representation."""

    def test_sparse_buffer_counts_requested_size(self, compiled):
        # Above ARENA_LIMIT the compiled tier keeps the buffer sparse (no
        # bytearray), exactly like the interpreter's dict-backed Buffer —
        # but the *requested* size is what the budget charges in both.
        size = ARENA_LIMIT + 1
        result, vm = _run(
            f"int main() {{ u8* p = malloc({size}); emit(1); return 0; }}",
            max_heap_bytes=size,
            compiled=compiled,
        )
        assert result.status is RunStatus.OK
        (buffer,) = vm.heap
        assert buffer.size == size
        assert getattr(buffer, "data", None) is None  # stayed sparse

        result, _ = _run(
            f"int main() {{ u8* p = malloc({size}); return 0; }}",
            max_heap_bytes=size - 1,
            compiled=compiled,
        )
        assert result.status is RunStatus.ERROR
        assert result.error.kind is ErrorKind.RESOURCE_EXHAUSTED

    def test_sparse_buffer_store_load_round_trip(self, compiled):
        size = ARENA_LIMIT + 16
        source = f"""
        int main() {{
            u8* p = malloc({size});
            store8(p, {size - 1}, 170);
            emit(load8(p, {size - 1}));
            emit(load8(p, 0));
            return 0;
        }}
        """
        result, _ = _run(source, max_heap_bytes=0, compiled=compiled)
        assert result.status is RunStatus.OK
        assert result.output == [170, 0]


def test_tier_parity_on_exhaustion_report():
    """Both tiers produce the same verdict and message for the same breach."""
    source = "int main() { u8* a = malloc(64); u8* b = malloc(65); return 0; }"
    results = {}
    for compiled in (False, True):
        result, _ = _run(source, max_heap_bytes=128, compiled=compiled)
        results[compiled] = result
    assert results[False].status is results[True].status is RunStatus.ERROR
    assert results[False].error.kind is results[True].error.kind
    assert results[False].error.message == results[True].error.message
    assert results[False].error.line == results[True].error.line
