"""Differential proof that the compiled tier matches the interpreter.

The compiled bytecode tier (``repro.lang.compile``) is only allowed to be
the default execution path because this harness shows it is observationally
identical to the tree-walking interpreter: same outputs, same heap state,
same symbolic trace records, same error verdicts, same step counts — on a
property-based corpus of generated MicroC programs spanning all six
:class:`ErrorKind` defect templates, plus every hand-written application in
the Figure 8 corpus.

Programs are generated with :func:`repro.scenarios.generate.synthesize_pair`,
which is RNG-driven (field choice, reader style, defect plan, thresholds),
so every (kind, format, index) triple is a distinct random program.  Each
generated program runs on both its benign seed input and its error input,
on both tiers, with symbolic tracking on; the two runs must agree bit for
bit.  The corpus size is itself asserted (≥ 200 generated programs across
the ErrorKind mix) so CI enforces the coverage floor, not just the parity.
"""

from __future__ import annotations

import functools

import pytest

from repro.apps.registry import scoped_registration
from repro.experiments import ERROR_CASES
from repro.formats.registry import get_format
from repro.lang.memory import Buffer, TaintedValue
from repro.lang.trace import ErrorKind, RunResult
from repro.lang.vm import VM, VMConfig
from repro.scenarios.generate import ScenarioError, ScenarioPair, synthesize_pair

FORMATS = ("dcp", "gif", "jp2", "jpeg", "png", "swf", "tiff")
#: Random programs per (kind, format) cell; the RNG seed below makes the
#: corpus deterministic, so a parity failure is reproducible by triple.
INDICES_PER_FORMAT = 6
CORPUS_SEED = 7
#: Acceptance floor: the whole ErrorKind mix must exercise at least this
#: many distinct generated programs (each pair contributes two).
MINIMUM_GENERATED_PROGRAMS = 200

#: Full-scan threshold for heap canonicalisation; above it only explicitly
#: touched cells are compared (huge ``malloc64`` buffers stay sparse).
_SCAN_LIMIT = 8192


# --- canonicalisation --------------------------------------------------------


def _canonical_value(value: TaintedValue) -> tuple:
    return (value.value, value.width, value.signed, value.true_value,
            repr(value.symbolic))


_DEFAULT_CELL = _canonical_value(TaintedValue(0, 8))


def _canonical_buffer(buffer: Buffer) -> dict:
    """Project a heap buffer to tier-independent plain data.

    ``object_id`` is excluded (a process-global counter), and cells are read
    through ``load`` so the arena-backed and dict-backed representations are
    compared by observable value, not storage layout.
    """
    if buffer.size <= _SCAN_LIMIT:
        indices = range(buffer.size)
    else:
        touched = set(buffer.contents)
        data = getattr(buffer, "data", None)
        if data is not None:
            touched.update(i for i, byte in enumerate(data) if byte)
        indices = sorted(touched)
    cells = {}
    for index in indices:
        cell = _canonical_value(buffer.load(index))
        if cell != _DEFAULT_CELL:
            cells[index] = cell
    return {
        "size": buffer.size,
        "site_id": buffer.site_id,
        "function": buffer.function,
        "overflowed_size": buffer.overflowed_size,
        "cells": cells,
    }


def _canonical_result(result: RunResult, vm: VM) -> dict:
    error = None
    if result.error is not None:
        error = (
            result.error.kind.value,
            result.error.message,
            result.error.function,
            result.error.statement_id,
            result.error.line,
        )
    return {
        "status": result.status.value,
        "exit_code": result.exit_code,
        "error": error,
        "output": list(result.output),
        "steps": result.steps,
        "fields_read": sorted(result.fields_read),
        "branches": [
            (r.branch_id, r.function, r.line, r.taken, r.condition_value,
             repr(r.symbolic), r.sequence)
            for r in result.branches
        ],
        "allocations": [
            (r.site_id, r.statement_id, r.function, r.line, r.size,
             r.true_size, repr(r.symbolic), r.overflowed, r.sequence)
            for r in result.allocations
        ],
        "divisions": [
            (r.site_id, r.function, r.line, r.divisor, repr(r.symbolic),
             r.sequence)
            for r in result.divisions
        ],
        "heap": [_canonical_buffer(buffer) for buffer in vm.heap],
    }


def _run_tier(program, data: bytes, field_map, *, compiled: bool,
              track_symbolic: bool = True) -> dict:
    config = VMConfig(track_symbolic=track_symbolic, use_compiled=compiled)
    vm = VM(program, config=config)
    result = vm.run(data, field_map=field_map)
    return _canonical_result(result, vm)


def _assert_tier_parity(program, data: bytes, field_map, context: str,
                        track_symbolic: bool = True) -> None:
    interpreted = _run_tier(program, data, field_map, compiled=False,
                            track_symbolic=track_symbolic)
    compiled = _run_tier(program, data, field_map, compiled=True,
                         track_symbolic=track_symbolic)
    for key in interpreted:
        assert compiled[key] == interpreted[key], (
            f"tier divergence in {key!r} for {context}:\n"
            f"  interpreter: {interpreted[key]!r}\n"
            f"  compiled:    {compiled[key]!r}"
        )


# --- generated corpus --------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _pairs_for(kind: ErrorKind) -> tuple[ScenarioPair, ...]:
    pairs = []
    for format_name in FORMATS:
        for index in range(INDICES_PER_FORMAT):
            try:
                pairs.append(
                    synthesize_pair(kind, format_name, index=index,
                                    seed=CORPUS_SEED)
                )
            except ScenarioError:
                break  # format has no suitable fields for this template
    return tuple(pairs)


@pytest.mark.parametrize("kind", list(ErrorKind), ids=lambda k: k.value)
def test_generated_corpus_has_no_tier_divergence(kind: ErrorKind) -> None:
    """Every generated program agrees across tiers on every input."""
    pairs = _pairs_for(kind)
    assert pairs, f"no generated programs for {kind.value}"
    for pair in pairs:
        spec = get_format(pair.format_name)
        seed_input = pair.seed_input()
        field_map = spec.field_map(seed_input)
        inputs = {"seed": seed_input, "error": pair.error_input()}
        with scoped_registration(pair.recipient, pair.donor):
            for role, application in (("recipient", pair.recipient),
                                      ("donor", pair.donor)):
                program = application.program()
                for input_name, data in inputs.items():
                    _assert_tier_parity(
                        program, data, field_map,
                        f"{pair.case_id} {role} on {input_name} input",
                    )


def test_error_kind_mix_meets_program_floor() -> None:
    """The differential mix covers ≥ 200 generated programs, all six kinds."""
    programs = 0
    for kind in ErrorKind:
        pairs = _pairs_for(kind)
        assert pairs, f"ErrorKind mix is missing {kind.value}"
        programs += 2 * len(pairs)  # each pair is a recipient and a donor
    assert programs >= MINIMUM_GENERATED_PROGRAMS, (
        f"differential corpus ran {programs} generated programs, "
        f"need >= {MINIMUM_GENERATED_PROGRAMS}"
    )


# --- hand-written corpus -----------------------------------------------------


@pytest.mark.parametrize("case_id", sorted(ERROR_CASES))
def test_handwritten_corpus_has_no_tier_divergence(case_id: str) -> None:
    """The Figure 8 applications agree across tiers on seed and error inputs."""
    case = ERROR_CASES[case_id]
    program = case.application().program()
    spec = get_format(case.format_name)
    seed_input = case.seed_input()
    field_map = spec.field_map(seed_input)
    for input_name, data in (("seed", seed_input), ("error", case.error_input())):
        for track_symbolic in (True, False):
            _assert_tier_parity(
                program, data, field_map,
                f"{case_id} on {input_name} input "
                f"(track_symbolic={track_symbolic})",
                track_symbolic=track_symbolic,
            )
