"""Tests for the MicroC lexer, parser, printer, and checker."""

import pytest

from repro.lang import (
    CheckError,
    LexError,
    ParseError,
    compile_program,
    parse_expression,
    parse_program,
    render_program,
    tokenize,
)
from repro.lang import ast


VALID = """
struct point {
    u32 x;
    u32 y;
};

u32 limit = 100;

u32 scale(u32 value, u32 factor) {
    return value * factor;
}

int main() {
    struct point p;
    p.x = read_u16_be();
    p.y = (u32) read_byte();
    u32 area = scale(p.x, p.y);
    if (area > limit) {
        exit(-1);
    }
    while (area > 0) {
        area = area - 1;
    }
    emit(p.x);
    return 0;
}
"""


class TestLexer:
    def test_tokenises_operators_greedily(self):
        kinds = [t.text for t in tokenize("a <<= >> -> <= == && ||")[:-1]]
        assert "<<" in kinds and "->" in kinds and "&&" in kinds

    def test_hex_and_suffixed_literals(self):
        tokens = tokenize("0xFF 1234ULL")
        assert tokens[0].value == 255
        assert tokens[1].value == 1234

    def test_comments_skipped(self):
        tokens = tokenize("1 // line\n/* block\nblock */ 2")
        assert [t.value for t in tokens[:-1]] == [1, 2]

    def test_bad_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestParser:
    def test_full_program_parses(self):
        unit = parse_program(VALID)
        assert [f.name for f in unit.functions] == ["scale", "main"]
        assert unit.structs[0].name == "point"
        assert unit.globals[0].name == "limit"

    def test_node_ids_are_unique_and_stable(self):
        unit1, unit2 = parse_program(VALID), parse_program(VALID)
        ids1 = [s.node_id for s in unit1.all_statements()]
        ids2 = [s.node_id for s in unit2.all_statements()]
        assert ids1 == ids2
        assert len(ids1) == len(set(ids1))

    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3 == 7")
        assert isinstance(expr, ast.Binary) and expr.op == "=="
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "+"

    def test_cast_vs_parenthesised_expression(self):
        cast = parse_expression("(u64) x * 2")
        assert isinstance(cast, ast.Binary) and isinstance(cast.left, ast.Cast)
        grouped = parse_expression("(x) * 2")
        assert isinstance(grouped, ast.Binary) and isinstance(grouped.left, ast.Name)

    def test_arrow_and_dot_access(self):
        expr = parse_expression("p->info.width")
        assert isinstance(expr, ast.FieldAccess) and not expr.arrow
        assert isinstance(expr.base, ast.FieldAccess) and expr.base.arrow

    def test_else_if_chain(self):
        unit = parse_program("int main() { if (1) { return 1; } else if (2) { return 2; } return 0; }")
        statement = unit.function("main").body.statements[0]
        assert isinstance(statement, ast.If)
        assert isinstance(statement.else_block.statements[0], ast.If)

    def test_syntax_errors_reported_with_line(self):
        with pytest.raises(ParseError) as info:
            parse_program("int main() {\n  u32 x = ;\n}")
        assert info.value.line == 2

    def test_trailing_garbage_in_expression(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")


class TestPrinterRoundTrip:
    def test_render_then_reparse_preserves_structure(self):
        unit = parse_program(VALID)
        rendered = render_program(unit)
        reparsed = parse_program(rendered)
        assert [f.name for f in reparsed.functions] == [f.name for f in unit.functions]
        assert len(list(reparsed.all_statements())) == len(list(unit.all_statements()))

    def test_rendered_program_recompiles(self):
        rendered = render_program(parse_program(VALID))
        assert compile_program(rendered).function("main") is not None


class TestChecker:
    def test_valid_program_compiles(self):
        program = compile_program(VALID)
        assert program.signature("scale").return_type.width == 32
        assert program.debug_info.has(
            program.function("main").body.statements[0].node_id
        )

    def test_debug_info_tracks_scope_growth(self):
        program = compile_program(VALID)
        statements = program.function("main").body.statements
        first_scope = {v.name for v in program.debug_info.scope_at(statements[0].node_id)}
        last_scope = {v.name for v in program.debug_info.scope_at(statements[-1].node_id)}
        assert "p" in first_scope
        assert {"p", "area", "limit"} <= last_scope

    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("int main() { return x; }", "unknown variable"),
            ("int main() { u32 x = 1; u32 x = 2; return 0; }", "redefined"),
            ("int main() { foo(); return 0; }", "unknown function"),
            ("int main() { exit(1, 2); return 0; }", "argument"),
            ("int main() { struct nope n; return 0; }", "unknown struct"),
            ("int f() { return 1; } int f() { return 2; } int main() { return 0; }", "redefined"),
            ("int main() { 5 = 3; return 0; }", "lvalue"),
            ("int main() { u32 p; p->x = 1; return 0; }", "pointer"),
        ],
    )
    def test_semantic_errors_rejected(self, source, fragment):
        with pytest.raises(CheckError) as info:
            compile_program(source)
        assert fragment.split()[0] in str(info.value)

    def test_missing_main_rejected(self):
        with pytest.raises(CheckError):
            compile_program("int helper() { return 0; }")
