"""Tests for source-level patch insertion and recompilation."""

import pytest

from repro.lang import (
    PatchAction,
    PatchError,
    RunStatus,
    SourcePatch,
    apply_patch,
    compile_program,
    parse_program,
    render_patch_preview,
    run_program,
)

SOURCE = """
struct image { u32 width; u32 height; };

int load() {
    struct image img;
    img.width = read_u16_be();
    img.height = read_u16_be();
    u8* data = malloc(img.width * img.height * 4);
    if (data == 0) {
        return 1;
    }
    emit(img.width);
    return 0;
}

int main() {
    return load();
}
"""


def _statement_after_height():
    unit = parse_program(SOURCE)
    return unit.function("load").body.statements[2].node_id  # img.height = ...


class TestApplyPatch:
    def test_patch_inserted_after_anchor(self):
        patch = SourcePatch(_statement_after_height(), "img.width > 1000")
        patched = apply_patch(SOURCE, patch)
        assert "if ((img.width > 1000))" in patched.source or "if (img.width > 1000)" in patched.source
        assert patched.function == "load"
        anchor_index = patched.source.index("img.height")
        patch_index = patched.source.index("exit(")
        assert patch_index > anchor_index

    def test_patched_program_behaviour(self):
        patch = SourcePatch(_statement_after_height(), "img.width > 1000")
        patched = apply_patch(SOURCE, patch)
        big = (2000).to_bytes(2, "big") + (10).to_bytes(2, "big")
        small = (10).to_bytes(2, "big") + (10).to_bytes(2, "big")
        assert run_program(patched.program, big).status is RunStatus.EXIT
        assert run_program(patched.program, small).accepted

    def test_return_zero_action(self):
        patch = SourcePatch(
            _statement_after_height(), "img.width > 1000", action=PatchAction.RETURN_ZERO
        )
        patched = apply_patch(SOURCE, patch)
        big = (2000).to_bytes(2, "big") + (10).to_bytes(2, "big")
        result = run_program(patched.program, big)
        assert result.status is RunStatus.OK

    def test_original_program_unchanged(self):
        original = compile_program(SOURCE)
        before = len(list(original.unit.all_statements()))
        apply_patch(SOURCE, SourcePatch(_statement_after_height(), "img.width > 1000"))
        assert len(list(compile_program(SOURCE).unit.all_statements())) == before

    def test_unknown_insertion_point_rejected(self):
        with pytest.raises(PatchError):
            apply_patch(SOURCE, SourcePatch(999999, "img.width > 1000"))

    def test_invalid_condition_fails_recompilation(self):
        with pytest.raises(Exception):
            apply_patch(SOURCE, SourcePatch(_statement_after_height(), "nonexistent_variable > 3"))

    def test_patch_render_and_preview(self):
        patch = SourcePatch(_statement_after_height(), "img.width > 1000")
        assert patch.render() == "if (img.width > 1000) { exit(-1); }"
        preview = render_patch_preview(SOURCE, patch)
        assert "in load" in preview and "exit(-1)" in preview

    def test_patches_stack(self):
        patch1 = SourcePatch(_statement_after_height(), "img.width > 1000")
        first = apply_patch(SOURCE, patch1)
        # Insert a second patch into the already-patched source.
        unit = parse_program(first.source)
        anchor = unit.function("load").body.statements[2].node_id
        second = apply_patch(first.source, SourcePatch(anchor, "img.height > 500"))
        big_height = (10).to_bytes(2, "big") + (600).to_bytes(2, "big")
        assert run_program(second.program, big_height).status is RunStatus.EXIT
