"""Event-stream unit tests: ordering, timing, contracts, bus mechanics."""

import pytest

from repro import api
from repro.core import CodePhageOptions, TransferMetrics
from repro.core.events import (
    DonorAttempted,
    EventBus,
    EventLog,
    PatchValidated,
    StageFinished,
    StageStarted,
    StageTimingObserver,
)
from repro.core.stages import ContractError, Stage, TransferContext, TransferEngine
from repro.experiments import ERROR_CASES

#: The per-candidate sub-graph, in Figure 4 order.
CANDIDATE_ORDER = ["excision", "insertion", "rewrite", "patch-generation", "validation"]


@pytest.fixture(scope="module")
def transfer_report():
    case = ERROR_CASES["cwebp-jpegdec"]
    return api.repair(
        api.RepairRequest(
            recipient=case.application(),
            target=case.target(),
            seed=case.seed_input(),
            error_input=case.error_input(),
            format_name="jpeg",
            donor="feh",
        )
    )


class TestEventOrdering:
    def test_every_finish_pairs_with_its_start(self, transfer_report):
        open_stages = []
        for event in transfer_report.events:
            if isinstance(event, StageStarted):
                open_stages.append((event.stage, event.round_index))
            elif isinstance(event, StageFinished):
                assert open_stages, f"finish without start: {event.stage}"
                assert open_stages.pop() == (event.stage, event.round_index)
        assert not open_stages, f"stages started but never finished: {open_stages}"

    def test_stages_run_in_figure4_order(self, transfer_report):
        finished = [
            event.stage
            for event in transfer_report.events
            if isinstance(event, StageFinished) and event.round_index == 0
        ]
        assert finished[0] == "check-discovery"
        candidate_stages = finished[1:]
        assert candidate_stages, "no candidate was ever attempted"
        assert len(candidate_stages) % len(CANDIDATE_ORDER) == 0
        for start in range(0, len(candidate_stages), len(CANDIDATE_ORDER)):
            assert candidate_stages[start : start + len(CANDIDATE_ORDER)] == CANDIDATE_ORDER

    def test_validated_patch_is_announced(self, transfer_report):
        validated = [
            event for event in transfer_report.events if isinstance(event, PatchValidated)
        ]
        assert len(validated) == len(transfer_report.outcome.checks) == 1
        event = validated[0]
        patch = transfer_report.outcome.checks[0].patch
        assert (event.excised_size, event.translated_size) == (
            patch.excised_size,
            patch.translated_size,
        )

    def test_repair_emits_donor_selection_and_attempts(self):
        case = ERROR_CASES["wireshark-dcp"]
        report = api.repair(
            api.RepairRequest(
                recipient=case.application(),
                target=case.target(),
                seed=case.seed_input(),
                error_input=case.error_input(),
                format_name="dcp",
            )
        )
        assert report.success
        finished = [e.stage for e in report.events if isinstance(e, StageFinished)]
        assert finished[0] == "donor-selection"
        attempts = [e for e in report.events if isinstance(e, DonorAttempted)]
        assert len(attempts) == len(report.attempts) == 1
        assert attempts[0].donor == "wireshark-1.8.6"


class TestStageTimings:
    def test_metrics_breakdown_comes_from_the_event_stream(self, transfer_report):
        timer = StageTimingObserver()
        for event in transfer_report.events:
            timer(event)
        assert transfer_report.metrics.stage_timings == timer.totals
        assert set(timer.totals) == {"check-discovery", *CANDIDATE_ORDER}
        assert all(elapsed >= 0.0 for elapsed in timer.totals.values())

    def test_breakdown_is_bounded_by_total_generation_time(self, transfer_report):
        assert (
            sum(transfer_report.metrics.stage_timings.values())
            <= transfer_report.metrics.generation_time_s
        )


class _NeedsMissingInput(Stage):
    name = "needs-missing-input"
    requires = ("never-provided",)

    def run(self, ctx):  # pragma: no cover - must not be reached
        raise AssertionError("ran without its declared input")


class _BreaksItsPromise(Stage):
    name = "breaks-its-promise"
    provides = ("promised",)

    def run(self, ctx):
        pass


class TestContracts:
    @pytest.fixture()
    def engine_and_ctx(self):
        engine = TransferEngine(options=CodePhageOptions())
        ctx = TransferContext(
            recipient=None,
            target=None,
            seed=b"",
            error_input=b"",
            format_spec=None,
            options=engine.options,
            checker=engine.checker,
            events=engine.events,
            metrics=TransferMetrics(),
        )
        return engine, ctx

    def test_missing_input_is_a_contract_error(self, engine_and_ctx):
        engine, ctx = engine_and_ctx
        with pytest.raises(ContractError, match="requires 'never-provided'"):
            engine.run_stage(_NeedsMissingInput(), ctx)

    def test_missing_output_is_a_contract_error(self, engine_and_ctx):
        engine, ctx = engine_and_ctx
        with pytest.raises(ContractError, match="did not provide 'promised'"):
            engine.run_stage(_BreaksItsPromise(), ctx)

    def test_context_require_names_the_missing_key(self, engine_and_ctx):
        _, ctx = engine_and_ctx
        with pytest.raises(ContractError, match="'nope'"):
            ctx.require("nope")


class TestEventBus:
    def test_subscribe_emit_unsubscribe(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        event = StageStarted(stage="x")
        bus.emit(event)
        bus.unsubscribe(log)
        bus.emit(StageFinished(stage="x", elapsed_s=0.0))
        assert log.events == [event]
        bus.unsubscribe(log)  # double-unsubscribe is a no-op

    def test_session_observers_see_every_request(self):
        case = ERROR_CASES["wireshark-dcp"]
        log = EventLog()
        session = api.RepairSession(observers=[log])
        request = api.RepairRequest(
            recipient=case.application(),
            target=case.target(),
            seed=case.seed_input(),
            error_input=case.error_input(),
            format_name="dcp",
            donor="wireshark-1.8.6",
        )
        session.run(request)
        first = len(log.events)
        session.run(request)
        assert first > 0
        assert len(log.events) > first
