"""Search-policy selection and behaviour, plus campaign plan integration."""

import pytest

from repro import api
from repro.campaign.plan import PlanError, expand_plan
from repro.core import CodePhageOptions
from repro.core.events import DonorAttempted
from repro.core.stages import (
    POLICIES,
    AllDonorsPolicy,
    FirstValidatedPolicy,
    SmallestPatchPolicy,
    get_policy,
)
from repro.experiments import ERROR_CASES


def _request(case_id, donor=None, policy=None):
    case = ERROR_CASES[case_id]
    return api.RepairRequest(
        recipient=case.application(),
        target=case.target(),
        seed=case.seed_input(),
        error_input=case.error_input(),
        format_name=case.format_name,
        donor=donor,
        policy=policy,
    )


class TestPolicyRegistry:
    def test_builtin_policies_are_registered(self):
        assert set(POLICIES) == {"first-validated", "smallest-patch", "all-donors"}

    def test_get_policy_by_name(self):
        assert isinstance(get_policy("first-validated"), FirstValidatedPolicy)
        assert isinstance(get_policy("smallest-patch"), SmallestPatchPolicy)
        assert isinstance(get_policy("all-donors"), AllDonorsPolicy)

    def test_none_resolves_to_the_default(self):
        assert isinstance(get_policy(None), FirstValidatedPolicy)

    def test_instances_pass_through(self):
        policy = SmallestPatchPolicy()
        assert get_policy(policy) is policy

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ValueError, match="unknown search policy"):
            get_policy("bogus")


class TestSmallestPatch:
    def test_never_larger_than_first_validated(self):
        first = api.repair(_request("cwebp-jpegdec", donor="feh"))
        smallest = api.repair(
            _request("cwebp-jpegdec", donor="feh", policy="smallest-patch")
        )
        assert first.success and smallest.success
        assert (
            smallest.outcome.checks[-1].patch.translated_size
            <= first.outcome.checks[-1].patch.translated_size
        )

    def test_options_select_the_session_policy(self):
        options = CodePhageOptions(search_policy="smallest-patch")
        report = api.repair(_request("wireshark-dcp", donor="wireshark-1.8.6"), options=options)
        assert report.success


class TestAllDonors:
    def test_every_donor_is_attempted(self):
        report = api.repair(_request("cwebp-jpegdec", policy="all-donors"))
        attempted = [e for e in report.events if isinstance(e, DonorAttempted)]
        assert len(report.attempts) == len(attempted) == 3
        assert {outcome.donor for outcome in report.attempts} == {
            "feh-2.9.3",
            "mtpaint-3.40",
            "viewnior-1.4",
        }

    def test_chooses_the_smallest_total_patch_among_successes(self):
        report = api.repair(_request("cwebp-jpegdec", policy="all-donors"))
        assert report.success
        totals = {
            outcome.donor: sum(check.patch.translated_size for check in outcome.checks)
            for outcome in report.attempts
            if outcome.success
        }
        assert totals[report.outcome.donor] == min(totals.values())

    def test_first_validated_repair_stops_at_the_first_success(self):
        report = api.repair(_request("cwebp-jpegdec"))
        assert report.success
        assert len(report.attempts) < 3  # stopped short of the full pool
        assert report.attempts[-1].success


class TestCampaignPlanIntegration:
    def test_search_policy_is_a_valid_variant_override(self):
        plan = expand_plan(
            cases=["cwebp-jpegdec"],
            variants={"default": {}, "smallest": {"search_policy": "smallest-patch"}},
        )
        smallest_jobs = [job for job in plan.jobs if job.variant == "smallest"]
        assert smallest_jobs
        options = smallest_jobs[0].build_options()
        assert options.search_policy == "smallest-patch"

    def test_unknown_search_policy_fails_plan_expansion(self):
        with pytest.raises(PlanError, match="unknown search policy"):
            expand_plan(
                cases=["cwebp-jpegdec"], variants={"bad": {"search_policy": "bogus"}}
            )
