"""Parity suite: the legacy ``CodePhage`` shims and the ``repro.api`` facade.

The acceptance bar for the stage-graph refactor is that the compatibility
shims (``CodePhage.transfer``/``repair``) and the facade produce *identical*
outcomes — success, transferred checks, insertion accounting, and metrics —
modulo wall-clock timing, across representative Figure 8 rows covering every
error class (integer overflow, out-of-bounds write, divide-by-zero).
"""

import pytest

from repro import api
from repro.apps import get_application
from repro.core import CodePhage
from repro.experiments import ERROR_CASES

#: One row per error class, plus the multiversion scenario.
PARITY_ROWS = [
    ("cwebp-jpegdec", "feh"),
    ("jasper-tiles", "openjpeg"),
    ("gif2tiff-lzw", "display-6.5.2-9"),
    ("wireshark-dcp", "wireshark-1.8.6"),
]


def _fingerprint(outcome):
    """Everything that must match, with wall-clock timing stripped."""
    metrics = outcome.metrics
    return {
        "success": outcome.success,
        "recipient": outcome.recipient,
        "target": outcome.target,
        "donor": outcome.donor,
        "failure_reason": outcome.failure_reason,
        "patched_source": outcome.patched_source,
        "checks": [
            (
                check.donor,
                check.patch.render(),
                check.check_size,
                str(check.accounting),
                check.validation.ok,
                len(check.validation.residual_findings),
            )
            for check in outcome.checks
        ],
        "metrics": {
            "recipient": metrics.recipient,
            "target": metrics.target,
            "donor": metrics.donor,
            "relevant_branches": metrics.relevant_branches,
            "flipped_branches": metrics.flipped_branches,
            "used_checks": metrics.used_checks,
            "insertion_accounting": [str(entry) for entry in metrics.insertion_accounting],
            "check_sizes": metrics.check_sizes,
            "solver_queries": metrics.solver_queries,
            "solver_cache_hits": metrics.solver_cache_hits,
            "solver_persistent_hits": metrics.solver_persistent_hits,
            "solver_expensive_queries": metrics.solver_expensive_queries,
        },
    }


@pytest.mark.parametrize("case_id,donor", PARITY_ROWS, ids=lambda value: str(value))
def test_legacy_transfer_shim_matches_facade(case_id, donor):
    case = ERROR_CASES[case_id]
    legacy = CodePhage().transfer(
        case.application(),
        case.target(),
        get_application(donor),
        case.seed_input(),
        case.error_input(),
        case.format_name,
    )
    report = api.repair(
        api.RepairRequest(
            recipient=case.application(),
            target=case.target(),
            seed=case.seed_input(),
            error_input=case.error_input(),
            format_name=case.format_name,
            donor=donor,
        )
    )
    assert _fingerprint(legacy) == _fingerprint(report.outcome)
    assert legacy.success, legacy.failure_reason


def test_legacy_repair_shim_matches_facade():
    case = ERROR_CASES["cwebp-jpegdec"]
    legacy = CodePhage().repair(
        case.application(), case.target(), case.seed_input(), case.error_input(), "jpeg"
    )
    report = api.repair(
        api.RepairRequest(
            recipient=case.application(),
            target=case.target(),
            seed=case.seed_input(),
            error_input=case.error_input(),
            format_name="jpeg",
        )
    )
    assert _fingerprint(legacy) == _fingerprint(report.outcome)
    assert legacy.success


def test_both_paths_report_stage_timings():
    case = ERROR_CASES["wireshark-dcp"]
    legacy = CodePhage().transfer(
        case.application(),
        case.target(),
        get_application("wireshark-1.8.6"),
        case.seed_input(),
        case.error_input(),
        "dcp",
    )
    assert legacy.metrics.stage_timings
    assert all(elapsed >= 0.0 for elapsed in legacy.metrics.stage_timings.values())
    assert {"check-discovery", "validation"} <= set(legacy.metrics.stage_timings)


def test_no_viable_donor_outcome_has_populated_metrics():
    """An empty donor pool must still yield a fully attributed outcome row."""
    case = ERROR_CASES["cwebp-jpegdec"]
    outcome = CodePhage().repair(
        case.application(),
        case.target(),
        case.seed_input(),
        case.error_input(),
        "jpeg",
        donors=[],
    )
    assert not outcome.success
    assert outcome.failure_reason == "no viable donor found"
    assert outcome.metrics.recipient == case.application().full_name
    assert outcome.metrics.target == case.target().target_id
    assert outcome.metrics.donor == "<none>"

    from repro.core.reporting import TransferRecord

    record = TransferRecord.from_outcome(outcome)
    assert record.recipient and record.target and record.donor


def test_pinning_a_donor_and_restricting_the_pool_is_an_error():
    case = ERROR_CASES["cwebp-jpegdec"]
    request = api.RepairRequest(
        recipient=case.application(),
        target=case.target(),
        seed=case.seed_input(),
        error_input=case.error_input(),
        format_name="jpeg",
        donor="feh",
        donors=["mtpaint", "viewnior"],
    )
    with pytest.raises(ValueError, match="not both"):
        api.repair(request)


def test_all_donors_helper_shares_one_checker():
    """The all-donors sweep reuses a single session (comparable cache stats)."""
    from repro.api import RepairSession
    from repro.experiments import run_case_with_all_donors

    session = RepairSession()
    outcomes = run_case_with_all_donors("cwebp-jpegdec", session=session)
    assert [outcome.donor for outcome in outcomes] == [
        "feh-2.9.3",
        "mtpaint-3.40",
        "viewnior-1.4",
    ]
    assert all(outcome.success for outcome in outcomes)
    # All three transfers drained through the shared checker: its lifetime
    # query count is the sum of the per-transfer deltas.
    assert session.checker.statistics.queries == sum(
        outcome.metrics.solver_queries for outcome in outcomes
    )
    # Later donors replay earlier donors' verdicts from the shared in-memory
    # cache, which a per-donor fresh checker could never show.
    assert session.checker.statistics.cache_hits >= outcomes[0].metrics.solver_cache_hits
