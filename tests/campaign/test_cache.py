"""Persistent solver cache: sharing, refresh, and hit accounting."""

from __future__ import annotations

from repro.campaign import PersistentSolverCache, query_key
from repro.solver.equivalence import EquivalenceChecker, EquivalenceOptions, Verdict
from repro.symbolic import builder


def _field(path: str, width: int = 16):
    return builder.input_field(path, width)


def test_put_get_and_reload_across_instances(tmp_path):
    path = tmp_path / "cache.jsonl"
    first = PersistentSolverCache(path)
    first.put("k1", {"verdict": "equivalent"})
    first.put("k2", {"verdict": "not-equivalent", "witness": {"/a": 1}})
    assert len(first) == 2
    assert first.get("k1") == {"verdict": "equivalent"}

    # A second instance (another process, in campaign terms) sees the entries.
    second = PersistentSolverCache(path)
    assert len(second) == 2
    assert second.get("k2")["witness"] == {"/a": 1}


def test_get_picks_up_entries_appended_by_a_sibling(tmp_path):
    path = tmp_path / "cache.jsonl"
    reader = PersistentSolverCache(path)
    writer = PersistentSolverCache(path)
    assert reader.get("shared") is None
    writer.put("shared", {"verdict": "equivalent"})
    # The reader misses in memory, notices the file grew, and refreshes.
    assert reader.get("shared") == {"verdict": "equivalent"}


def test_torn_trailing_line_is_ignored(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = PersistentSolverCache(path)
    cache.put("good", {"verdict": "equivalent"})
    with open(path, "a") as handle:
        handle.write('{"k":"torn","v":{"verd')  # no newline: write in progress
    fresh = PersistentSolverCache(path)
    assert fresh.get("good") == {"verdict": "equivalent"}
    assert "torn" not in fresh


def test_put_after_a_torn_line_does_not_lose_the_new_entry(tmp_path):
    """A crashed writer's partial line must not swallow the next append."""
    path = tmp_path / "cache.jsonl"
    first = PersistentSolverCache(path)
    first.put("before", {"verdict": "equivalent"})
    with open(path, "a") as handle:
        handle.write('{"k":"torn","v":{"verd')  # crashed writer, no newline
    writer = PersistentSolverCache(path)
    writer.put("after", {"verdict": "not-equivalent"})
    # A reader starting from scratch sees both healthy entries.
    reader = PersistentSolverCache(path)
    assert reader.get("before") == {"verdict": "equivalent"}
    assert reader.get("after") == {"verdict": "not-equivalent"}
    assert "torn" not in reader


def test_query_key_is_symmetric():
    a = builder.add(_field("/a"), builder.const(1, 16))
    b = builder.mul(_field("/b"), builder.const(2, 16))
    assert query_key(a, b) == query_key(b, a)
    assert query_key(a, b) != query_key(a, a)


def test_query_key_distinguishes_constant_widths():
    """Regression: the paper rendering omits Constant widths, so these two
    semantically different concatenations used to collide on one key."""
    from repro.symbolic.expr import Concat, Constant, InputField

    field = InputField(8, path="/x")
    first = Concat(32, parts=(Constant(8, 1), field, Constant(16, 2)))
    second = Concat(32, parts=(Constant(16, 1), field, Constant(8, 2)))
    reference = builder.const(0, 32)
    assert query_key(first, reference) != query_key(second, reference)


def test_checker_persists_verdicts_across_checker_lifetimes(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    options = EquivalenceOptions(persistent_cache_path=path)
    # x * 2 == x << 1 needs the exhaustive procedure (16 free bits).
    left = builder.mul(_field("/x"), builder.const(2, 16))
    right = builder.shl(_field("/x"), builder.const(1, 16))

    first = EquivalenceChecker(options=options)
    result = first.equivalent(left, right)
    assert result.verdict is Verdict.EQUIVALENT
    assert first.statistics.exhaustive_queries == 1
    assert first.statistics.persistent_cache_hits == 0

    # A brand-new checker (fresh in-memory cache) answers from disk.
    second = EquivalenceChecker(options=options)
    replay = second.equivalent(left, right)
    assert replay.verdict is Verdict.EQUIVALENT
    assert second.statistics.persistent_cache_hits == 1
    assert second.statistics.exhaustive_queries == 0
    assert second.statistics.solver_invocations == 0
    # Hit accounting: a persistent hit is not an evaluated query.
    assert second.statistics.evaluated_queries == 0


def test_witness_round_trips_through_the_persistent_cache(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    options = EquivalenceOptions(persistent_cache_path=path)
    left = builder.add(_field("/y"), builder.const(1, 16))
    right = builder.add(_field("/y"), builder.const(2, 16))

    first = EquivalenceChecker(options=options).equivalent(left, right)
    assert first.verdict is Verdict.NOT_EQUIVALENT
    assert first.witness is not None

    replay = EquivalenceChecker(options=options).equivalent(left, right)
    assert replay.verdict is Verdict.NOT_EQUIVALENT
    assert replay.witness == first.witness
    assert replay.method == first.method


def test_empty_witness_survives_the_round_trip(tmp_path):
    """Two unequal constants disagree on the empty assignment: witness {}."""
    path = str(tmp_path / "cache.jsonl")
    options = EquivalenceOptions(persistent_cache_path=path)
    left = builder.const(1, 8)
    right = builder.const(2, 8)

    first = EquivalenceChecker(options=options).equivalent(left, right)
    assert first.verdict is Verdict.NOT_EQUIVALENT
    assert first.witness == {}

    replay = EquivalenceChecker(options=options).equivalent(left, right)
    assert replay.verdict is Verdict.NOT_EQUIVALENT
    assert replay.witness == {}


def test_disabled_by_default():
    checker = EquivalenceChecker()
    assert checker.persistent_cache is None


def test_swapped_operands_sample_identically_and_share_the_cached_verdict(tmp_path):
    """(A, B) and (B, A) are one query to both caches, so they must also be
    one query to the sampling RNG — otherwise cache warmth could flip the
    verdict one orientation computes."""
    path = str(tmp_path / "cache.jsonl")
    options = EquivalenceOptions(persistent_cache_path=path)
    left = builder.mul(_field("/w"), builder.const(2, 16))
    right = builder.shl(_field("/w"), builder.const(1, 16))

    forward = EquivalenceChecker(options=options).equivalent(left, right)
    swapped_checker = EquivalenceChecker(options=options)
    swapped = swapped_checker.equivalent(right, left)
    assert swapped.verdict is forward.verdict
    assert swapped_checker.statistics.persistent_cache_hits == 1


def test_trivially_recomputable_verdicts_are_not_persisted(tmp_path):
    path = tmp_path / "cache.jsonl"
    options = EquivalenceOptions(persistent_cache_path=str(path))
    checker = EquivalenceChecker(options=options)
    # Syntactic hit: identical expressions.
    expr = builder.add(_field("/s"), builder.const(1, 16))
    assert checker.equivalent(expr, expr).method == "syntactic"
    # Disjoint fields: filter answers without the solver.
    assert (
        checker.equivalent(_field("/left"), _field("/right")).method
        == "disjoint-fields"
    )
    assert not path.exists() or path.read_text() == ""


def test_option_variants_do_not_share_persistent_entries(tmp_path):
    """Verdicts are only valid under the options that produced them."""
    path = str(tmp_path / "cache.jsonl")
    left = builder.mul(_field("/z"), builder.const(2, 16))
    right = builder.shl(_field("/z"), builder.const(1, 16))

    strong = EquivalenceChecker(options=EquivalenceOptions(persistent_cache_path=path))
    strong.equivalent(left, right)

    weak = EquivalenceChecker(
        options=EquivalenceOptions(persistent_cache_path=path, sample_count=1)
    )
    weak.equivalent(left, right)
    # Different option fingerprints: the weak checker must not replay the
    # strong checker's verdict (nor vice versa).
    assert weak.statistics.persistent_cache_hits == 0
    assert weak.statistics.exhaustive_queries == 1

    same = EquivalenceChecker(options=EquivalenceOptions(persistent_cache_path=path))
    same.equivalent(left, right)
    assert same.statistics.persistent_cache_hits == 1
