"""End-to-end campaign runs with real transfers (one error case, 3 donors).

Kept to a single case so the tier-1 suite stays fast; the full Figure-8
campaign is exercised by ``benchmarks/bench_campaign_scaling.py``.
"""

from __future__ import annotations

import dataclasses

from repro.campaign import CampaignScheduler, RunStore, SchedulerOptions, expand_plan
from repro.core.reporting import ResultsDatabase
from repro.experiments import Figure8Row, run_row


def _normalise(record):
    """Strip wall-clock and per-run solver accounting for comparison."""
    return dataclasses.replace(
        record,
        generation_time_s=0.0,
        solver_queries=0,
        solver_cache_hits=0,
        solver_persistent_hits=0,
        solver_expensive_queries=0,
        stage_timings={},
    )


def test_parallel_campaign_matches_serial_run_and_warm_cache_hits(tmp_path):
    plan = expand_plan(cases=["cwebp-jpegdec"], name="integration")

    serial = ResultsDatabase()
    for job in plan.jobs:
        serial.add(run_row(Figure8Row(case_id=job.case_id, donor=job.donor)))

    store = RunStore(tmp_path / "run")
    store.initialise(plan)
    cold = CampaignScheduler(plan, store, SchedulerOptions(jobs=3, start_method="fork")).run()
    assert cold.completed == len(plan)
    assert not cold.failed

    parallel = store.merge_into_database(plan)
    assert [_normalise(r) for r in parallel.records] == [
        _normalise(r) for r in serial.records
    ]

    # Warm re-run (records discarded, cache kept): the persistent cache now
    # answers queries the cold run had to evaluate.
    store.initialise(plan, fresh=True)
    warm = CampaignScheduler(plan, store, SchedulerOptions(jobs=1, start_method="fork")).run()
    assert warm.completed == len(plan)
    assert warm.persistent_cache_hits > cold.persistent_cache_hits
    assert warm.persistent_hit_rate > 0.0
    warm_db = store.merge_into_database(plan)
    assert [_normalise(r) for r in warm_db.records] == [
        _normalise(r) for r in serial.records
    ]
