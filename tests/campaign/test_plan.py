"""Campaign plan expansion: determinism, filtering, options materialisation."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignPlan, JobSpec, PlanError, expand_plan, figure8_plan
from repro.core.patch import PatchStrategy
from repro.experiments import ERROR_CASES, FIGURE8_ROWS


def test_figure8_plan_matches_the_paper_rows():
    plan = figure8_plan()
    assert len(plan) == len(FIGURE8_ROWS)
    assert [(job.case_id, job.donor) for job in plan.jobs] == [
        (row.case_id, row.donor) for row in FIGURE8_ROWS
    ]
    assert all(job.strategy == PatchStrategy.EXIT.value for job in plan.jobs)


def test_default_expansion_is_the_full_cross_product():
    plan = expand_plan()
    expected = sum(len(case.donors) for case in ERROR_CASES.values())
    assert len(plan) == expected
    # Same jobs as the canonical figure8 plan (default strategy/variant).
    assert set(plan.job_ids()) == set(figure8_plan().job_ids())


def test_case_and_donor_filters():
    plan = expand_plan(cases=["dillo-png", "dillo-fltk"], donors=["feh", "mtpaint"])
    assert {(job.case_id, job.donor) for job in plan.jobs} == {
        ("dillo-png", "feh"),
        ("dillo-png", "mtpaint"),
        ("dillo-fltk", "feh"),
        ("dillo-fltk", "mtpaint"),
    }


def test_strategy_and_variant_cross_product():
    plan = expand_plan(
        cases=["swfplay-rgb"],
        strategies=["exit", "return0"],
        variants={"default": {}, "no-filter": {"filter_unstable_points": False}},
    )
    assert len(plan) == 4
    assert len(set(plan.job_ids())) == 4


def test_duplicate_request_values_are_deduplicated():
    plan = expand_plan(
        cases=["cwebp-jpegdec", "cwebp-jpegdec"],
        strategies=["exit", "exit"],
    )
    assert len(plan) == 3  # one job per donor, no duplicate-job error


def test_job_ids_are_deterministic_and_content_addressed():
    job = JobSpec(case_id="cwebp-jpegdec", donor="feh")
    again = JobSpec(case_id="cwebp-jpegdec", donor="feh")
    assert job.job_id == again.job_id
    assert job.job_id != JobSpec(case_id="cwebp-jpegdec", donor="mtpaint").job_id
    assert (
        job.job_id
        != JobSpec(case_id="cwebp-jpegdec", donor="feh", strategy="return0").job_id
    )


def test_job_round_trips_through_dict():
    job = JobSpec(
        case_id="dillo-png",
        donor="feh",
        strategy="return0",
        variant="fast",
        overrides=(("max_candidate_checks", 2), ("use_cache", False)),
    )
    restored = JobSpec.from_dict(job.to_dict())
    assert restored == job
    assert restored.job_id == job.job_id


def test_plan_round_trips_through_dict():
    plan = expand_plan(cases=["jasper-tiles", "gif2tiff-lzw"])
    restored = CampaignPlan.from_dict(plan.to_dict())
    assert restored.job_ids() == plan.job_ids()
    assert restored.name == plan.name


def test_build_options_materialises_strategy_and_overrides():
    job = JobSpec(
        case_id="wireshark-dcp",
        donor="wireshark-1.8.6",
        strategy="return0",
        overrides=(("max_candidate_checks", 3), ("use_cache", False)),
    )
    options = job.build_options(persistent_cache_path="/tmp/cache.jsonl")
    assert options.patch_strategy is PatchStrategy.RETURN_ZERO
    assert options.max_candidate_checks == 3
    assert options.equivalence_options.use_cache is False
    assert options.equivalence_options.persistent_cache_path == "/tmp/cache.jsonl"


def test_unknown_inputs_are_rejected():
    with pytest.raises(PlanError):
        expand_plan(cases=["no-such-case"])
    with pytest.raises(PlanError):
        expand_plan(donors=["no-such-donor"])
    with pytest.raises(PlanError):
        expand_plan(strategies=["no-such-strategy"])
    with pytest.raises(PlanError):
        JobSpec(case_id="dillo-png", donor="feh", overrides=(("bogus", 1),)).build_options()
    with pytest.raises(PlanError, match="sample_cnt"):
        # Typo'd variant keys must fail at expansion, not in every worker.
        expand_plan(cases=["dillo-png"], variants={"fast": {"sample_cnt": 8}})
    with pytest.raises(PlanError):
        # feh does not donate to the wireshark case -> empty plan.
        expand_plan(cases=["wireshark-dcp"], donors=["feh"])


def test_donor_filter_must_not_silently_drop_a_requested_case():
    # feh donates to cwebp-jpegdec but not to gif2tiff-lzw: naming both cases
    # explicitly must fail loudly rather than quietly shrinking the plan.
    with pytest.raises(PlanError, match="gif2tiff-lzw"):
        expand_plan(cases=["cwebp-jpegdec", "gif2tiff-lzw"], donors=["feh"])
    # Without an explicit case list the donor filter is a selection, not a
    # demand: non-matching cases are simply outside the campaign.
    plan = expand_plan(donors=["feh"])
    assert {job.donor for job in plan.jobs} == {"feh"}
    assert {job.case_id for job in plan.jobs} == {
        "cwebp-jpegdec",
        "dillo-png",
        "dillo-fltk",
        "display-xwindow",
        "display-resize",
    }
