"""Concurrent-append hammer for the persistent solver cache.

N processes × M puts against one cache file (and against a sharded
key-space): afterwards every line must parse — no interleaved bytes —
and a fresh reader must recover every entry.  Also covers the
``fcntl is None`` fallback path (non-POSIX platforms): appends stay
intact there because each line is written in a single buffered write,
and the O_APPEND file offset is shared.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

import repro.campaign.cache as cache_module
from repro.campaign import PersistentSolverCache, ShardedSolverCache

WRITERS = 4
PUTS = 50


def _hammer_flat(path: str, writer: int, puts: int) -> None:
    cache = PersistentSolverCache(path)
    for index in range(puts):
        cache.put(
            f"writer-{writer}-key-{index:04d}",
            {"verdict": "equivalent", "writer": writer, "index": index},
        )


def _hammer_flat_without_fcntl(path: str, writer: int, puts: int) -> None:
    cache_module.fcntl = None  # simulate a non-POSIX platform in this child
    _hammer_flat(path, writer, puts)


def _hammer_sharded(directory: str, writer: int, puts: int, partitions: int) -> None:
    cache = ShardedSolverCache(directory, partitions, local_partition=writer % partitions)
    for index in range(puts):
        cache.put(
            f"writer-{writer}-key-{index:04d}",
            {"verdict": "equivalent", "writer": writer, "index": index},
        )


def _run_writers(target, args_for) -> None:
    ctx = multiprocessing.get_context("fork")
    processes = [
        ctx.Process(target=target, args=args_for(writer)) for writer in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0


def _assert_no_interleaved_bytes(path) -> set[str]:
    keys = set()
    for line in path.read_text().splitlines():
        entry = json.loads(line)  # raises on any torn or interleaved write
        keys.add(entry["k"])
    return keys


@pytest.mark.parametrize(
    "target",
    [_hammer_flat, _hammer_flat_without_fcntl],
    ids=["flock", "fcntl-none-fallback"],
)
def test_concurrent_appends_do_not_interleave(tmp_path, target):
    path = tmp_path / "cache.jsonl"
    _run_writers(target, lambda writer: (str(path), writer, PUTS))

    keys = _assert_no_interleaved_bytes(path)
    expected = {
        f"writer-{writer}-key-{index:04d}"
        for writer in range(WRITERS)
        for index in range(PUTS)
    }
    assert keys == expected

    # Full recovery: a fresh instance (refresh() on construction) holds
    # every entry, and an explicit refresh() after the fact is idempotent.
    fresh = PersistentSolverCache(path)
    assert len(fresh) == WRITERS * PUTS
    fresh.refresh()
    assert len(fresh) == WRITERS * PUTS
    for key in expected:
        assert fresh.get(key)["verdict"] == "equivalent"


def test_concurrent_appends_across_shards(tmp_path):
    partitions = 3
    _run_writers(
        _hammer_sharded,
        lambda writer: (str(tmp_path), writer, PUTS, partitions),
    )

    shard_paths = sorted(tmp_path.glob("shard-*.jsonl"))
    assert len(shard_paths) == partitions
    keys: set[str] = set()
    for path in shard_paths:
        shard_keys = _assert_no_interleaved_bytes(path)
        assert keys.isdisjoint(shard_keys)  # each key lives in one shard only
        keys |= shard_keys
    assert len(keys) == WRITERS * PUTS

    fresh = ShardedSolverCache(tmp_path, partitions)
    for writer in range(WRITERS):
        for index in range(PUTS):
            key = f"writer-{writer}-key-{index:04d}"
            assert fresh.get(key) == {
                "verdict": "equivalent",
                "writer": writer,
                "index": index,
            }
    assert len(fresh) == WRITERS * PUTS
