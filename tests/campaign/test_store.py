"""Run store and scheduler: completion, resume-after-interrupt, retry, timeout.

The scheduler runs real worker processes here, but with stub runners (the
``runner`` injection point) so the tests exercise scheduling policy without
paying for real transfers.  Stub runners communicate with the test through
marker files placed next to the store's solver cache.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.campaign import (
    STATUS_CRASHED,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    CampaignScheduler,
    JobResult,
    RunStore,
    SchedulerOptions,
    StoreError,
    expand_plan,
)
from repro.core.reporting import TransferRecord


def _fake_record(payload: dict) -> dict:
    return asdict(
        TransferRecord(
            recipient=payload["case_id"],
            target="site:1",
            donor=payload["donor"],
            success=True,
            generation_time_s=0.01,
            relevant_branches=1,
            flipped_branches="1",
            used_checks=1,
            insertion_points="1 - 0 - 0 = 1",
            check_size="2 -> 1",
            solver_queries=10,
            solver_cache_hits=4,
            solver_persistent_hits=2,
            solver_expensive_queries=1,
            solver_batch_hits=3,
            solver_backend_stats={
                "cdcl": {"queries": 5, "unsat": 4, "sat": 1, "conflicts": 7,
                         "learned_clauses": 6, "time_s": 0.001},
            },
        )
    )


def _marker_dir(cache_path: str) -> Path:
    directory = Path(cache_path).parent / "ran"
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def ok_runner(payload: dict, cache_path: str) -> dict:
    (_marker_dir(cache_path) / f"{payload['job_id']}-{os.getpid()}").touch()
    return {"record": _fake_record(payload), "elapsed_s": 0.01}


def crash_runner(payload: dict, cache_path: str) -> dict:
    os._exit(3)


def error_runner(payload: dict, cache_path: str) -> dict:
    raise ValueError("synthetic failure")


def sleepy_runner(payload: dict, cache_path: str) -> dict:
    time.sleep(30)
    return {"record": _fake_record(payload), "elapsed_s": 30.0}


def flaky_runner(payload: dict, cache_path: str) -> dict:
    marker = _marker_dir(cache_path) / f"flaky-{payload['job_id']}"
    if not marker.exists():
        marker.touch()
        os._exit(9)
    return {"record": _fake_record(payload), "elapsed_s": 0.01}


def _options(**overrides) -> SchedulerOptions:
    base = dict(jobs=2, start_method="fork", poll_interval_s=0.01)
    base.update(overrides)
    return SchedulerOptions(**base)


@pytest.fixture
def plan():
    return expand_plan(cases=["cwebp-jpegdec", "swfplay-rgb"], name="test")  # 4 jobs


@pytest.fixture
def store(tmp_path, plan):
    run_store = RunStore(tmp_path / "run")
    run_store.initialise(plan)
    return run_store


def _ran_jobs(store: RunStore) -> set[str]:
    ran_dir = store.directory / "ran"
    if not ran_dir.exists():
        return set()
    return {path.name.rsplit("-", 1)[0] for path in ran_dir.iterdir()}


def test_scheduler_completes_all_jobs_and_merges_in_plan_order(plan, store):
    report = CampaignScheduler(plan, store, _options(), runner=ok_runner).run()
    assert report.completed == len(plan)
    assert not report.failed
    assert store.completed_ids() == set(plan.job_ids())
    database = store.merge_into_database(plan)
    # Workers finish in arbitrary order; the merged table is in plan order.
    assert [record.recipient for record in database.records] == [
        job.case_id for job in plan.jobs
    ]
    # Solver accounting is aggregated from the records — including the
    # per-backend counters and batch dedupe, not just cache hit counts.
    assert report.solver_queries == 10 * len(plan)
    assert report.persistent_cache_hits == 2 * len(plan)
    assert report.batch_hits == 3 * len(plan)
    assert report.backend_stats["cdcl"]["queries"] == 5 * len(plan)
    assert report.backend_stats["cdcl"]["learned_clauses"] == 6 * len(plan)
    assert f"backend cdcl: {5 * len(plan)} queries" in report.summary()


def test_rerun_skips_completed_jobs(plan, store):
    CampaignScheduler(plan, store, _options(), runner=ok_runner).run()
    first_ran = _ran_jobs(store)
    assert first_ran == set(plan.job_ids())
    for path in (store.directory / "ran").iterdir():
        path.unlink()

    report = CampaignScheduler(plan, store, _options(), runner=ok_runner).run()
    assert report.completed == 0
    assert report.skipped == len(plan)
    assert _ran_jobs(store) == set()  # no job executed twice


def test_resume_after_interrupt_runs_only_remaining_jobs(plan, store):
    # Simulate a campaign killed after two jobs: their records survived.
    done = list(plan.jobs[:2])
    for job in done:
        store.append(
            JobResult(
                job_id=job.job_id,
                status=STATUS_DONE,
                record=_fake_record(job.to_dict()),
            )
        )

    report = CampaignScheduler(plan, store, _options(), runner=ok_runner).run()
    assert report.skipped == 2
    assert report.completed == 2
    assert _ran_jobs(store) == {job.job_id for job in plan.jobs[2:]}
    assert store.completed_ids() == set(plan.job_ids())
    assert len(store.merge_into_database(plan).records) == len(plan)


def test_crashed_worker_is_retried_then_recorded_as_failed(plan, store):
    report = CampaignScheduler(
        plan, store, _options(retries=1), runner=crash_runner
    ).run()
    assert report.completed == 0
    assert sorted(report.failed) == sorted(plan.job_ids())
    attempts = list(store.attempts())
    assert len(attempts) == 2 * len(plan)  # one retry per job
    assert all(result.status == STATUS_CRASHED for result in attempts)
    assert all("exited with code 3" in result.error for result in attempts)
    assert store.completed_ids() == set()


def test_runner_exception_is_recorded_and_retried(plan, store):
    report = CampaignScheduler(
        plan, store, _options(retries=0), runner=error_runner
    ).run()
    assert sorted(report.failed) == sorted(plan.job_ids())
    attempts = list(store.attempts())
    assert len(attempts) == len(plan)
    assert all(result.status == STATUS_ERROR for result in attempts)
    assert all("synthetic failure" in result.error for result in attempts)


def test_flaky_job_recovers_on_retry(plan, store):
    report = CampaignScheduler(
        plan, store, _options(retries=1), runner=flaky_runner
    ).run()
    assert report.completed == len(plan)
    assert not report.failed
    statuses = [result.status for result in store.attempts()]
    assert statuses.count(STATUS_CRASHED) == len(plan)
    assert statuses.count(STATUS_DONE) == len(plan)


def test_timeout_kills_the_worker_and_records_the_attempt(store, plan):
    report = CampaignScheduler(
        plan,
        store,
        _options(jobs=4, timeout_s=0.4, retries=0),
        runner=sleepy_runner,
    ).run()
    assert report.completed == 0
    assert sorted(report.failed) == sorted(plan.job_ids())
    attempts = list(store.attempts())
    assert all(result.status == STATUS_TIMEOUT for result in attempts)


def test_store_rejects_a_different_plan(tmp_path, plan):
    run_store = RunStore(tmp_path / "run")
    run_store.initialise(plan)
    other = expand_plan(cases=["dillo-png"], name="other")
    with pytest.raises(StoreError):
        run_store.initialise(other)


def test_fresh_initialise_adopts_a_different_plan(tmp_path, plan):
    run_store = RunStore(tmp_path / "run")
    run_store.initialise(plan)
    run_store.append(JobResult(job_id=plan.jobs[0].job_id, status=STATUS_DONE, record={}))

    other = expand_plan(cases=["dillo-png"], name="other")
    run_store.initialise(other, fresh=True)
    assert run_store.load_plan().name == "other"
    assert run_store.completed_ids() == set()


def test_fresh_initialise_discards_records_but_keeps_cache(tmp_path, plan):
    run_store = RunStore(tmp_path / "run")
    run_store.initialise(plan)
    run_store.append(JobResult(job_id=plan.jobs[0].job_id, status=STATUS_DONE, record={}))
    run_store.cache_path.write_text('{"k":"a||b","v":{"verdict":"equivalent"}}\n')

    run_store.initialise(plan, fresh=True)
    assert run_store.completed_ids() == set()
    assert run_store.cache_path.exists()


def test_attempts_skip_torn_trailing_line(store, plan):
    store.append(JobResult(job_id=plan.jobs[0].job_id, status=STATUS_DONE, record={}))
    with open(store.records_path, "a") as handle:
        handle.write('{"job_id": "torn", "stat')  # interrupted mid-write
    with pytest.warns(RuntimeWarning, match="torn record"):
        results = list(store.attempts())
    assert len(results) == 1
    assert store.completed_ids() == {plan.jobs[0].job_id}


def test_attempts_warn_on_truncated_final_record(store, plan):
    # A writer killed mid-append leaves a prefix of the last record: every
    # complete attempt must survive, the torn one is skipped with a warning.
    for job in plan.jobs:
        store.append(JobResult(job_id=job.job_id, status=STATUS_DONE, record={}))
    whole = store.records_path.read_text()
    last_line_start = whole.rstrip("\n").rfind("\n") + 1
    cut = last_line_start + (len(whole) - last_line_start) // 2
    store.records_path.write_text(whole[:cut])

    with pytest.warns(RuntimeWarning, match="will re-run"):
        results = list(store.attempts())
    assert [r.job_id for r in results] == [job.job_id for job in plan.jobs[:-1]]
    # The truncated job is simply not completed: resume re-runs exactly it.
    with pytest.warns(RuntimeWarning):
        completed = store.completed_ids()
    assert completed == {job.job_id for job in plan.jobs[:-1]}
