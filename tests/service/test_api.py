"""Endpoint semantics of the repair daemon (stub and real runners).

The stub runner emits a deterministic event stream and a done record
without touching the repair pipeline, so these tests pin down the HTTP
contract — schemas, status codes, SSE framing, store reads — at
millisecond speed.  One end-to-end class at the bottom drives a real
repair through the live daemon (the CI smoke path).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.campaign.store import RunStore
from repro.core.events import StageFinished, StageStarted, event_to_dict
from repro.experiments import ERROR_CASES
from repro.service import ServiceError
from repro.service.jobs import STATUS_DONE


def stub_runner(manager, state):
    """Mirror default_service_runner's record shapes without running repairs."""
    records = []
    for spec in state.submission.specs:
        state.buffer(StageStarted(stage="stub"))
        state.buffer(StageFinished(stage="stub", elapsed_s=0.01))
        records.append(
            {
                "success": True,
                "recipient": "stub-recipient",
                "target": "t",
                "donor": spec.donor,
            }
        )
    if state.kind == "transfer":
        return records[0]
    return {
        "success": True,
        "transfers": len(records),
        "validated": len(records),
        "records": records,
    }


class TestSubmission:
    def test_submit_returns_202_with_a_queued_or_running_job(
        self, make_daemon, client_for
    ):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit({"kind": "transfer", "case": "cwebp-jpegdec"})
        assert state["job_id"].startswith("svc-")
        assert state["status"] in ("queued", "running")
        assert state["kind"] == "transfer"

    def test_default_donor_is_the_cases_first_listed(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit({"case": "cwebp-jpegdec"})
        final = client.wait(state["job_id"])
        assert final["status"] == STATUS_DONE
        record = client.store_results("service-0")[state["job_id"]]["record"]
        assert record["donor"] == ERROR_CASES["cwebp-jpegdec"].donors[0]

    @pytest.mark.parametrize(
        "payload, expected_status",
        [
            ({"case": "no-such-case"}, 400),
            ({"case": "cwebp-jpegdec", "donor": "no-such-donor"}, 400),
            ({"case": "cwebp-jpegdec", "strategy": "no-such-strategy"}, 400),
            ({"case": "cwebp-jpegdec", "overrides": {"typo_key": 1}}, 400),
            ({"case": "cwebp-jpegdec", "overrides": {"backend": "bogus"}}, 400),
            ({"case": "cwebp-jpegdec", "budget_s": -1}, 400),
            ({"case": "cwebp-jpegdec", "budget_s": 10**9}, 413),
            ({"kind": "bogus"}, 400),
            ({"kind": "matrix", "transfers": []}, 400),
            ({"kind": "matrix", "transfers": [["cwebp-jpegdec"]]}, 400),
        ],
        ids=[
            "unknown-case",
            "unknown-donor",
            "unknown-strategy",
            "unknown-override",
            "unknown-backend",
            "negative-budget",
            "budget-over-cap",
            "unknown-kind",
            "empty-matrix",
            "malformed-pair",
        ],
    )
    def test_invalid_payloads_are_rejected_with_the_plan_validators(
        self, make_daemon, client_for, payload, expected_status
    ):
        client = client_for(make_daemon(runner=stub_runner))
        with pytest.raises(ServiceError) as excinfo:
            client.submit(payload)
        assert excinfo.value.status == expected_status

    def test_oversized_matrix_is_rejected_413(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        transfers = [
            [case_id, donor]
            for case_id, case in ERROR_CASES.items()
            for donor in case.donors
        ]
        variants = {f"v{i}": {"sample_count": 4 + i} for i in range(4)}
        with pytest.raises(ServiceError) as excinfo:
            client.submit(
                {"kind": "matrix", "transfers": transfers, "variants": variants}
            )
        assert excinfo.value.status == 413

    def test_matrix_job_runs_every_expanded_transfer(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit(
            {
                "kind": "matrix",
                "transfers": [
                    ["cwebp-jpegdec", "feh"],
                    ["cwebp-jpegdec", "mtpaint"],
                ],
            }
        )
        final = client.wait(state["job_id"])
        assert final["status"] == STATUS_DONE
        record = client.store_results("service-0")[state["job_id"]]["record"]
        assert record["transfers"] == 2
        assert record["validated"] == 2

    def test_non_json_body_is_a_400(self, make_daemon, client_for):
        import http.client

        daemon = make_daemon(runner=stub_runner)
        host, port = daemon.address
        connection = http.client.HTTPConnection(host, port, timeout=5)
        connection.request("POST", "/v1/jobs", body=b"not json")
        response = connection.getresponse()
        assert response.status == 400
        connection.close()


class TestJobReads:
    def test_unknown_job_is_a_404(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        with pytest.raises(ServiceError) as excinfo:
            client.job("svc-999999-ffffffffffff")
        assert excinfo.value.status == 404

    def test_jobs_listing_contains_every_submission(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        submitted = {
            client.submit({"case": "cwebp-jpegdec"})["job_id"] for _ in range(3)
        }
        listed = {job["job_id"] for job in client.jobs()}
        assert submitted <= listed

    def test_done_job_exposes_success_and_event_count(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit({"case": "cwebp-jpegdec"})
        final = client.wait(state["job_id"])
        assert final["success"] is True
        assert final["events"] == 2
        assert final["elapsed_s"] >= 0


class TestSSE:
    def test_stream_replays_exactly_the_persisted_event_sequence(
        self, make_daemon, client_for
    ):
        daemon = make_daemon(runner=stub_runner)
        client = client_for(daemon)
        state = client.submit({"case": "cwebp-jpegdec"})
        client.wait(state["job_id"])
        streamed = client.stream_events(state["job_id"])
        persisted = daemon.store.load_event_dicts(state["job_id"])
        assert [event_to_dict(event) for event in streamed] == persisted
        assert persisted  # the stub emitted events, so both sides are non-trivial

    def test_stream_brackets_events_with_status_and_end_frames(
        self, make_daemon, client_for
    ):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit({"case": "cwebp-jpegdec"})
        client.wait(state["job_id"])
        names = []
        with client.open_events(state["job_id"]) as frames:
            for name, payload in frames:
                names.append(name)
                if name == "end":
                    assert payload["status"] == STATUS_DONE
                    break
        assert names[0] == "status"
        assert names[-1] == "end"

    def test_live_stream_sees_events_before_the_job_ends(
        self, make_daemon, client_for
    ):
        import threading

        release = threading.Event()

        def slow_runner(manager, state):
            state.buffer(StageStarted(stage="slow"))
            assert release.wait(timeout=10)
            state.buffer(StageFinished(stage="slow", elapsed_s=0.01))
            return {"success": True}

        client = client_for(make_daemon(runner=slow_runner))
        state = client.submit({"case": "cwebp-jpegdec"})
        with client.open_events(state["job_id"]) as frames:
            saw_live_event = False
            for name, payload in frames:
                if name == "StageStarted":
                    saw_live_event = True
                    release.set()  # only unblock the job after we saw it live
                if name == "end":
                    break
            assert saw_live_event


class TestBundle:
    def test_bundle_of_a_done_transfer_is_schema_valid(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit({"case": "cwebp-jpegdec", "donor": "feh"})
        client.wait(state["job_id"])
        bundle = client.bundle(state["job_id"])
        assert bundle["job"]["job_id"] == state["job_id"]
        assert bundle["job"]["case_id"] == "cwebp-jpegdec"
        assert bundle["repair"]["success"] is True

    def test_bundle_before_done_is_a_409(self, make_daemon, client_for):
        import threading

        release = threading.Event()

        def blocked_runner(manager, state):
            assert release.wait(timeout=10)
            return {"success": True}

        client = client_for(make_daemon(runner=blocked_runner))
        state = client.submit({"case": "cwebp-jpegdec"})
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.bundle(state["job_id"])
            assert excinfo.value.status == 409
        finally:
            release.set()


class TestStoresAndObservability:
    def test_service_store_is_listed_and_readable(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit({"case": "cwebp-jpegdec"})
        client.wait(state["job_id"])
        stores = {entry["name"]: entry for entry in client.stores()}
        assert stores["service-0"]["completed"] == 1
        assert state["job_id"] in client.store_results("service-0")

    def test_class_stats_aggregate_by_recipient(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        for _ in range(2):
            client.wait(client.submit({"case": "cwebp-jpegdec"})["job_id"])
        stats = client.class_stats("service-0")
        assert stats["stub-recipient"]["transfers"] == 2
        assert stats["stub-recipient"]["success_rate"] == 1.0

    def test_store_path_traversal_is_rejected(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        for name in ("..", ".hidden", "a/b"):
            with pytest.raises(ServiceError) as excinfo:
                client.store_results(name)
            assert excinfo.value.status == 404

    def test_metrics_and_spans_record_http_traffic(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        state = client.submit({"case": "cwebp-jpegdec"})
        client.wait(state["job_id"])
        snapshot = client.metrics()
        assert snapshot["counters"]["service.jobs.submitted"] == 1
        assert snapshot["counters"]["service.jobs.done"] == 1
        # Request accounting lands *after* the response bytes go out, so a
        # fast reader can observe its predecessors' counts still in flight
        # — poll briefly instead of asserting one instantaneous snapshot.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            snapshot = client.metrics()
            spans = client.spans()
            if snapshot["counters"].get("service.http.requests", 0) >= 2 and any(
                span["name"] == "POST /v1/jobs" for span in spans
            ):
                break
        assert snapshot["counters"]["service.http.requests"] >= 2
        assert any(span["name"] == "POST /v1/jobs" for span in spans)

    def test_healthz_reports_pool_and_queue_gauges(self, make_daemon, client_for):
        client = client_for(make_daemon(runner=stub_runner))
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers_alive"] == 2
        assert health["idle_sessions"] == 1
        assert health["queue_limit"] == 16


class TestRealRepair:
    """One real repair through the live daemon (the CI smoke scenario)."""

    def test_submit_stream_and_bundle_a_real_transfer(
        self, make_daemon, client_for
    ):
        daemon = make_daemon(workers=1)  # default runner: the real pipeline
        client = client_for(daemon)
        state = client.submit(
            {"case": "cwebp-jpegdec", "donor": "feh", "budget_s": 120}
        )
        final = client.wait(state["job_id"], timeout=120)
        assert final["status"] == STATUS_DONE
        assert final["success"] is True
        streamed = client.stream_events(state["job_id"])
        persisted = daemon.store.load_event_dicts(state["job_id"])
        assert [event_to_dict(event) for event in streamed] == persisted
        assert any(p["event"] == "PatchValidated" for p in persisted)
        bundle = client.bundle(state["job_id"])
        assert bundle["repair"]["success"] is True
        assert bundle["provenance"]["validated_checks"]
