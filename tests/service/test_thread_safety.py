"""Regression tests for the latent thread-unsafety the service surfaced.

Serving repairs from ``ThreadingHTTPServer`` worker threads turned three
pieces of process-global state into shared state for the first time; each
class below hammers one of them the way the daemon does and pins the fix:

* :class:`repro.obs.metrics.MetricsRegistry` — read-modify-write counters
  (lost updates without the registry lock);
* the symbolic expression intern table — check-then-insert publication (two
  racing constructors could break identity equality, the invariant the
  whole solver layer leans on);
* the MicroC compile cache — an LRU ``OrderedDict`` mutated during lookup
  (``move_to_end``) as well as insert/evict.

``sys.setswitchinterval(1e-6)`` forces preemption inside the critical
sections, turning these races from once-a-week flakes into near-certain
failures on unfixed code.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.lang.compile import clear_compile_cache, compile_cache_info, compile_program
from repro.obs.metrics import MetricsRegistry
from repro.symbolic import builder
from repro.symbolic.expr import clear_intern_table

THREADS = 8
ROUNDS = 2_000


@pytest.fixture(autouse=True)
def aggressive_preemption():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _run_threads(target, count: int = THREADS) -> list[Exception]:
    errors: list[Exception] = []

    def guarded(index: int) -> None:
        try:
            target(index)
        except Exception as exc:  # noqa: BLE001 - surfaced via the assert
            errors.append(exc)

    threads = [
        threading.Thread(target=guarded, args=(index,)) for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    return errors


class TestMetricsRegistryUnderThreads:
    def test_concurrent_increments_lose_no_updates(self):
        registry = MetricsRegistry()
        registry.enable()

        def hammer(_: int) -> None:
            for _ in range(ROUNDS):
                registry.inc("service.test.counter")
                registry.inc("service.test.weighted", 0.5)

        assert not _run_threads(hammer)
        assert registry.counter("service.test.counter") == THREADS * ROUNDS
        assert registry.counter("service.test.weighted") == THREADS * ROUNDS * 0.5

    def test_concurrent_observe_keeps_histogram_count_consistent(self):
        registry = MetricsRegistry()
        registry.enable()

        def hammer(index: int) -> None:
            for round_index in range(ROUNDS):
                registry.observe("service.test.hist", (index + round_index) % 7 * 0.01)

        assert not _run_threads(hammer)
        histogram = registry.histogram("service.test.hist")
        assert histogram.count == THREADS * ROUNDS
        assert sum(histogram.buckets) == THREADS * ROUNDS

    def test_gauge_max_is_a_true_maximum_under_contention(self):
        registry = MetricsRegistry()
        registry.enable()

        def hammer(index: int) -> None:
            for round_index in range(ROUNDS):
                registry.gauge_max("service.test.peak", index * ROUNDS + round_index)

        assert not _run_threads(hammer)
        assert registry.gauge("service.test.peak") == THREADS * ROUNDS - 1

    def test_snapshot_during_writes_is_internally_consistent(self):
        registry = MetricsRegistry()
        registry.enable()
        snapshots: list[dict] = []

        def writer(_: int) -> None:
            for _ in range(ROUNDS):
                registry.inc("service.test.counter")

        def reader(_: int) -> None:
            for _ in range(200):
                snapshots.append(registry.snapshot())

        def mixed(index: int) -> None:
            (reader if index % 2 else writer)(index)

        assert not _run_threads(mixed)
        for snapshot in snapshots:
            value = snapshot["counters"].get("service.test.counter", 0)
            assert 0 <= value <= (THREADS // 2) * ROUNDS


class TestInternTableUnderThreads:
    def test_racing_constructors_agree_on_one_canonical_node(self):
        clear_intern_table()
        try:
            for round_index in range(50):
                barrier = threading.Barrier(THREADS)
                winners: list[object] = []

                def construct(_: int, round_index=round_index, barrier=barrier,
                              winners=winners) -> None:
                    barrier.wait()  # all threads intern the same fresh key at once
                    winners.append(
                        builder.input_field(f"/race/{round_index}", 16)
                    )

                assert not _run_threads(construct)
                assert len(winners) == THREADS
                # Identity, not just equality: the solver keys memo tables
                # by id(), so every thread must hold the *same* node.
                assert len({id(node) for node in winners}) == 1
        finally:
            clear_intern_table()

    def test_compound_expressions_stay_identity_equal_across_threads(self):
        clear_intern_table()
        try:
            results: list[object] = []

            def construct(_: int) -> None:
                for index in range(100):
                    field = builder.input_field(f"/shared/{index % 5}", 16)
                    results.append(builder.const(index % 5, 16))
                    results.append(field)

            assert not _run_threads(construct)
            by_repr: dict[str, set[int]] = {}
            for node in results:
                by_repr.setdefault(repr(node), set()).add(id(node))
            for identities in by_repr.values():
                assert len(identities) == 1
        finally:
            clear_intern_table()


class TestCompileCacheUnderThreads:
    def _programs(self, count: int):
        from repro.lang.checker import compile_program as check_source

        return [
            check_source(
                f"int main() {{ int x; x = {index}; return x + {index}; }}",
                name=f"race-{index}",
            )
            for index in range(count)
        ]

    def test_concurrent_compiles_converge_on_one_cached_program(self):
        clear_compile_cache()
        programs = self._programs(4)
        compiled: list[object] = []

        def hammer(index: int) -> None:
            for round_index in range(50):
                program = programs[(index + round_index) % len(programs)]
                compiled.append(compile_program(program))

        assert not _run_threads(hammer)
        info = compile_cache_info()
        assert info["entries"] <= info["capacity"]
        # One CompiledProgram per source: racing compilers must all adopt
        # the setdefault winner, never publish private copies.
        for program in programs:
            assert compile_program(program) is compile_program(program)

    def test_eviction_churn_under_threads_never_corrupts_the_lru(self):
        clear_compile_cache()
        from repro.lang.compile import _COMPILE_CACHE_CAPACITY

        programs = self._programs(12)

        def hammer(index: int) -> None:
            for round_index in range(40):
                compile_program(programs[(index * 7 + round_index) % len(programs)])

        assert not _run_threads(hammer)
        info = compile_cache_info()
        assert info["entries"] <= _COMPILE_CACHE_CAPACITY
        assert len(info["digests"]) == info["entries"]
