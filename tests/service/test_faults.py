"""Fault injection against the live daemon: dead workers, full queues,
vanished SSE clients, blown budgets.

All runners here are injected stubs wired to ``threading.Event``s so each
failure mode is deterministic: a ``BaseException`` models a killed worker
thread, a blocking runner models a wedged job, and closing the SSE socket
mid-stream models a client that walked away.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.campaign.store import STATUS_CRASHED, STATUS_DONE, STATUS_ERROR, STATUS_TIMEOUT
from repro.core.events import StageStarted
from repro.service import ServiceError
from repro.service.jobs import STATUS_QUEUED, STATUS_RUNNING


class WorkerKilled(BaseException):
    """Not an Exception: takes down the worker thread, like a real kill."""


def _wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestWorkerDeath:
    # The kill deliberately escapes the worker thread (that's the point);
    # pytest would otherwise flag the dying thread's BaseException.
    @pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_killed_worker_yields_crashed_verdict_and_no_wedge(
        self, make_daemon, client_for
    ):
        def killing_runner(manager, state):
            raise WorkerKilled("simulated worker kill")

        daemon = make_daemon(runner=killing_runner, workers=2)
        client = client_for(daemon)
        state = client.submit({"case": "cwebp-jpegdec"})
        final = client.wait(state["job_id"], timeout=30)
        assert final["status"] == STATUS_CRASHED
        assert "died" in final["error"]

        # The crash is durably recorded with the campaign status vocabulary.
        stored = daemon.store.results()[state["job_id"]]
        assert stored.status == STATUS_CRASHED

        # The watchdog replaces the dead thread: full strength again ...
        assert _wait_until(lambda: daemon.manager.workers_alive() == 2)

        # ... and the daemon is not wedged: it keeps crashing jobs cleanly
        # (every submission kills a worker; every worker is respawned).
        second = client.submit({"case": "cwebp-jpegdec"})
        assert client.wait(second["job_id"], timeout=30)["status"] == STATUS_CRASHED
        assert _wait_until(lambda: daemon.manager.workers_alive() == 2)
        counters = client.metrics()["counters"]
        assert counters["service.workers.respawns"] >= 2

    def test_runner_exception_retries_then_errors(self, make_daemon, client_for):
        failures = []

        def flaky_runner(manager, state):
            failures.append(state.attempt)
            raise RuntimeError("transient failure")

        daemon = make_daemon(runner=flaky_runner, retries=2)
        client = client_for(daemon)
        state = client.submit({"case": "cwebp-jpegdec"})
        final = client.wait(state["job_id"], timeout=30)
        assert final["status"] == STATUS_ERROR
        assert "transient failure" in final["error"]
        assert failures == [1, 2, 3]  # 1 + retries attempts, via the ledger

        # Public status never regressed across the internal retries.
        history = daemon.manager.job(state["job_id"]).history
        assert history == [STATUS_QUEUED, STATUS_RUNNING, STATUS_ERROR]

    def test_one_success_after_a_failure_settles_done(self, make_daemon, client_for):
        def second_try_runner(manager, state):
            if state.attempt == 1:
                raise RuntimeError("first attempt dies")
            return {"success": True}

        client = client_for(make_daemon(runner=second_try_runner, retries=1))
        state = client.submit({"case": "cwebp-jpegdec"})
        final = client.wait(state["job_id"], timeout=30)
        assert final["status"] == STATUS_DONE
        assert final["attempt"] == 2


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, make_daemon, client_for):
        release = threading.Event()

        def blocking_runner(manager, state):
            assert release.wait(timeout=30)
            return {"success": True}

        daemon = make_daemon(runner=blocking_runner, workers=1, queue_limit=2)
        client = client_for(daemon)
        try:
            accepted = [client.submit({"case": "cwebp-jpegdec"})]
            # One job occupies the worker; fill the two queue slots.
            assert _wait_until(lambda: daemon.manager.queue_depth() == 0)
            accepted += [client.submit({"case": "cwebp-jpegdec"}) for _ in range(2)]

            with pytest.raises(ServiceError) as excinfo:
                client.submit({"case": "cwebp-jpegdec"})
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s is not None
            assert excinfo.value.retry_after_s >= 1

            # A rejected submission leaves no trace: not listed, not stored.
            assert len(client.jobs()) == len(accepted)
        finally:
            release.set()
        for state in accepted:
            assert client.wait(state["job_id"], timeout=30)["status"] == STATUS_DONE

    def test_rejections_are_counted(self, make_daemon, client_for):
        release = threading.Event()

        def blocking_runner(manager, state):
            assert release.wait(timeout=30)
            return {"success": True}

        daemon = make_daemon(runner=blocking_runner, workers=1, queue_limit=1)
        client = client_for(daemon)
        try:
            client.submit({"case": "cwebp-jpegdec"})
            assert _wait_until(lambda: daemon.manager.queue_depth() == 0)
            client.submit({"case": "cwebp-jpegdec"})
            for _ in range(3):
                with pytest.raises(ServiceError):
                    client.submit({"case": "cwebp-jpegdec"})
            assert client.metrics()["counters"]["service.jobs.rejected"] == 3
        finally:
            release.set()


class TestSSEDisconnect:
    def test_client_disconnect_mid_stream_leaks_nothing(
        self, make_daemon, client_for
    ):
        first_event = threading.Event()
        release = threading.Event()

        def slow_runner(manager, state):
            state.buffer(StageStarted(stage="slow"))
            first_event.set()
            assert release.wait(timeout=30)
            return {"success": True}

        daemon = make_daemon(runner=slow_runner, workers=1, pool_size=1)
        client = client_for(daemon)
        state = client.submit({"case": "cwebp-jpegdec"})

        # Connect, read one live event, then vanish mid-stream.
        with client.open_events(state["job_id"]) as frames:
            for name, _ in frames:
                if name == "StageStarted":
                    break
        assert first_event.wait(timeout=10)

        # The abandoned stream must not block the job or the event bus.
        release.set()
        final = client.wait(state["job_id"], timeout=30)
        assert final["status"] == STATUS_DONE

        # No session leaked: the warm pool is back to full strength.
        assert _wait_until(lambda: daemon.pool.idle_count() == 1)

        # And the stream is still fully replayable for the next client.
        events = client.stream_events(state["job_id"])
        assert [type(event).__name__ for event in events] == ["StageStarted"]

    def test_many_disconnecting_streamers_never_wedge_the_daemon(
        self, make_daemon, client_for
    ):
        release = threading.Event()

        def slow_runner(manager, state):
            state.buffer(StageStarted(stage="slow"))
            assert release.wait(timeout=30)
            return {"success": True}

        daemon = make_daemon(runner=slow_runner, workers=1)
        client = client_for(daemon)
        state = client.submit({"case": "cwebp-jpegdec"})
        for _ in range(8):
            with client.open_events(state["job_id"]) as frames:
                next(iter(frames))  # read the status frame, then hang up
        release.set()
        assert client.wait(state["job_id"], timeout=30)["status"] == STATUS_DONE


class TestBudgets:
    def test_blown_budget_times_out_and_discards_the_late_result(
        self, make_daemon, client_for
    ):
        release = threading.Event()
        finished = threading.Event()

        def overrunning_runner(manager, state):
            assert release.wait(timeout=30)
            finished.set()
            return {"success": True, "late": True}

        daemon = make_daemon(runner=overrunning_runner, workers=1)
        client = client_for(daemon)
        state = client.submit({"case": "cwebp-jpegdec", "budget_s": 0.3})
        final = client.wait(state["job_id"], timeout=30)
        assert final["status"] == STATUS_TIMEOUT
        assert "budget" in final["error"]

        # Let the worker finish late: first-writer-wins settlement must
        # discard its result — on the wire and in the store.
        release.set()
        assert finished.wait(timeout=10)
        time.sleep(0.2)
        assert client.job(state["job_id"])["status"] == STATUS_TIMEOUT
        stored = daemon.store.results()[state["job_id"]]
        assert stored.status == STATUS_TIMEOUT
        assert stored.record is None

        # The worker is free again for new jobs.
        follow_up = client.submit({"case": "cwebp-jpegdec", "budget_s": 30})
        release.set()
        assert client.wait(follow_up["job_id"], timeout=30)["status"] == STATUS_DONE
