"""Fixtures for the service suite: disposable daemons on free ports."""

from __future__ import annotations

import pytest

from repro.obs import metrics
from repro.service import RepairDaemon, ServiceClient, ServiceConfig


@pytest.fixture
def make_daemon(tmp_path):
    """Factory for daemons bound to a free port over a tmp store.

    Every daemon is stopped on teardown, and the process-wide metrics
    registry (which the daemon enables) is restored to its disabled default
    so the rest of the suite keeps its zero-overhead assumption.
    """
    daemons: list[RepairDaemon] = []

    def factory(runner=None, **overrides) -> RepairDaemon:
        settings = dict(
            store_dir=str(tmp_path / f"service-{len(daemons)}"),
            stores_root=str(tmp_path),
            workers=2,
            pool_size=1,
            keepalive_s=0.2,
        )
        settings.update(overrides)
        daemon = RepairDaemon(ServiceConfig(**settings), runner=runner).start()
        daemons.append(daemon)
        return daemon

    yield factory
    for daemon in daemons:
        daemon.stop()
    metrics.disable()
    metrics.REGISTRY.reset()


@pytest.fixture
def client_for():
    def factory(daemon: RepairDaemon) -> ServiceClient:
        return ServiceClient(daemon.base_url, timeout=10.0)

    return factory
