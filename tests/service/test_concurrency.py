"""Concurrency stress: many clients hammering one live daemon.

The acceptance contract for the service: 32 concurrent submitting clients,
zero lost or duplicated job ids, monotonically consistent status
transitions, and an uncorrupted shared solver cache.  The heavy client
fan-out runs against the stub runner (the HTTP/queue/settlement machinery
is what is under test); one smaller test drives real repairs through the
warm session pool and then audits the shared persistent solver cache
byte-for-byte, the same check as ``tests/campaign/test_cache_hammer.py``.
"""

from __future__ import annotations

import json
import threading

from repro.campaign.store import STATUS_DONE
from repro.core.events import StageFinished, StageStarted
from repro.service import ServiceClient, ServiceError
from repro.service.jobs import STATUS_QUEUED, STATUS_RUNNING, TERMINAL_STATUSES

CLIENTS = 32
JOBS_PER_CLIENT = 4


def stub_runner(manager, state):
    state.buffer(StageStarted(stage="stub"))
    state.buffer(StageFinished(stage="stub", elapsed_s=0.001))
    return {"success": True, "recipient": "stub", "target": "t", "donor": "d"}


def _submit_batch(daemon, count: int, job_ids: list, errors: list) -> None:
    """One client thread: submit ``count`` jobs, retrying through 429s."""
    client = ServiceClient(daemon.base_url, timeout=15.0)
    for _ in range(count):
        while True:
            try:
                state = client.submit({"case": "cwebp-jpegdec"})
            except ServiceError as exc:
                if exc.status == 429:
                    continue  # backpressure is flow control, not failure
                errors.append(exc)
                return
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)
                return
            job_ids.append(state["job_id"])
            break


class TestThirtyTwoClients:
    def test_no_lost_or_duplicated_jobs_under_32_clients(
        self, make_daemon, client_for
    ):
        daemon = make_daemon(runner=stub_runner, workers=4, queue_limit=256)
        job_ids: list[str] = []
        errors: list[Exception] = []
        threads = [
            threading.Thread(
                target=_submit_batch, args=(daemon, JOBS_PER_CLIENT, job_ids, errors)
            )
            for _ in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        expected = CLIENTS * JOBS_PER_CLIENT

        # Zero duplicated ids: every submission minted a distinct job.
        assert len(job_ids) == expected
        assert len(set(job_ids)) == expected

        # Zero lost jobs: every id settles, every settlement is recorded.
        client = client_for(daemon)
        for job_id in job_ids:
            final = client.wait(job_id, timeout=60)
            assert final["status"] == STATUS_DONE
        stored = daemon.store.results()
        assert set(job_ids) <= set(stored)
        assert all(stored[job_id].completed for job_id in job_ids)

        # The daemon's own accounting agrees with the clients'.
        listed = {job["job_id"] for job in client.jobs()}
        assert set(job_ids) == listed

    def test_status_transitions_are_monotonic_for_every_job(self, make_daemon):
        daemon = make_daemon(runner=stub_runner, workers=4, queue_limit=256)
        job_ids: list[str] = []
        errors: list[Exception] = []
        threads = [
            threading.Thread(target=_submit_batch, args=(daemon, 4, job_ids, errors))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        client = ServiceClient(daemon.base_url, timeout=15.0)
        for job_id in job_ids:
            client.wait(job_id, timeout=60)

        # The server-side history is the ground truth for transition order:
        # queued, at most one running, exactly one terminal — in that order.
        for job_id in job_ids:
            history = daemon.manager.job(job_id).history
            assert history[0] == STATUS_QUEUED
            assert history[-1] in TERMINAL_STATUSES
            middle = history[1:-1]
            assert middle in ([], [STATUS_RUNNING])
            assert sum(1 for status in history if status in TERMINAL_STATUSES) == 1


class TestRealJobsShareTheCacheSafely:
    def test_parallel_real_repairs_leave_the_solver_cache_uncorrupted(
        self, make_daemon, client_for
    ):
        daemon = make_daemon(workers=2, pool_size=2, queue_limit=32)
        client = client_for(daemon)
        submitted = [
            client.submit(
                {"case": "cwebp-jpegdec", "donor": donor, "budget_s": 120}
            )["job_id"]
            for donor in ("feh", "mtpaint")
            for _ in range(2)
        ]
        for job_id in submitted:
            final = client.wait(job_id, timeout=180)
            assert final["status"] == STATUS_DONE
            assert final["success"] is True

        # The hammer check: every line of the shared persistent cache must
        # parse — concurrent writers may interleave entries, never bytes.
        cache_path = daemon.store.cache_path
        assert cache_path.exists()
        keys = set()
        for line in cache_path.read_text().splitlines():
            entry = json.loads(line)  # raises on interleaved bytes
            keys.add(entry["k"])
        assert keys  # the repairs actually exercised the shared cache

        # Warm-pool payoff: later duplicate jobs hit the shared verdicts.
        stats = daemon.pool.solver_statistics()
        assert stats["queries"] > 0
        assert stats["cache_hits"] + stats["persistent_cache_hits"] > 0
