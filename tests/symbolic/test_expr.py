"""Unit tests for the symbolic expression IR."""

import pytest

from repro.symbolic import (
    Binary,
    Concat,
    Constant,
    ExprError,
    Extend,
    Extract,
    InputField,
    Kind,
    Unary,
    builder,
    operation_count,
)


class TestConstant:
    def test_value_is_masked_to_width(self):
        assert Constant(width=8, value=0x1FF).value == 0xFF

    def test_signed_value_interprets_twos_complement(self):
        assert Constant(width=8, value=0xFF).signed_value == -1
        assert Constant(width=8, value=0x7F).signed_value == 127

    def test_zero_width_rejected(self):
        with pytest.raises(ExprError):
            Constant(width=0, value=1)


class TestInputField:
    def test_requires_path(self):
        with pytest.raises(ExprError):
            InputField(width=16, path="")

    def test_fields_returns_own_path(self):
        field = builder.input_field("/a/b", 16)
        assert field.fields() == frozenset({"/a/b"})


class TestWidthChecking:
    def test_binary_operand_width_mismatch_rejected(self):
        with pytest.raises(ExprError):
            Binary(width=8, op=Kind.ADD, left=Constant(8, 1), right=Constant(16, 1))

    def test_comparison_must_have_width_one(self):
        with pytest.raises(ExprError):
            Binary(width=8, op=Kind.ULT, left=Constant(8, 1), right=Constant(8, 2))

    def test_extract_bounds_checked(self):
        with pytest.raises(ExprError):
            Extract(width=8, operand=Constant(8, 0), hi=9, lo=2)

    def test_extend_cannot_narrow(self):
        with pytest.raises(ExprError):
            Extend(width=8, operand=Constant(16, 0), signed=False)

    def test_concat_width_must_be_sum(self):
        with pytest.raises(ExprError):
            Concat(width=15, parts=(Constant(8, 0), Constant(8, 0)))

    def test_logical_not_requires_boolean(self):
        with pytest.raises(ExprError):
            Unary(width=8, op=Kind.LOGICAL_NOT, operand=Constant(8, 0))


class TestStructure:
    def test_walk_visits_every_node(self):
        expr = builder.add(builder.input_field("/x", 8), builder.const(1, 8))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["Binary", "InputField", "Constant"]

    def test_op_count_ignores_leaves(self):
        expr = builder.mul(builder.input_field("/x", 8), builder.input_field("/y", 8))
        assert operation_count(expr) == 1
        assert expr.op_count() == 1

    def test_depth(self):
        x = builder.input_field("/x", 8)
        assert x.depth() == 1
        assert builder.add(x, 1).depth() == 2

    def test_fields_collects_all_paths(self):
        expr = builder.mul(builder.input_field("/a", 8), builder.input_field("/b", 8))
        assert expr.fields() == frozenset({"/a", "/b"})

    def test_structural_equality(self):
        first = builder.add(builder.input_field("/x", 8), 1)
        second = builder.add(builder.input_field("/x", 8), 1)
        assert first == second
        assert hash(first) == hash(second)


class TestKindProperties:
    @pytest.mark.parametrize("kind", [Kind.EQ, Kind.ULT, Kind.SGE, Kind.NE])
    def test_comparisons_flagged(self, kind):
        assert kind.is_comparison

    @pytest.mark.parametrize("kind", [Kind.ADD, Kind.MUL, Kind.XOR])
    def test_commutative(self, kind):
        assert kind.is_commutative

    @pytest.mark.parametrize("kind", [Kind.SUB, Kind.SHL, Kind.UDIV])
    def test_not_commutative(self, kind):
        assert not kind.is_commutative

    @pytest.mark.parametrize("kind", [Kind.SDIV, Kind.ASHR, Kind.SLT])
    def test_signed(self, kind):
        assert kind.is_signed
