"""Unit tests for concrete evaluation of symbolic expressions."""

import pytest

from repro.symbolic import EvaluationError, builder, evaluate
from repro.symbolic.evaluate import to_signed, to_unsigned


X = builder.input_field("/x", 8)
Y = builder.input_field("/y", 8)


def ev(expr, **env):
    return evaluate(expr, {f"/{k}": v for k, v in env.items()})


class TestArithmetic:
    def test_add_wraps(self):
        assert ev(builder.add(X, Y), x=200, y=100) == (300 & 0xFF)

    def test_sub_wraps(self):
        assert ev(builder.sub(X, Y), x=1, y=2) == 0xFF

    def test_mul_wraps(self):
        assert ev(builder.mul(X, Y), x=16, y=16) == 0

    def test_udiv(self):
        assert ev(builder.udiv(X, Y), x=100, y=7) == 14

    def test_udiv_by_zero_is_all_ones(self):
        assert ev(builder.udiv(X, Y), x=5, y=0) == 0xFF

    def test_urem(self):
        assert ev(builder.urem(X, Y), x=100, y=7) == 2

    def test_sdiv_truncates_toward_zero(self):
        assert to_signed(ev(builder.sdiv(X, Y), x=0xF9, y=2), 8) == -3  # -7 / 2

    def test_srem_sign_follows_dividend(self):
        assert to_signed(ev(builder.srem(X, Y), x=0xF9, y=2), 8) == -1


class TestBitwise:
    def test_and_or_xor(self):
        assert ev(builder.bvand(X, Y), x=0b1100, y=0b1010) == 0b1000
        assert ev(builder.bvor(X, Y), x=0b1100, y=0b1010) == 0b1110
        assert ev(builder.bvxor(X, Y), x=0b1100, y=0b1010) == 0b0110

    def test_shl_overshift_is_zero(self):
        assert ev(builder.shl(X, 9), x=0xFF) == 0

    def test_lshr(self):
        assert ev(builder.lshr(X, 4), x=0xF0) == 0x0F

    def test_ashr_replicates_sign(self):
        assert ev(builder.ashr(X, 4), x=0x80) == 0xF8

    def test_not_neg(self):
        assert ev(builder.bvnot(X), x=0x0F) == 0xF0
        assert ev(builder.neg(X), x=1) == 0xFF


class TestComparisons:
    def test_unsigned_vs_signed_less(self):
        assert ev(builder.ult(X, Y), x=0x80, y=0x01) == 0
        assert ev(builder.slt(X, Y), x=0x80, y=0x01) == 1  # -128 < 1

    @pytest.mark.parametrize(
        "make,expected",
        [
            (builder.eq, 0),
            (builder.ne, 1),
            (builder.ule, 1),
            (builder.uge, 0),
            (builder.ugt, 0),
            (builder.ult, 1),
        ],
    )
    def test_comparison_table(self, make, expected):
        assert ev(make(X, Y), x=3, y=5) == expected


class TestStructuralNodes:
    def test_extract(self):
        field = builder.input_field("/w", 16)
        assert evaluate(builder.extract(field, 15, 8), {"/w": 0xABCD}) == 0xAB
        assert evaluate(builder.extract(field, 7, 0), {"/w": 0xABCD}) == 0xCD

    def test_concat(self):
        hi, lo = builder.const(0xAB, 8), builder.const(0xCD, 8)
        assert evaluate(builder.concat(hi, lo), {}) == 0xABCD

    def test_zext_sext(self):
        assert ev(builder.zext(X, 16), x=0xFF) == 0x00FF
        assert ev(builder.sext(X, 16), x=0xFF) == 0xFFFF

    def test_ite(self):
        cond = builder.ult(X, Y)
        expr = builder.ite(cond, builder.const(1, 8), builder.const(2, 8))
        assert ev(expr, x=1, y=5) == 1
        assert ev(expr, x=9, y=5) == 2

    def test_boolean_connectives(self):
        a, b = builder.is_nonzero(X), builder.is_nonzero(Y)
        assert ev(builder.logical_and(a, b), x=1, y=0) == 0
        assert ev(builder.logical_or(a, b), x=1, y=0) == 1
        assert ev(builder.logical_not(a), x=0) == 1


class TestErrors:
    def test_missing_field_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(X, {})

    def test_to_signed_to_unsigned_roundtrip(self):
        assert to_signed(0xFF, 8) == -1
        assert to_unsigned(-1, 8) == 0xFF
