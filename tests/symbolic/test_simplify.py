"""Unit tests for the simplifier, including the literal Figure 5 rules."""

from repro.symbolic import (
    Constant,
    InputField,
    SimplifyOptions,
    apply_figure5_rule,
    builder,
    operation_count,
    simplify,
)


W = builder.input_field("/sof/width", 16)
H = builder.input_field("/sof/height", 16)


class TestByteDisentanglement:
    def test_big_endian_assembly_collapses_to_field(self):
        hi = builder.extract(W, 15, 8)
        lo = builder.extract(W, 7, 0)
        assembled = builder.bvor(builder.shl(builder.zext(hi, 16), 8), builder.zext(lo, 16))
        assert simplify(assembled) == W

    def test_little_endian_assembly_collapses_to_field(self):
        hi = builder.extract(W, 15, 8)
        lo = builder.extract(W, 7, 0)
        assembled = builder.bvor(builder.zext(lo, 16), builder.shl(builder.zext(hi, 16), 8))
        assert simplify(assembled) == W

    def test_four_byte_big_endian_assembly(self):
        field = builder.input_field("/ihdr/width", 32)
        parts = [builder.extract(field, 31 - 8 * i, 24 - 8 * i) for i in range(4)]
        assembled = builder.const(0, 32)
        for index, part in enumerate(parts):
            assembled = builder.bvor(
                assembled, builder.shl(builder.zext(part, 32), 8 * (3 - index))
            )
        assert simplify(assembled) == field

    def test_mask_then_extract_collapses_to_byte(self):
        masked_byte = builder.extract(builder.bvand(W, 0xFF), 7, 0)
        assert simplify(masked_byte) == builder.extract(W, 7, 0)

    def test_mask_alone_is_not_made_larger(self):
        masked = builder.bvand(W, 0xFF)
        # Already minimal (1 operation); the simplifier must not expand it
        # into a larger extract/extend form.
        assert simplify(masked).op_count() <= masked.op_count()

    def test_zext_of_assembled_field(self):
        hi = builder.extract(W, 15, 8)
        lo = builder.extract(W, 7, 0)
        assembled = builder.bvor(builder.shl(builder.zext(hi, 32), 8), builder.zext(lo, 32))
        assert simplify(assembled) == builder.zext(W, 32)


class TestConstantFolding:
    def test_folds_constant_subtrees(self):
        expr = builder.mul(builder.const(6, 32), builder.const(7, 32))
        assert simplify(expr) == builder.const(42, 32)

    def test_identity_elements(self):
        assert simplify(builder.add(W, 0)) == W
        assert simplify(builder.mul(W, 1)) == W
        assert simplify(builder.bvor(W, 0)) == W
        assert simplify(builder.bvand(W, 0xFFFF)) == W
        assert simplify(builder.shl(W, 0)) == W

    def test_absorbing_elements(self):
        assert simplify(builder.mul(W, 0)) == builder.const(0, 16)
        assert simplify(builder.bvand(W, 0)) == builder.const(0, 16)

    def test_tautological_comparison(self):
        assert simplify(builder.ule(W, 0xFFFF)) == builder.true()
        assert simplify(builder.uge(W, 0)) == builder.true()

    def test_double_logical_not(self):
        cond = builder.ult(W, H)
        assert simplify(builder.logical_not(builder.logical_not(cond))) == simplify(cond)

    def test_not_of_comparison_negates(self):
        assert simplify(builder.logical_not(builder.ule(W, H))) == builder.ugt(W, H)

    def test_bool_int_roundtrip_unwrapped(self):
        cond = builder.ult(W, H)
        wrapped = builder.ne(builder.zext(cond, 32), builder.const(0, 32))
        assert simplify(wrapped) == cond


class TestOptions:
    def test_disabled_simplifier_is_identity(self):
        hi = builder.extract(W, 15, 8)
        assembled = builder.bvor(builder.shl(builder.zext(hi, 16), 8), builder.zext(builder.extract(W, 7, 0), 16))
        options = SimplifyOptions.none()
        assert simplify(assembled, options) == assembled

    def test_bit_slicing_ablation_keeps_larger_expression(self):
        hi = builder.extract(W, 15, 8)
        lo = builder.extract(W, 7, 0)
        assembled = builder.bvor(builder.shl(builder.zext(hi, 16), 8), builder.zext(lo, 16))
        without = simplify(assembled, SimplifyOptions.without_bit_slicing())
        with_rules = simplify(assembled)
        assert operation_count(with_rules) < operation_count(without)


class TestFigure5Rules:
    """The four rules exactly as stated in the paper's Figure 5."""

    def _pair(self):
        b1 = builder.input_field("/b1", 8)
        b2 = builder.input_field("/b2", 8)
        return b1, b2, builder.concat(b1, b2)

    def test_shrink_high_of_shl(self):
        b1, b2, pair = self._pair()
        expr = builder.extract_high(builder.shl(pair, 8), 8)
        assert apply_figure5_rule(expr) == b2

    def test_shrink_low_of_shr(self):
        b1, b2, pair = self._pair()
        expr = builder.extract_low(builder.lshr(pair, 8), 8)
        assert apply_figure5_rule(expr) == b1

    def test_bvor_high_of_shr(self):
        b1 = builder.input_field("/b1", 8)
        b2 = builder.input_field("/b2", 8)
        b3 = builder.input_field("/b3", 8)
        pair = builder.concat(b2, b3)
        expr = builder.bvor(
            builder.shl(builder.zext(b1, 16), 8), builder.lshr(pair, 8)
        )
        assert apply_figure5_rule(expr) == builder.concat(b1, b2)

    def test_bvor_low_of_shl(self):
        b1 = builder.input_field("/b1", 8)
        b2 = builder.input_field("/b2", 8)
        b3 = builder.input_field("/b3", 8)
        pair = builder.concat(b2, b3)
        expr = builder.bvor(builder.zext(b1, 16), builder.shl(pair, 8))
        assert apply_figure5_rule(expr) == builder.concat(b3, b1)

    def test_no_rule_for_unified_operands(self):
        # The paper notes the rules require the operand to be a concatenation
        # of independent bytes, not e.g. the result of an addition.
        unified = builder.add(builder.input_field("/v", 16), 1)
        expr = builder.extract_high(builder.shl(unified, 8), 8)
        assert apply_figure5_rule(expr) is None
