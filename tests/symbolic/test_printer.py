"""Tests for the expression renderers and metrics."""

from repro.symbolic import (
    CheckSize,
    builder,
    c_type_for_width,
    comparison_count,
    arithmetic_count,
    field_reference_count,
    leaf_count,
    operation_count,
    size_reduction,
    to_c_string,
    to_paper_string,
)


W = builder.input_field("/sof/width", 16)
H = builder.input_field("/sof/height", 16)
FEH_CHECK = builder.ule(builder.mul(builder.zext(W, 64), builder.zext(H, 64)), (1 << 29) - 1)


class TestPaperPrinter:
    def test_constant_and_field(self):
        assert to_paper_string(builder.const(3, 8)) == "Constant(3)"
        assert to_paper_string(builder.const(0x1FFF, 16)) == "Constant(0x1fff)"
        assert to_paper_string(W) == "HachField(16,'/sof/width')"

    def test_operator_names_match_paper_vocabulary(self):
        rendered = to_paper_string(FEH_CHECK)
        assert rendered.startswith("ULessEqual(64,")
        assert "Mul(64," in rendered
        assert "ToSize(64," in rendered

    def test_shrink_rendering(self):
        assert to_paper_string(builder.shrink(W, 8)) == "Shrink(8,HachField(16,'/sof/width'))"


class TestCPrinter:
    def test_c_rendering_of_the_feh_check(self):
        rendered = to_c_string(FEH_CHECK)
        assert "unsigned long long" in rendered
        assert "536870911" in rendered
        assert "/sof/width" in rendered

    def test_name_substitution(self):
        rendered = to_c_string(FEH_CHECK, name_for_field=lambda p: p.split("/")[-1])
        assert "width" in rendered and "/sof/" not in rendered

    def test_c_type_for_width(self):
        assert c_type_for_width(8) == "unsigned char"
        assert c_type_for_width(64) == "unsigned long long"
        assert c_type_for_width(32, signed=True) == "int"
        assert c_type_for_width(24) == "unsigned int"


class TestMetrics:
    def test_operation_and_leaf_counts(self):
        assert operation_count(FEH_CHECK) == 4  # ule, mul, two zext
        assert leaf_count(FEH_CHECK) == 3       # two fields + constant
        assert field_reference_count(FEH_CHECK) == 2

    def test_comparison_and_arithmetic_counts(self):
        assert comparison_count(FEH_CHECK) == 1
        assert arithmetic_count(FEH_CHECK) == 1

    def test_check_size(self):
        size = size_reduction(FEH_CHECK, builder.ule(builder.zext(W, 32), 100))
        assert isinstance(size, CheckSize)
        assert size.excised_ops == 4
        assert size.translated_ops == 2
        assert size.reduction_factor == 2.0
        assert str(size) == "4 -> 2"
