"""Property-based tests: the simplifier preserves semantics."""

from hypothesis import given, settings, strategies as st

from repro.symbolic import SimplifyOptions, builder, evaluate, simplify
from repro.symbolic.expr import Expr


FIELDS = {"/p/a": 8, "/p/b": 16, "/p/c": 32}


@st.composite
def expressions(draw, depth: int = 3) -> Expr:
    """Random well-formed expressions over three input fields."""
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            width = draw(st.sampled_from([8, 16, 32]))
            return builder.const(draw(st.integers(0, (1 << width) - 1)), width)
        path = draw(st.sampled_from(sorted(FIELDS)))
        return builder.input_field(path, FIELDS[path])

    kind = draw(st.integers(0, 8))
    left = draw(expressions(depth=depth - 1))
    if kind == 0:
        return builder.zext(left, min(left.width * 2, 64))
    if kind == 1:
        return builder.sext(left, min(left.width * 2, 64))
    if kind == 2 and left.width > 1:
        hi = draw(st.integers(0, left.width - 1))
        lo = draw(st.integers(0, hi))
        return builder.extract(left, hi, lo)
    right = draw(expressions(depth=depth - 1))
    operation = draw(
        st.sampled_from(
            [
                builder.add,
                builder.sub,
                builder.mul,
                builder.bvand,
                builder.bvor,
                builder.bvxor,
                builder.udiv,
                builder.urem,
            ]
        )
    )
    return operation(left, right)


@st.composite
def environments(draw) -> dict:
    return {
        path: draw(st.integers(0, (1 << width) - 1)) for path, width in FIELDS.items()
    }


@given(expressions(), environments())
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_value(expr, env):
    assert evaluate(simplify(expr), env) == evaluate(expr, env)


@given(expressions(), environments())
@settings(max_examples=75, deadline=None)
def test_simplify_without_bit_slicing_preserves_value(expr, env):
    options = SimplifyOptions.without_bit_slicing()
    assert evaluate(simplify(expr, options), env) == evaluate(expr, env)


@given(expressions())
@settings(max_examples=75, deadline=None)
def test_simplify_never_grows_expressions(expr):
    assert simplify(expr).op_count() <= expr.op_count()


@given(expressions(), environments())
@settings(max_examples=75, deadline=None)
def test_simplify_is_idempotent_in_value(expr, env):
    once = simplify(expr)
    twice = simplify(once)
    assert evaluate(twice, env) == evaluate(once, env)


@given(environments())
@settings(max_examples=50, deadline=None)
def test_byte_assembly_always_equals_field(env):
    field = builder.input_field("/p/b", 16)
    hi = builder.extract(field, 15, 8)
    lo = builder.extract(field, 7, 0)
    assembled = builder.bvor(builder.shl(builder.zext(hi, 16), 8), builder.zext(lo, 16))
    assert evaluate(assembled, env) == evaluate(field, env)
    assert simplify(assembled) == field
