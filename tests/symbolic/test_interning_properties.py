"""Property-based tests for the hash-consed expression IR.

The interning invariants the rest of the pipeline relies on:

* structurally equal trees — built through any :mod:`repro.symbolic.builder`
  path or the dataclass constructors directly — are the *same object*;
* memoised ``simplify``/``evaluate`` agree with their un-memoised reference
  implementations (``simplify_reference``/``evaluate_tree``);
* precomputed metrics equal what a full tree walk computes;
* digests are structural (equal iff the same node) and pickling re-interns.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.symbolic import (
    Binary,
    Constant,
    InputField,
    Kind,
    SimplifyOptions,
    builder,
    evaluate,
    evaluate_tree,
    simplify,
    simplify_reference,
)
from repro.symbolic.expr import Expr


FIELDS = {"/p/a": 8, "/p/b": 16, "/p/c": 32}


@st.composite
def expressions(draw, depth: int = 3) -> Expr:
    """Random well-formed expressions over three input fields."""
    if depth == 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 3))
        if choice == 0:
            width = draw(st.sampled_from([8, 16, 32]))
            return builder.const(draw(st.integers(0, (1 << width) - 1)), width)
        path = draw(st.sampled_from(sorted(FIELDS)))
        return builder.input_field(path, FIELDS[path])

    kind = draw(st.integers(0, 8))
    left = draw(expressions(depth=depth - 1))
    if kind == 0:
        return builder.zext(left, min(left.width * 2, 64))
    if kind == 1:
        return builder.sext(left, min(left.width * 2, 64))
    if kind == 2 and left.width > 1:
        hi = draw(st.integers(0, left.width - 1))
        lo = draw(st.integers(0, hi))
        return builder.extract(left, hi, lo)
    right = draw(expressions(depth=depth - 1))
    operation = draw(
        st.sampled_from(
            [
                builder.add,
                builder.sub,
                builder.mul,
                builder.bvand,
                builder.bvor,
                builder.bvxor,
                builder.udiv,
                builder.urem,
            ]
        )
    )
    return operation(left, right)


@st.composite
def environments(draw) -> dict:
    return {
        path: draw(st.integers(0, (1 << width) - 1)) for path, width in FIELDS.items()
    }


def _rebuild_via_constructors(expr: Expr) -> Expr:
    """Recreate ``expr`` bottom-up through the raw dataclass constructors."""
    children = tuple(_rebuild_via_constructors(child) for child in expr.children())
    if not children:
        return type(expr)(
            **{
                name: getattr(expr, name)
                for name in ("width", "value", "path")
                if hasattr(expr, name)
            }
        )
    import dataclasses

    kwargs = {}
    child_iter = iter(children)
    for f in dataclasses.fields(type(expr)):
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            kwargs[f.name] = next(child_iter)
        elif isinstance(value, tuple) and value and isinstance(value[0], Expr):
            kwargs[f.name] = children
        else:
            kwargs[f.name] = value
    return type(expr)(**kwargs)


# -- canonicality --------------------------------------------------------------------


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_equal_trees_are_the_same_object(expr):
    assert _rebuild_via_constructors(expr) is expr


def test_builder_and_constructor_paths_intern_to_one_node():
    x = builder.input_field("/p/a", 8)
    via_builder = builder.add(x, 1)
    via_constructor = Binary(
        width=8, op=Kind.ADD, left=InputField(width=8, path="/p/a"), right=Constant(width=8, value=1)
    )
    assert via_builder is via_constructor


def test_equality_and_hash_are_identity_consistent():
    first = builder.mul(builder.input_field("/p/b", 16), 3)
    second = builder.mul(builder.input_field("/p/b", 16), 3)
    assert first is second
    assert first == second
    assert hash(first) == hash(second)
    other = builder.mul(builder.input_field("/p/b", 16), 4)
    assert first is not other
    assert first != other


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_pickle_roundtrip_reinterns(expr):
    assert pickle.loads(pickle.dumps(expr)) is expr


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_digest_is_structural(expr):
    clone = _rebuild_via_constructors(expr)
    assert clone.digest == expr.digest
    # A digest is a hex SHA-1: constant length regardless of tree size.
    assert len(expr.digest) == 40


def test_digests_differ_for_different_nodes():
    a = builder.add(builder.input_field("/p/a", 8), 1)
    b = builder.add(builder.input_field("/p/a", 8), 2)
    c = builder.const(1, 8)
    d = builder.const(1, 16)  # same value, different width
    digests = {a.digest, b.digest, c.digest, d.digest}
    assert len(digests) == 4


# -- memoised passes agree with references -------------------------------------------


@given(expressions(), environments())
@settings(max_examples=150, deadline=None)
def test_memoized_evaluate_agrees_with_tree_reference(expr, env):
    assert evaluate(expr, env) == evaluate_tree(expr, env)


@given(expressions())
@settings(max_examples=150, deadline=None)
def test_memoized_simplify_agrees_with_reference(expr):
    assert simplify(expr) is simplify_reference(expr)


@given(expressions())
@settings(max_examples=75, deadline=None)
def test_memoized_simplify_agrees_with_reference_without_bit_slicing(expr):
    options = SimplifyOptions.without_bit_slicing()
    assert simplify(expr, options) is simplify_reference(expr, options)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_precomputed_metrics_match_tree_walk(expr):
    nodes = list(expr.walk())
    assert expr.size == len(nodes)
    assert expr.op_count() == sum(
        1 for node in nodes if not isinstance(node, (Constant, InputField))
    )
    assert expr._leaf_count == sum(
        1 for node in nodes if isinstance(node, (Constant, InputField))
    )

    def tree_depth(node):
        kids = node.children()
        return 1 + (max(tree_depth(k) for k in kids) if kids else 0)

    assert expr.depth() == tree_depth(expr)


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_walk_unique_visits_each_node_once(expr):
    unique = list(expr.walk_unique())
    assert len(unique) == len({id(node) for node in unique})
    assert {id(node) for node in unique} == {id(node) for node in expr.walk()}


def test_shared_subtree_walk_unique_is_smaller():
    shared = builder.mul(builder.input_field("/p/c", 32), builder.input_field("/p/c", 32))
    expr = shared
    for _ in range(8):
        expr = builder.add(expr, expr)
    # The tree doubles at every level; the DAG grows by one node.
    assert expr.size == (1 << 8) * shared.size + (1 << 8) - 1
    assert len(list(expr.walk_unique())) == len(list(shared.walk_unique())) + 8
