"""Service request schemas: JSON payloads in, validated job specs out.

The daemon accepts the same job vocabulary the campaign layer plans with —
a *transfer* (one ``(case, donor)`` repair with a strategy and option
overrides) or a *matrix* (explicit transfer list crossed with strategies
and variants) — and reuses the campaign validators so a payload the service
accepts is exactly a payload ``codephage campaign``/``matrix`` would have
planned: strategy names go through
:func:`~repro.campaign.plan._validated_strategies`, variants/overrides
through :func:`~repro.campaign.plan._validated_variants`, and the expansion
itself through :func:`~repro.campaign.plan.matrix_plan`.  Validation errors
surface as :class:`RequestError` with the HTTP status the handler should
return (400 for malformed payloads, 413 for payloads exceeding the
admission caps).

Job identity
------------

Campaign job ids are content-addressed (identical jobs coalesce on
resume); service submissions are *requests*, and two clients POSTing the
same transfer must get two jobs with two observable event streams.  The
service therefore mints ``svc-<sequence>-<spec hash>`` ids — the sequence
makes every submission unique (and totally ordered), the embedded
:attr:`~repro.campaign.plan.JobSpec.job_id` hash keeps the semantic
identity visible for cross-referencing with campaign stores.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..campaign.plan import CampaignPlan, JobSpec, PlanError, matrix_plan
from ..experiments import ERROR_CASES


class RequestError(ValueError):
    """A rejected submission, carrying the HTTP status to answer with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


#: Submission kinds accepted by ``POST /v1/jobs``.
KIND_TRANSFER = "transfer"
KIND_MATRIX = "matrix"

#: Admission cap: a matrix submission may expand to at most this many
#: transfers — one service job runs its whole matrix on one worker thread,
#: so an unbounded matrix would monopolise the pool (413 when exceeded).
MAX_MATRIX_TRANSFERS = 64


@dataclass(frozen=True)
class JobSubmission:
    """One validated submission: the plan to run plus its service budget."""

    kind: str
    plan: CampaignPlan
    budget_s: float

    @property
    def specs(self) -> tuple[JobSpec, ...]:
        return self.plan.jobs

    def describe(self) -> str:
        if self.kind == KIND_TRANSFER:
            return self.plan.jobs[0].describe()
        return f"matrix of {len(self.plan.jobs)} transfers"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "budget_s": self.budget_s,
            "transfers": [spec.to_dict() for spec in self.plan.jobs],
        }


def _require_mapping(payload: object) -> Mapping:
    if not isinstance(payload, Mapping):
        raise RequestError("request body must be a JSON object")
    return payload


def _parse_budget(
    payload: Mapping, default_budget_s: float, max_budget_s: float
) -> float:
    budget = payload.get("budget_s", default_budget_s)
    if not isinstance(budget, (int, float)) or isinstance(budget, bool) or budget <= 0:
        raise RequestError("budget_s must be a positive number of seconds")
    if budget > max_budget_s:
        raise RequestError(
            f"budget_s {budget} exceeds the service cap of {max_budget_s}s",
            status=413,
        )
    return float(budget)


def _validated_case_donor(case_id: object, donor: object) -> tuple[str, str]:
    if not isinstance(case_id, str) or not case_id:
        raise RequestError("transfer requires a 'case' (error-case id)")
    case = ERROR_CASES.get(case_id)
    if case is None:
        raise RequestError(
            f"unknown error case {case_id!r}; known cases: "
            + ", ".join(sorted(ERROR_CASES))
        )
    if donor is None:
        donor = case.donors[0]
    if not isinstance(donor, str) or donor not in case.donors:
        raise RequestError(
            f"donor {donor!r} is not listed for case {case_id!r}; "
            "expected one of " + ", ".join(case.donors)
        )
    return case_id, donor


def parse_submission(
    payload: object,
    default_budget_s: float = 30.0,
    max_budget_s: float = 300.0,
) -> JobSubmission:
    """Validate a ``POST /v1/jobs`` body into a :class:`JobSubmission`.

    Transfer payload::

        {"kind": "transfer", "case": "cwebp-jpegdec", "donor": "feh",
         "strategy": "exit", "overrides": {"backend": "cdcl"},
         "budget_s": 20}

    Matrix payload::

        {"kind": "matrix", "transfers": [["cwebp-jpegdec", "feh"], ...],
         "strategies": ["exit"], "variants": {"fast": {"sample_count": 4}}}

    Everything after the shape checks is delegated to
    :func:`~repro.campaign.plan.matrix_plan`, so strategy, variant, policy
    and backend validation — and their error messages — are identical to
    the campaign CLI's.
    """
    payload = _require_mapping(payload)
    kind = payload.get("kind", KIND_TRANSFER)
    if kind not in (KIND_TRANSFER, KIND_MATRIX):
        raise RequestError(
            f"unknown job kind {kind!r}; expected {KIND_TRANSFER!r} or {KIND_MATRIX!r}"
        )
    budget_s = _parse_budget(payload, default_budget_s, max_budget_s)

    if kind == KIND_TRANSFER:
        case_id, donor = _validated_case_donor(
            payload.get("case"), payload.get("donor")
        )
        strategy = payload.get("strategy")
        overrides = payload.get("overrides") or {}
        if not isinstance(overrides, Mapping):
            raise RequestError("overrides must be a JSON object")
        try:
            plan = matrix_plan(
                [(case_id, donor)],
                strategies=[strategy] if strategy is not None else None,
                variants={"service": dict(overrides)} if overrides else None,
                name="service-transfer",
            )
        except PlanError as exc:
            raise RequestError(str(exc)) from None
        return JobSubmission(kind=KIND_TRANSFER, plan=plan, budget_s=budget_s)

    transfers = payload.get("transfers")
    if not isinstance(transfers, (list, tuple)) or not transfers:
        raise RequestError("matrix requires a non-empty 'transfers' list")
    pairs = []
    for entry in transfers:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise RequestError(
                "each matrix transfer must be a [case, donor] pair"
            )
        pairs.append(_validated_case_donor(entry[0], entry[1]))
    variants = payload.get("variants")
    if variants is not None and not isinstance(variants, Mapping):
        raise RequestError("variants must be a JSON object of override objects")
    strategies = payload.get("strategies")
    if strategies is not None and not isinstance(strategies, (list, tuple)):
        raise RequestError("strategies must be a JSON list of strategy names")
    try:
        plan = matrix_plan(
            pairs,
            strategies=strategies,
            variants=variants,
            name="service-matrix",
        )
    except PlanError as exc:
        raise RequestError(str(exc)) from None
    if len(plan.jobs) > MAX_MATRIX_TRANSFERS:
        raise RequestError(
            f"matrix expands to {len(plan.jobs)} transfers, above the "
            f"service cap of {MAX_MATRIX_TRANSFERS}",
            status=413,
        )
    return JobSubmission(kind=KIND_MATRIX, plan=plan, budget_s=budget_s)


@dataclass
class JobIdMinter:
    """Thread-safe allocator of unique, ordered service job ids."""

    _counter: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def mint(self, submission: JobSubmission) -> str:
        with self._lock:
            sequence = next(self._counter)
        return f"svc-{sequence:06d}-{submission.plan.jobs[0].job_id}"


def default_donor(case_id: str) -> Optional[str]:
    """The first listed donor for a known case (None for unknown cases)."""
    case = ERROR_CASES.get(case_id)
    return case.donors[0] if case and case.donors else None
