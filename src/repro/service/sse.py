"""SSE stream assembly for ``GET /v1/jobs/<id>/events``.

Pipeline events use the wire framing from :mod:`repro.core.events`
(``event: <registry tag>`` + compact JSON ``data:``), so the stream a
client replays with :func:`repro.core.events.events_from_sse` is exactly
the event sequence the store persisted.  Around those frames the service
adds control traffic that deliberately stays *outside* the pipeline event
registry, so event parsers skip it by construction:

* a ``status`` frame first (the job's current state dict), so a client
  connecting late knows what it attached to;
* ``: keep-alive`` comment lines while the job is idle, so proxies and
  clients can distinguish a slow job from a dead connection;
* an ``end`` frame last, carrying the terminal status — the one signal a
  client needs to stop reading.

The generator reads only the job's :class:`~repro.service.jobs.EventBuffer`
— never the session or its bus — so a client disconnecting mid-stream
(``BrokenPipeError`` on write) tears down nothing but its own generator.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterator

from ..core.events import event_to_sse, events_from_sse  # noqa: F401  (re-export)
from .jobs import JobState


def control_frame(name: str, payload: dict) -> str:
    """A non-pipeline frame (``status``/``end``); skipped by event parsers."""
    data = json.dumps(payload, separators=(",", ":"))
    return f"event: {name}\ndata: {data}\n\n"


def keepalive_comment() -> str:
    return ": keep-alive\n\n"


def job_stream(state: JobState, keepalive_s: float = 5.0) -> Iterator[str]:
    """Yield the SSE chunks for one job, from its start to its end frame.

    Replays the buffer from index 0 (a late subscriber sees the full
    history — the acceptance contract is that the streamed sequence equals
    the persisted one), then follows the live buffer until the job settles.
    """
    yield control_frame("status", state.as_dict())
    index = 0
    while True:
        items, closed = state.buffer.wait(index, timeout=keepalive_s)
        for payload in items:
            frame_id = index
            index += 1
            data = json.dumps(payload, separators=(",", ":"))
            yield (
                f"id: {frame_id}\nevent: {payload['event']}\ndata: {data}\n\n"
            )
        if closed and index >= len(state.buffer):
            break
        if not items:
            yield keepalive_comment()
    # The buffer closes at the start of settlement; the public status flips
    # at its end.  Give the flip a moment so the end frame carries the
    # terminal status rather than a stale "running".
    for _ in range(100):
        if state.terminal:
            break
        time.sleep(0.01)
    yield control_frame("end", state.as_dict())


# -- client-side incremental parsing -----------------------------------------------------


def iter_frames(stream: IO[bytes]) -> Iterator[str]:
    """Yield complete SSE frames (sans trailing blank line) from a socket file.

    Reads line-wise so a slow producer yields frames as they complete;
    returns when the server closes the connection.  Comment-only frames
    (keep-alives) are skipped.
    """
    lines: list[str] = []
    while True:
        raw = stream.readline()
        if not raw:
            return
        line = raw.decode("utf-8").rstrip("\r\n")
        if line:
            lines.append(line)
            continue
        frame = "\n".join(lines)
        lines = []
        if frame and not all(entry.startswith(":") for entry in frame.split("\n")):
            yield frame


def frame_event_name(frame: str) -> str:
    """The ``event:`` field of a frame ("" when absent)."""
    for line in frame.split("\n"):
        if line.startswith("event:"):
            return line.partition(":")[2].strip()
    return ""


def frame_data(frame: str) -> dict:
    """The JSON payload of a frame's ``data:`` lines."""
    chunks = []
    for line in frame.split("\n"):
        if line.startswith("data:"):
            value = line.partition(":")[2]
            chunks.append(value[1:] if value.startswith(" ") else value)
    return json.loads("\n".join(chunks)) if chunks else {}
