"""The repair daemon: a stdlib ``ThreadingHTTPServer`` over the facade.

Endpoints (all JSON unless noted)::

    GET  /v1/healthz                    liveness + queue/pool/worker gauges
    GET  /v1/metrics                    process metrics snapshot
    GET  /v1/spans                      service request spans (JSON list)
    POST /v1/jobs                       submit a transfer/matrix job (202)
    GET  /v1/jobs                       every job this daemon has seen
    GET  /v1/jobs/<id>                  one job's status
    GET  /v1/jobs/<id>/events           live SSE stream (text/event-stream)
    GET  /v1/jobs/<id>/bundle           evidence bundle of a done transfer
    GET  /v1/stores                     campaign stores under the stores root
    GET  /v1/stores/<name>/results      latest attempt per job in a store
    GET  /v1/stores/<name>/class-stats  per-recipient success stats

Error vocabulary: 400 (malformed payload), 404 (unknown job/store), 405,
409 (bundle requested before the job is done), 413 (payload or matrix over
the admission caps), and 429 with ``Retry-After`` once the bounded job
queue is full — admission control *rejects* rather than queues unboundedly,
so a client always learns immediately whether its job was accepted.

Every HTTP request is recorded as a leaf span on the daemon's tracer (the
tracer is not thread-safe, so the daemon serialises span recording behind
its own lock) and counted under ``service.http.*`` in the metrics registry.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional
from urllib.parse import urlsplit

from ..api.facade import SessionPool
from ..campaign.store import RunStore
from ..core.pipeline import CodePhageOptions
from ..obs import metrics
from ..obs.bundle import build_bundle
from ..obs.tracing import Tracer
from ..solver.equivalence import EquivalenceOptions
from .jobs import STATUS_DONE, JobManager, QueueFullError
from .models import KIND_TRANSFER, RequestError, parse_submission
from .sse import job_stream


@dataclass
class ServiceConfig:
    """Everything ``codephage serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port (tests); the CLI defaults to 8642
    workers: int = 2
    pool_size: int = 2
    queue_limit: int = 16
    retries: int = 0
    default_budget_s: float = 30.0
    max_budget_s: float = 300.0
    keepalive_s: float = 5.0
    retry_after_s: float = 1.0
    store_dir: str = "results/service"
    stores_root: str = "results"
    max_body_bytes: int = 1 << 20
    enable_metrics: bool = True


class _ServiceServer(ThreadingHTTPServer):
    daemon_threads = True  # handler threads must not block process exit
    # The stdlib default listen backlog of 5 drops (RSTs) connections the
    # moment a few dozen clients connect at once; admission control must
    # come from the job queue's 429s, not from kernel connection drops.
    request_queue_size = 128
    codephage_daemon: "RepairDaemon"


class RepairDaemon:
    """Owns the store, the warm session pool, the job manager, and the server."""

    def __init__(self, config: Optional[ServiceConfig] = None, runner=None) -> None:
        self.config = config or ServiceConfig()
        self.store = RunStore(self.config.store_dir)
        self.store.directory.mkdir(parents=True, exist_ok=True)
        # All pooled sessions share one persistent verdict file — the same
        # cache campaign workers would use against this store directory.
        options = CodePhageOptions(
            equivalence_options=EquivalenceOptions(
                persistent_cache_path=str(self.store.cache_path)
            )
        )
        self.pool = SessionPool(self.config.pool_size, options=options)
        self.manager = JobManager(
            self.store,
            self.pool,
            workers=self.config.workers,
            queue_limit=self.config.queue_limit,
            retries=self.config.retries,
            retry_after_s=self.config.retry_after_s,
            runner=runner,
        )
        self.tracer = Tracer()
        self.tracer_lock = threading.Lock()
        if self.config.enable_metrics:
            metrics.enable()
        self.httpd = _ServiceServer(
            (self.config.host, self.config.port), _ServiceHandler
        )
        self.httpd.codephage_daemon = self
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RepairDaemon":
        """Serve on a background thread (tests and embedded use)."""
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="svc-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self.httpd.serve_forever()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self.manager.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)

    # -- spans -------------------------------------------------------------------------

    def record_request_span(self, name: str, elapsed_s: float, status: int) -> None:
        with self.tracer_lock:
            self.tracer.record(name, "service.http", elapsed_s, status=status)

    def spans(self) -> list[dict]:
        with self.tracer_lock:
            return [span.to_dict() for span in self.tracer.spans]

    # -- store reads -------------------------------------------------------------------

    def store_for(self, name: str) -> Optional[RunStore]:
        """A read-only view of one store under the stores root (or None)."""
        if not name or "/" in name or "\\" in name or name.startswith("."):
            return None
        directory = Path(self.config.stores_root) / name
        if not directory.is_dir():
            return None
        return RunStore(directory)

    def list_stores(self) -> list[dict]:
        root = Path(self.config.stores_root)
        if not root.is_dir():
            return []
        listing = []
        for entry in sorted(root.iterdir()):
            if not entry.is_dir():
                continue
            store = RunStore(entry)
            if not store.records_path.exists():
                continue
            results = store.results()
            listing.append(
                {
                    "name": entry.name,
                    "jobs": len(results),
                    "completed": sum(1 for r in results.values() if r.completed),
                    "has_plan": store.plan_path.exists(),
                }
            )
        return listing


class _ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _ServiceServer

    @property
    def daemon(self) -> RepairDaemon:
        return self.server.codephage_daemon

    def log_message(self, format: str, *args) -> None:
        pass  # requests are observable via metrics and spans, not stderr

    # -- plumbing ----------------------------------------------------------------------

    def _send_json(self, status: int, payload, headers: dict = {}) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, headers: dict = {}) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def _finish_request(self, started: float, route: str, status: int) -> None:
        elapsed = time.monotonic() - started
        metrics.inc("service.http.requests")
        metrics.inc(f"service.http.status.{status}")
        metrics.observe("service.http.request_seconds", elapsed)
        self.daemon.record_request_span(
            f"{self.command} {route}", elapsed, status
        )

    # -- dispatch ----------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = time.monotonic()
        path = urlsplit(self.path).path.rstrip("/") or "/"
        segments = [part for part in path.split("/") if part]
        status = 500
        try:
            status = self._route(method, segments)
        except BrokenPipeError:
            metrics.inc("service.sse.disconnects")
            status = 499  # client closed the connection mid-response
            self.close_connection = True
        except ConnectionResetError:
            metrics.inc("service.sse.disconnects")
            status = 499
            self.close_connection = True
        except Exception as exc:  # a handler bug must not kill the thread
            status = 500
            try:
                self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            except OSError:
                pass
        finally:
            self._finish_request(started, "/" + "/".join(segments[:3]), status)

    def _route(self, method: str, segments: list[str]) -> int:
        if len(segments) < 2 or segments[0] != "v1":
            self._send_error_json(404, "unknown endpoint")
            return 404
        head = segments[1]
        rest = segments[2:]
        if head == "healthz" and method == "GET" and not rest:
            return self._get_healthz()
        if head == "metrics" and method == "GET" and not rest:
            self._send_json(200, metrics.snapshot())
            return 200
        if head == "spans" and method == "GET" and not rest:
            self._send_json(200, {"spans": self.daemon.spans()})
            return 200
        if head == "jobs":
            return self._route_jobs(method, rest)
        if head == "stores" and method == "GET":
            return self._route_stores(rest)
        self._send_error_json(405 if head in ("jobs", "stores") else 404, "not routable")
        return 405 if head in ("jobs", "stores") else 404

    # -- health / jobs -----------------------------------------------------------------

    def _get_healthz(self) -> int:
        manager = self.daemon.manager
        self._send_json(
            200,
            {
                "status": "ok",
                "queue_depth": manager.queue_depth(),
                "queue_limit": self.daemon.config.queue_limit,
                "workers_alive": manager.workers_alive(),
                "idle_sessions": self.daemon.pool.idle_count(),
                "jobs_seen": len(manager.jobs()),
            },
        )
        return 200

    def _route_jobs(self, method: str, rest: list[str]) -> int:
        if not rest:
            if method == "POST":
                return self._post_job()
            self._send_json(
                200,
                {"jobs": [state.as_dict() for state in self.daemon.manager.jobs()]},
            )
            return 200
        state = self.daemon.manager.job(rest[0])
        if state is None:
            self._send_error_json(404, f"unknown job {rest[0]!r}")
            return 404
        if method != "GET":
            self._send_error_json(405, "jobs are read-only once submitted")
            return 405
        if len(rest) == 1:
            self._send_json(200, state.as_dict())
            return 200
        if rest[1:] == ["events"]:
            return self._stream_events(state)
        if rest[1:] == ["bundle"]:
            return self._get_bundle(state)
        self._send_error_json(404, "unknown job sub-resource")
        return 404

    def _post_job(self) -> int:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.daemon.config.max_body_bytes:
            self._send_error_json(413, "request body too large")
            return 413
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"request body is not JSON: {exc}")
            return 400
        try:
            submission = parse_submission(
                payload,
                default_budget_s=self.daemon.config.default_budget_s,
                max_budget_s=self.daemon.config.max_budget_s,
            )
        except RequestError as exc:
            self._send_error_json(exc.status, str(exc))
            return exc.status
        try:
            state = self.daemon.manager.submit(submission)
        except QueueFullError as exc:
            self._send_error_json(
                429,
                "job queue is full; retry later",
                headers={"Retry-After": str(max(1, round(exc.retry_after_s)))},
            )
            return 429
        self._send_json(202, state.as_dict())
        return 202

    def _stream_events(self, state) -> int:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # No Content-Length and no chunking: the stream ends when the job
        # does, so the connection closes with it.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        metrics.inc("service.sse.streams")
        for chunk in job_stream(state, keepalive_s=self.daemon.config.keepalive_s):
            self.wfile.write(chunk.encode("utf-8"))
            self.wfile.flush()
        return 200

    def _get_bundle(self, state) -> int:
        if state.status != STATUS_DONE or state.result is None:
            self._send_error_json(
                409, f"job is {state.status}; bundles exist only for done jobs"
            )
            return 409
        if state.kind != KIND_TRANSFER or state.result.record is None:
            self._send_error_json(409, "bundles cover single transfers only")
            return 409
        job_dict = dict(state.submission.specs[0].to_dict(), job_id=state.job_id)
        bundle = build_bundle(
            job=job_dict,
            record=state.result.record,
            events=self.daemon.store.load_event_dicts(state.job_id),
            attempt_elapsed_s=state.result.elapsed_s,
            source="service",
        )
        self._send_json(200, bundle)
        return 200

    # -- stores ------------------------------------------------------------------------

    def _route_stores(self, rest: list[str]) -> int:
        if not rest:
            self._send_json(200, {"stores": self.daemon.list_stores()})
            return 200
        store = self.daemon.store_for(rest[0])
        if store is None:
            self._send_error_json(404, f"unknown store {rest[0]!r}")
            return 404
        if rest[1:] == ["results"]:
            results = {
                job_id: result.to_dict()
                for job_id, result in sorted(store.results().items())
            }
            self._send_json(200, {"store": rest[0], "results": results})
            return 200
        if rest[1:] == ["class-stats"]:
            stats: dict[str, dict] = {}
            for result in store.results().values():
                record = result.record or {}
                name = record.get("recipient")
                if not result.completed or not name:
                    continue
                counters = stats.setdefault(
                    name, {"transfers": 0, "successful": 0, "success_rate": 0.0}
                )
                counters["transfers"] += 1
                counters["successful"] += 1 if record.get("success") else 0
            for counters in stats.values():
                counters["success_rate"] = round(
                    counters["successful"] / counters["transfers"], 4
                )
            self._send_json(200, {"store": rest[0], "classes": stats})
            return 200
        self._send_error_json(404, "unknown store sub-resource")
        return 404
