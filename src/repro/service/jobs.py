"""The daemon's execution core: a bounded queue feeding warm worker threads.

Lifecycle of one submission::

    POST /v1/jobs -> JobManager.submit -> bounded queue -> worker thread
                        |                                     |
                        v                                     v
                 JobState (queued)                   runner -> _settle
                                                              |
                                              RunStore record + event stream

**Status discipline.**  A job's *public* status moves monotonically through
``queued -> running -> <terminal>`` where terminal is one of ``done``,
``error``, ``crashed``, or ``timeout`` (the campaign store's status
vocabulary, so service stores read back with the same tools as campaign
stores).  Internal retries re-enqueue the job but never move the public
status backwards — a client polling ``GET /v1/jobs/<id>`` can cache the
fact that the job started and only ever observe a terminal refinement.

**Settlement is first-writer-wins.**  ``_settle`` is the single place a job
becomes terminal, guarded by the manager lock: the budget watchdog timing a
job out and the worker finishing it late race benignly — whichever settles
first wins and the loser's result is discarded, so ``records.jsonl`` holds
exactly one terminal record per job.

**Worker death.**  A runner raising ``Exception`` consumes an attempt from
the job's :class:`~repro.campaign.execution.AttemptLedger` and retries until
the budget is exhausted (then ``error``).  A runner raising
``BaseException`` kills the worker thread itself: the dying worker settles
its job as ``crashed`` on the way out, and the watchdog respawns a
replacement thread, so one poisoned job never shrinks the pool.
"""

from __future__ import annotations

import contextlib
import queue
import threading
import time
from dataclasses import asdict
from typing import Callable, Iterator, Optional

from ..api.facade import RepairSession, SessionPool
from ..campaign.execution import AttemptLedger
from ..campaign.plan import JobSpec
from ..campaign.store import (
    STATUS_CRASHED,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    JobResult,
    RunStore,
)
from ..core.events import PipelineEvent, event_to_dict
from ..core.patch import PatchStrategy
from ..core.reporting import TransferRecord
from ..experiments import ERROR_CASES
from ..obs import metrics
from .models import KIND_TRANSFER, JobIdMinter, JobSubmission

#: Public (pre-terminal) statuses; terminals reuse the campaign vocabulary.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"

TERMINAL_STATUSES = frozenset(
    {STATUS_DONE, STATUS_ERROR, STATUS_CRASHED, STATUS_TIMEOUT}
)

#: How often the watchdog scans for blown budgets and dead workers.
_WATCHDOG_TICK_S = 0.05


class QueueFullError(RuntimeError):
    """Admission control rejection; the handler answers 429 + Retry-After."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__("job queue is full")
        self.retry_after_s = retry_after_s


class EventBuffer:
    """Thread-safe, append-only event sink with blocking readers.

    Subscribed to a session's bus for the duration of one job (the same
    pattern as :class:`~repro.core.events.EventLog`, plus a lock): the
    worker thread appends, any number of SSE handler threads read.  Readers
    never touch the bus — a disconnecting SSE client abandons its read
    position and nothing else, which is what makes client disconnects
    structurally unable to wedge the pipeline.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._items: list[dict] = []
        self._closed = False

    def __call__(self, event: PipelineEvent) -> None:
        self.append(event_to_dict(event))

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def append(self, payload: dict) -> None:
        with self._cond:
            if self._closed:
                return
            self._items.append(payload)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def snapshot(self) -> list[dict]:
        with self._cond:
            return list(self._items)

    def wait(self, index: int, timeout: float) -> tuple[list[dict], bool]:
        """Block until items beyond ``index`` exist (or close, or timeout).

        Returns ``(new_items, closed)``; an empty list with ``closed`` False
        means the timeout elapsed — SSE streaming uses that to emit a
        keep-alive comment.
        """
        with self._cond:
            self._cond.wait_for(
                lambda: len(self._items) > index or self._closed, timeout
            )
            return list(self._items[index:]), self._closed


class JobState:
    """One submission's live state; mutated only under the manager lock."""

    def __init__(self, job_id: str, submission: JobSubmission) -> None:
        self.job_id = job_id
        self.submission = submission
        self.buffer = EventBuffer()
        self.status = STATUS_QUEUED
        self.history: list[str] = [STATUS_QUEUED]
        self.settling = False  # claimed by a settler; terminal flip pending
        self.attempt = 0
        self.error = ""
        self.result: Optional[JobResult] = None
        self.created_unix = time.time()
        self.started_monotonic: Optional[float] = None
        self.deadline_monotonic: Optional[float] = None
        self.elapsed_s = 0.0

    @property
    def kind(self) -> str:
        return self.submission.kind

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def as_dict(self) -> dict:
        record = self.result.record if self.result else None
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "description": self.submission.describe(),
            "status": self.status,
            "attempt": self.attempt,
            "budget_s": self.submission.budget_s,
            "created_unix": round(self.created_unix, 3),
            "elapsed_s": round(self.elapsed_s, 4),
            "error": self.error,
            "events": len(self.buffer),
            "success": bool(record.get("success")) if record else None,
        }


def default_service_runner(manager: "JobManager", state: JobState) -> dict:
    """Run one service job through the facade; returns the record to store.

    Transfers run on a pooled warm session when they are default-shaped
    (exit strategy, no overrides) and on a dedicated session — still sharing
    the store's persistent solver cache — otherwise.  Matrix jobs run their
    expanded transfers serially on this worker, all feeding one event
    buffer, and store a summary record wrapping the per-transfer records.
    """
    records: list[dict] = []
    for spec in state.submission.specs:
        case = ERROR_CASES[spec.case_id]
        with manager.session_for(spec) as session:
            session.events.subscribe(state.buffer)
            try:
                report = session.run_case(case, donor=spec.donor)
            finally:
                session.events.unsubscribe(state.buffer)
        records.append(asdict(TransferRecord.from_outcome(report.outcome)))
    if state.kind == KIND_TRANSFER:
        return records[0]
    return {
        "success": all(record["success"] for record in records),
        "transfers": len(records),
        "validated": sum(1 for record in records if record["success"]),
        "records": records,
    }


class JobManager:
    """Bounded admission, warm execution, durable settlement.

    ``runner`` is injectable (tests and the throughput benchmark substitute
    stubs that skip the repair pipeline) with the fixed signature
    ``runner(manager, state) -> record_dict``; raising ``Exception`` retries
    per the attempt ledger, raising ``BaseException`` crashes the worker.
    """

    def __init__(
        self,
        store: RunStore,
        pool: SessionPool,
        workers: int = 2,
        queue_limit: int = 16,
        retries: int = 0,
        retry_after_s: float = 1.0,
        runner: Optional[Callable[["JobManager", JobState], dict]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {queue_limit}")
        self.store = store
        self.pool = pool
        self.retry_after_s = retry_after_s
        self.runner = runner or default_service_runner
        self.ledger = AttemptLedger(retries)
        self.minter = JobIdMinter()
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_limit)
        self._lock = threading.RLock()
        self._store_lock = threading.Lock()  # RunStore appends are not atomic
        self._jobs: dict[str, JobState] = {}
        self._stopping = threading.Event()
        self._workers: list[threading.Thread] = []
        for index in range(workers):
            self._workers.append(self._spawn_worker(index))
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="svc-watchdog", daemon=True
        )
        self._watchdog.start()

    # -- admission ---------------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> JobState:
        """Admit one submission; raises :class:`QueueFullError` when full."""
        state = JobState(self.minter.mint(submission), submission)
        with self._lock:
            self._jobs[state.job_id] = state
        try:
            self._queue.put_nowait(state)
        except queue.Full:
            with self._lock:
                del self._jobs[state.job_id]
            metrics.inc("service.jobs.rejected")
            raise QueueFullError(self.retry_after_s) from None
        metrics.inc("service.jobs.submitted")
        metrics.gauge_max("service.queue.peak_depth", self._queue.qsize())
        return state

    def job(self, job_id: str) -> Optional[JobState]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[JobState]:
        with self._lock:
            return list(self._jobs.values())

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def workers_alive(self) -> int:
        with self._lock:
            return sum(1 for worker in self._workers if worker.is_alive())

    # -- execution ---------------------------------------------------------------------

    @contextlib.contextmanager
    def session_for(self, spec: JobSpec) -> Iterator[RepairSession]:
        """The session a spec runs on: pooled when default-shaped.

        A spec with option overrides or a non-default strategy cannot use
        the shared-options pool; it gets a dedicated session whose
        equivalence options still point at the store's persistent solver
        cache, so even one-off configurations warm (and are warmed by) the
        shared verdict file.
        """
        if spec.strategy == PatchStrategy.EXIT.value and not spec.overrides:
            with self.pool.checkout() as session:
                yield session
        else:
            yield RepairSession(
                options=spec.build_options(str(self.store.cache_path))
            )

    def _spawn_worker(self, index: int) -> threading.Thread:
        worker = threading.Thread(
            target=self._worker_loop, name=f"svc-worker-{index}", daemon=True
        )
        worker.start()
        return worker

    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                state = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                self._run_attempt(state)
            except Exception:
                # _run_attempt settles the job itself; a leak here would
                # kill the worker over bookkeeping, which helps nobody.
                pass
            except BaseException:
                # The runner took the whole thread down (the fault tests
                # simulate a killed worker this way).  Settle the job as
                # crashed and let the thread die — the watchdog respawns.
                self._settle(state, STATUS_CRASHED, error="worker thread died")
                metrics.inc("service.workers.deaths")
                raise
            finally:
                self._queue.task_done()

    def _run_attempt(self, state: JobState) -> None:
        with self._lock:
            if state.terminal or state.settling:
                return  # settled while queued (shutdown or watchdog)
            state.attempt = self.ledger.begin(state.job_id)
            if state.status == STATUS_QUEUED:
                state.status = STATUS_RUNNING
                state.history.append(STATUS_RUNNING)
            if state.started_monotonic is None:
                state.started_monotonic = time.monotonic()
                state.deadline_monotonic = (
                    state.started_monotonic + state.submission.budget_s
                )
        try:
            record = self.runner(self, state)
        except Exception as exc:
            self._on_attempt_failure(state, exc)
            return
        elapsed = time.monotonic() - (state.started_monotonic or time.monotonic())
        self._settle(state, STATUS_DONE, record=record, elapsed_s=elapsed)

    def _on_attempt_failure(self, state: JobState, exc: Exception) -> None:
        metrics.inc("service.jobs.attempt_failures")
        if not self.ledger.exhausted(state.job_id):
            try:
                self._queue.put_nowait(state)  # retry; public status unchanged
                return
            except queue.Full:
                pass  # no room to retry — fall through to a terminal error
        elapsed = time.monotonic() - (state.started_monotonic or time.monotonic())
        self._settle(
            state,
            STATUS_ERROR,
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=elapsed,
        )

    # -- settlement --------------------------------------------------------------------

    def _settle(
        self,
        state: JobState,
        status: str,
        record: Optional[dict] = None,
        error: str = "",
        elapsed_s: float = 0.0,
    ) -> bool:
        """Move a job to a terminal status; False if it already was terminal.

        First writer wins: a late worker result arriving after the watchdog
        timed the job out (or vice versa) is discarded here, never recorded.
        The public status flips *last*, after the store append, the event
        persistence, and the metric increments — a client that observes a
        terminal status is therefore guaranteed to find the record, the
        persisted event stream, and the settled counters already in place.
        """
        with self._lock:
            if state.terminal or state.settling:
                return False
            state.settling = True  # claim; losers bail at the check above
        state.buffer.close()
        result = JobResult(
            job_id=state.job_id,
            status=status,
            attempt=max(1, state.attempt),
            elapsed_s=round(elapsed_s, 4),
            record=record,
            error=error,
        )
        with self._store_lock:
            self.store.append(result)
            self.store.write_events(state.job_id, state.buffer.snapshot())
        metrics.inc(f"service.jobs.{status}")
        metrics.observe("service.job_seconds", elapsed_s)
        with self._lock:
            state.result = result
            state.error = error
            state.elapsed_s = elapsed_s
            state.status = status
            state.history.append(status)
        return True

    # -- supervision -------------------------------------------------------------------

    def _watchdog_loop(self) -> None:
        while not self._stopping.wait(_WATCHDOG_TICK_S):
            now = time.monotonic()
            for state in self.jobs():
                if (
                    not state.terminal
                    and state.deadline_monotonic is not None
                    and now > state.deadline_monotonic
                ):
                    if self._settle(
                        state,
                        STATUS_TIMEOUT,
                        error=f"budget of {state.submission.budget_s}s exhausted",
                        elapsed_s=now - (state.started_monotonic or now),
                    ):
                        metrics.inc("service.jobs.budget_kills")
            with self._lock:
                for index, worker in enumerate(self._workers):
                    if not worker.is_alive() and not self._stopping.is_set():
                        self._workers[index] = self._spawn_worker(index)
                        metrics.inc("service.workers.respawns")
            metrics.set_gauge("service.queue.depth", self._queue.qsize())
            metrics.set_gauge("service.workers.alive", self.workers_alive())

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting work and wind down workers and the watchdog."""
        self._stopping.set()
        deadline = time.monotonic() + timeout
        for thread in [*self._workers, self._watchdog]:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
