"""A stdlib HTTP client for the repair daemon (tests, CI smoke, benchmarks).

Plain-JSON endpoints go through one-shot :mod:`http.client` requests; the
SSE endpoint is consumed incrementally (:meth:`ServiceClient.open_events`
yields parsed frames as the daemon emits them, and closing the context
mid-stream is exactly the "client disconnected" case the fault tests
exercise).  Errors surface as :class:`ServiceError` carrying the HTTP
status and, for 429 responses, the parsed ``Retry-After``.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import time
from typing import Iterator, Optional
from urllib.parse import urlsplit

from ..core.events import EVENT_TYPES, PipelineEvent, event_from_dict
from .sse import frame_data, frame_event_name, iter_frames


class ServiceError(RuntimeError):
    """A non-2xx daemon response."""

    def __init__(
        self, status: int, message: str, retry_after_s: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Talks to one daemon; a new connection per call (thread-safe by design)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"expected an http://host:port base url, got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------------

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(raw).get("error", raw.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = raw.decode("utf-8", errors="replace")
                retry_after = response.headers.get("Retry-After")
                raise ServiceError(
                    response.status,
                    message,
                    retry_after_s=float(retry_after) if retry_after else None,
                )
            return json.loads(raw) if raw else {}
        finally:
            connection.close()

    # -- endpoints ---------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def spans(self) -> list[dict]:
        return self._request("GET", "/v1/spans")["spans"]

    def submit(self, payload: dict) -> dict:
        """POST a job; returns its state dict (raises ServiceError on 4xx)."""
        return self._request("POST", "/v1/jobs", payload=payload)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def bundle(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/bundle")

    def stores(self) -> list[dict]:
        return self._request("GET", "/v1/stores")["stores"]

    def store_results(self, name: str) -> dict:
        return self._request("GET", f"/v1/stores/{name}/results")["results"]

    def class_stats(self, name: str) -> dict:
        return self._request("GET", f"/v1/stores/{name}/class-stats")["classes"]

    # -- waiting and streaming ---------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal status; returns its state."""
        from .jobs import TERMINAL_STATUSES  # local import: avoid cycle at module load

        deadline = time.monotonic() + timeout
        while True:
            state = self.job(job_id)
            if state["status"] in TERMINAL_STATUSES:
                return state
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {state['status']} after {timeout}s"
                )
            time.sleep(poll_s)

    @contextlib.contextmanager
    def open_events(self, job_id: str) -> Iterator[Iterator[tuple[str, dict]]]:
        """Stream a job's SSE frames as ``(event_name, payload)`` pairs.

        Exiting the ``with`` block closes the socket immediately — even
        mid-stream — which is how the fault tests model an SSE client that
        disconnects while the job is still running.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceError(response.status, response.read().decode("utf-8"))

            def frames() -> Iterator[tuple[str, dict]]:
                for frame in iter_frames(response):
                    yield frame_event_name(frame), frame_data(frame)

            yield frames()
        finally:
            connection.close()

    def stream_events(self, job_id: str, timeout: float = 60.0) -> list[PipelineEvent]:
        """Consume a job's whole SSE stream; returns its pipeline events.

        Control frames (``status``/``end``) delimit the stream; everything
        carrying a registered event name is deserialized through the same
        registry the store's JSONL uses, so the returned list is directly
        comparable to the persisted stream.
        """
        events: list[PipelineEvent] = []
        deadline = time.monotonic() + timeout
        with self.open_events(job_id) as frames:
            for name, payload in frames:
                if name == "end":
                    break
                if name in EVENT_TYPES:
                    events.append(event_from_dict(payload))
                if time.monotonic() > deadline:
                    raise TimeoutError(f"SSE stream for {job_id} exceeded {timeout}s")
        return events
