"""``repro.service`` — repair-as-a-service over the facade.

A stdlib-only HTTP daemon (:class:`RepairDaemon`, served by ``codephage
serve``) that accepts transfer/matrix jobs validated with the campaign
planner's own validators, runs them on a warm
:class:`~repro.api.SessionPool` behind a bounded queue with per-job budgets
and 429 backpressure, persists every outcome to a campaign-compatible
:class:`~repro.campaign.store.RunStore`, and streams live
:class:`~repro.core.events.PipelineEvent`\\ s per job over SSE.  See
``docs/SERVICE.md`` for the endpoint reference and semantics.
"""

from .app import RepairDaemon, ServiceConfig
from .client import ServiceClient, ServiceError
from .jobs import (
    STATUS_QUEUED,
    STATUS_RUNNING,
    TERMINAL_STATUSES,
    EventBuffer,
    JobManager,
    JobState,
    QueueFullError,
    default_service_runner,
)
from .models import (
    KIND_MATRIX,
    KIND_TRANSFER,
    MAX_MATRIX_TRANSFERS,
    JobSubmission,
    RequestError,
    parse_submission,
)
from .sse import job_stream

__all__ = [
    "EventBuffer",
    "JobManager",
    "JobState",
    "JobSubmission",
    "KIND_MATRIX",
    "KIND_TRANSFER",
    "MAX_MATRIX_TRANSFERS",
    "QueueFullError",
    "RepairDaemon",
    "RequestError",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TERMINAL_STATUSES",
    "default_service_runner",
    "job_stream",
    "parse_submission",
]
