"""Defect and donor-check templates, one per :class:`ErrorKind`.

A template is the error-class-specific half of scenario synthesis: given the
input fields a generated application reads (already bound to local variables
by the reader codegen in :mod:`repro.scenarios.generate`), it produces

* the **recipient body** — code that uses one field at a seeded defect site
  without the protective check (the missing check is the bug), and
* the **donor body** — the same computation guarded by the protective check
  the paper would transfer (reject-and-return, exactly the shape of FEH's
  ``IMAGE_DIMENSIONS_OK`` or Wireshark 1.8's ``if (real_len)`` guards), and
* the **error field values** that drive the recipient into the defect.

Every numeric parameter (thresholds, buffer sizes, error values) is drawn
from the scenario's seeded RNG, under two standing constraints that keep
generated transfers validatable by the unchanged pipeline:

* the *benign window*: thresholds sit strictly above the values the
  regression corpus generates (``InputGenerator.regression_corpus`` draws
  1..64 for multi-byte fields, 1..4 for single-byte fields), so an inserted
  donor check never changes regression behaviour;
* the *rejection window*: every error value the template can emit lies
  strictly above the donor threshold, so the transferred check rejects every
  error-triggering input and a DIODE rescan finds no residual errors.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Optional, Sequence

from ..lang.trace import ErrorKind

#: The two near-miss donor flavours adversarial corpora generate.
#:
#: ``fails-open`` violates the *rejection window*: the check's bound is
#: pushed past the error value, so it never fires and check discovery finds
#: no flipped branch — the transfer must fail before a patch exists.
#: ``overbroad`` violates the *benign window*: the bound is pulled inside the
#: regression corpus's value range, so the check flips on the error input
#: (and is discovered), but the generated patch changes regression behaviour
#: and validation must reject it.
NEAR_MISS_MODES: tuple[str, ...] = ("fails-open", "overbroad")


@dataclass(frozen=True)
class FieldAccess:
    """One chosen input field, bound to a MicroC local by the reader."""

    path: str
    var: str
    offset: int
    size: int
    endianness: str
    default: int

    @property
    def max_value(self) -> int:
        return (1 << (self.size * 8)) - 1


@dataclass(frozen=True)
class DefectPlan:
    """The concrete, RNG-resolved instantiation of one template."""

    error_kind: ErrorKind
    recipient_body: tuple[str, ...]
    donor_body: tuple[str, ...]
    error_values: dict[str, int]
    threshold: int
    #: The exact source line of the recipient's error site (used to derive
    #: the ``file:line`` target id once the program is rendered).
    defect_marker: str
    description: str


class DefectTemplate:
    """Base class: how one error class turns fields into a defect + check."""

    kind: ErrorKind
    #: How many input fields the defect consumes.
    field_count: int = 1
    #: Minimum field width in bits (wide enough to exceed the thresholds).
    min_field_bits: int = 16
    #: Whether the field's format default must be non-zero (divide-by-zero
    #: uses the default as the benign divisor).
    requires_nonzero_default: bool = False
    #: MicroC locals this template's bodies introduce.  Multi-defect
    #: synthesis renames them per defect slot so stacked bodies never
    #: collide in one function scope.
    local_names: tuple[str, ...] = ()
    #: Comparison operator of the protective check's condition; the generic
    #: near-miss construction shifts its bound (templates whose checks are
    #: not simple single-field comparisons override the construction).
    comparator: str = ">"

    def suits(self, field: FieldAccess) -> bool:
        if field.size * 8 < self.min_field_bits:
            return False
        # The reader codegen assembles fields into u32 locals; wider fields
        # would need >=32-bit shifts and a different variable type.
        if field.size > 4:
            return False
        if self.requires_nonzero_default and field.default == 0:
            return False
        # The seeded defect flips on values above the threshold; a format
        # default already above the benign window would make the seed input
        # itself error-triggering.
        return 0 < field.default <= 64

    def instantiate(self, fields: Sequence[FieldAccess], rng: random.Random) -> DefectPlan:
        raise NotImplementedError

    # -- near-miss (adversarial) donor synthesis ---------------------------------------

    def near_miss_condition(
        self,
        fields: Sequence[FieldAccess],
        plan: Optional[DefectPlan],
        mode: str,
        regression_rows: Sequence[dict],
    ) -> Optional[str]:
        """The almost-protective check condition for ``mode``, or ``None``.

        ``regression_rows`` holds the per-field values of the deterministic
        regression corpus the validator will replay (one dict per input),
        so the ``overbroad`` bound is provably inside the benign window.
        Returns ``None`` when a mode is infeasible for these fields (e.g.
        no regression value exceeds the field's format default).  The
        ``overbroad`` construction never consults ``plan``, so feasibility
        can be probed with ``plan=None`` before a defect is instantiated.
        """
        (field,) = fields
        if mode == "fails-open":
            error_value = plan.error_values[field.path]
            if self.comparator == ">":
                return f"{field.var} > {error_value}"
            return f"{field.var} >= {error_value + 1}"
        top = max(row[field.path] for row in regression_rows)
        if top <= field.default:
            return None
        if self.comparator == ">":
            return f"{field.var} > {field.default}"
        return f"{field.var} >= {field.default + 1}"

    def near_miss_donor_body(
        self,
        fields: Sequence[FieldAccess],
        plan: DefectPlan,
        mode: str,
        regression_rows: Sequence[dict],
    ) -> Optional[tuple[str, ...]]:
        """The donor body whose check is off-by-one/wrong-bound, or ``None``.

        ``fails-open`` donors pair the dead check with a branch-free filler
        computation: the template's real computation would crash on the
        error input *and* its data-dependent branches (loop bounds) would
        hand discovery a legitimately protective flip, turning the intended
        rejection probe into a valid transfer.

        ``overbroad`` donors keep the real computation — their check fires
        on the error input, so the crash-prone code is never reached — and
        only the bound is wrong.
        """
        if mode not in NEAR_MISS_MODES:
            raise ValueError(f"unknown near-miss mode {mode!r}; one of {NEAR_MISS_MODES}")
        condition = self.near_miss_condition(fields, plan, mode, regression_rows)
        if condition is None:
            return None
        if mode == "fails-open":
            digest = " + ".join(field.var for field in fields)
            return (
                "    // Almost-protective check: the bound sits past every",
                "    // error value, so it never fires.",
                f"    if ({condition}) {{",
                "        return 0;",
                "    }",
                f"    u32 digest = ({digest}) * 3;",
                "    emit(digest);",
            )
        return replace_check_condition(plan.donor_body, condition)


class IntegerOverflowTemplate(DefectTemplate):
    """``width * height * 4`` wraps at 32 bits at the allocation site."""

    kind = ErrorKind.INTEGER_OVERFLOW
    field_count = 2
    local_names = ("stride", "pixels")

    def near_miss_condition(self, fields, plan, mode, regression_rows):
        first, second = fields
        product = f"(((u64) {first.var}) * ((u64) {second.var}))"
        if mode == "fails-open":
            bound = plan.error_values[first.path] * plan.error_values[second.path]
            return f"{product} > {bound}"
        benign = first.default * second.default
        top = max(row[first.path] * row[second.path] for row in regression_rows)
        if top <= benign:
            return None
        return f"{product} > {benign}"

    def instantiate(self, fields, rng):
        first, second = fields
        threshold = rng.randrange(1 << 16, 1 << 20)
        # Each factor at 33000+ puts the product at 2**30, so `* 4` wraps
        # 32 bits — and every such product also exceeds the check threshold.
        low = 33000
        error_values = {
            first.path: rng.randrange(low, min(first.max_value, 120000) + 1),
            second.path: rng.randrange(low, min(second.max_value, 120000) + 1),
        }
        defect = f"    u8* pixels = malloc({first.var} * {second.var} * 4);"
        recipient = (
            f"    u32 stride = {first.var} * 4;",
            "    // Seeded defect: the 32-bit size product is unchecked.",
            defect,
            "    if (pixels == 0) {",
            "        return 1;",
            "    }",
            f"    store8(pixels, ({first.var} * {second.var} * 4) - 1, 0);",
        )
        donor = (
            "    // Protective check: reject dimension products that could",
            "    // overflow downstream 32-bit size computations.",
            f"    if ((((u64) {first.var}) * ((u64) {second.var})) > {threshold}) {{",
            "        return 0;",
            "    }",
            f"    u8* pixels = malloc({first.var} * {second.var} * 4);",
            "    if (pixels == 0) {",
            "        return 1;",
            "    }",
            f"    store8(pixels, ({first.var} * {second.var} * 4) - 1, 0);",
        )
        return DefectPlan(
            error_kind=self.kind,
            recipient_body=recipient,
            donor_body=donor,
            error_values=error_values,
            threshold=threshold,
            defect_marker=defect,
            description=f"{first.var} * {second.var} * 4 wraps at the buffer malloc",
        )


class OutOfBoundsWriteTemplate(DefectTemplate):
    """An initialisation loop bounded by an unchecked field overruns a table."""

    kind = ErrorKind.OUT_OF_BOUNDS_WRITE
    local_names = ("table", "entry")

    def instantiate(self, fields, rng):
        (field,) = fields
        table_size = rng.choice((256, 512, 1024))
        threshold = table_size // 2
        error_values = {
            field.path: rng.randrange(table_size + 1, min(field.max_value, 60000) + 1)
        }
        defect = f"        store8(table, entry, 255);"
        recipient = (
            f"    u8* table = malloc({table_size});",
            "    if (table == 0) {",
            "        return 1;",
            "    }",
            "    u32 entry = 0;",
            "    // Seeded defect: the loop bound is never checked against the",
            "    // table size.",
            f"    while (entry < {field.var}) {{",
            defect,
            "        entry = entry + 1;",
            "    }",
        )
        donor = (
            f"    // Protective check: the entry count is limited to {threshold}.",
            f"    if ({field.var} > {threshold}) {{",
            "        return 0;",
            "    }",
            f"    u8* table = malloc({table_size});",
            "    if (table == 0) {",
            "        return 1;",
            "    }",
            "    u32 entry = 0;",
            f"    while (entry < {field.var}) {{",
            "        store8(table, entry, 255);",
            "        entry = entry + 1;",
            "    }",
        )
        return DefectPlan(
            error_kind=self.kind,
            recipient_body=recipient,
            donor_body=donor,
            error_values=error_values,
            threshold=threshold,
            defect_marker=defect,
            description=f"table initialisation loop bounded by {field.var} overruns "
            f"the {table_size}-byte table",
        )


class OutOfBoundsReadTemplate(DefectTemplate):
    """An unchecked field indexes directly into a fixed-size table."""

    kind = ErrorKind.OUT_OF_BOUNDS_READ
    local_names = ("table", "looked_up")
    comparator = ">="

    def instantiate(self, fields, rng):
        (field,) = fields
        table_size = rng.choice((256, 512, 1024))
        threshold = rng.randrange(128, table_size + 1)
        error_values = {
            field.path: rng.randrange(table_size + 1, min(field.max_value, 60000) + 1)
        }
        defect = f"    u8 looked_up = load8(table, {field.var});"
        recipient = (
            f"    u8* table = malloc({table_size});",
            "    if (table == 0) {",
            "        return 1;",
            "    }",
            "    store8(table, 0, 7);",
            "    // Seeded defect: the lookup index is never bounds-checked.",
            defect,
            "    emit((u32) looked_up);",
        )
        donor = (
            f"    // Protective check: indices beyond {threshold} are rejected.",
            f"    if ({field.var} >= {threshold}) {{",
            "        return 0;",
            "    }",
            f"    u8* table = malloc({table_size});",
            "    if (table == 0) {",
            "        return 1;",
            "    }",
            "    store8(table, 0, 7);",
            f"    u8 looked_up = load8(table, {field.var});",
            "    emit((u32) looked_up);",
        )
        return DefectPlan(
            error_kind=self.kind,
            recipient_body=recipient,
            donor_body=donor,
            error_values=error_values,
            threshold=threshold,
            defect_marker=defect,
            description=f"{field.var} indexes past the {table_size}-byte table",
        )


class DivideByZeroTemplate(DefectTemplate):
    """A per-unit division whose divisor field can be zero."""

    kind = ErrorKind.DIVIDE_BY_ZERO
    min_field_bits = 8
    requires_nonzero_default = True
    local_names = ("per_unit", "leftover")

    def near_miss_condition(self, fields, plan, mode, regression_rows):
        (field,) = fields
        if mode == "fails-open":
            # Checks for a sentinel the format never produces instead of
            # zero (regression values and defaults stay at or below 64).
            return f"{field.var} == {field.max_value}"
        rows = [row[field.path] for row in regression_rows]
        if min(rows) >= field.default:
            return None
        return f"{field.var} <= {field.default - 1}"

    def instantiate(self, fields, rng):
        (field,) = fields
        total = rng.randrange(100000, 1000000)
        error_values = {field.path: 0}
        defect = f"    u32 per_unit = {total} / {field.var};"
        recipient = (
            "    // Seeded defect: the divisor field is never checked for zero.",
            defect,
            f"    u32 leftover = {total} % {field.var};",
            "    emit(per_unit);",
            "    emit(leftover);",
        )
        donor = (
            "    // Protective check: degenerate zero divisors are rejected.",
            f"    if ({field.var} == 0) {{",
            "        return 0;",
            "    }",
            f"    u32 per_unit = {total} / {field.var};",
            f"    u32 leftover = {total} % {field.var};",
            "    emit(per_unit);",
            "    emit(leftover);",
        )
        return DefectPlan(
            error_kind=self.kind,
            recipient_body=recipient,
            donor_body=donor,
            error_values=error_values,
            threshold=0,
            defect_marker=defect,
            description=f"{total} / {field.var} divides by the zero field",
        )


class NullDereferenceTemplate(DefectTemplate):
    """The buffer is only allocated on the expected path; the use is not."""

    kind = ErrorKind.NULL_DEREFERENCE
    min_field_bits = 8
    local_names = ("scratch",)

    def instantiate(self, fields, rng):
        (field,) = fields
        if field.max_value <= 255:
            threshold = rng.randrange(100, 200)
        else:
            threshold = rng.randrange(300, 2000)
        error_values = {
            field.path: rng.randrange(threshold + 1, min(field.max_value, 60000) + 1)
        }
        defect = "    store8(scratch, 0, 1);"
        recipient = (
            "    u8* scratch;",
            f"    if ({field.var} <= {threshold}) {{",
            "        scratch = malloc(64);",
            "    }",
            "    // Seeded defect: the unexpected path leaves scratch null.",
            defect,
            "    emit((u32) load8(scratch, 0));",
        )
        donor = (
            f"    // Protective check: values beyond {threshold} are rejected",
            "    // before the buffer is touched.",
            f"    if ({field.var} > {threshold}) {{",
            "        return 0;",
            "    }",
            "    u8* scratch = malloc(64);",
            "    store8(scratch, 0, 1);",
            "    emit((u32) load8(scratch, 0));",
        )
        return DefectPlan(
            error_kind=self.kind,
            recipient_body=recipient,
            donor_body=donor,
            error_values=error_values,
            threshold=threshold,
            defect_marker=defect,
            description=f"scratch stays null when {field.var} exceeds {threshold}",
        )


class ResourceExhaustedTemplate(DefectTemplate):
    """A 64-bit allocation request scales past the VM's heap budget."""

    kind = ErrorKind.RESOURCE_EXHAUSTED
    local_names = ("arena",)
    #: Bytes requested per field unit; with the VM's 1 TiB heap budget the
    #: request exhausts the heap once the field exceeds 2**14.
    UNIT = 1 << 26

    def instantiate(self, fields, rng):
        (field,) = fields
        threshold = rng.randrange(8192, 16000)
        error_values = {
            field.path: rng.randrange(20000, min(field.max_value, 65000) + 1)
        }
        defect = f"    u8* arena = malloc64(((u64) {field.var}) * ((u64) {self.UNIT}));"
        recipient = (
            "    // Seeded defect: the arena request scales with the field",
            "    // without any budget check.",
            defect,
            "    if (arena == 0) {",
            "        return 1;",
            "    }",
            "    store8(arena, 0, 1);",
        )
        donor = (
            f"    // Protective check: requests beyond {threshold} units",
            "    // exceed the memory budget and are rejected.",
            f"    if ({field.var} > {threshold}) {{",
            "        return 0;",
            "    }",
            f"    u8* arena = malloc64(((u64) {field.var}) * ((u64) {self.UNIT}));",
            "    if (arena == 0) {",
            "        return 1;",
            "    }",
            "    store8(arena, 0, 1);",
        )
        return DefectPlan(
            error_kind=self.kind,
            recipient_body=recipient,
            donor_body=donor,
            error_values=error_values,
            threshold=threshold,
            defect_marker=defect,
            description=f"arena of {field.var} * {self.UNIT} bytes exhausts the heap budget",
        )


def rename_locals(lines: Sequence[str], mapping: dict[str, str]) -> tuple[str, ...]:
    """Rename whole-word occurrences of template locals in body lines.

    Multi-defect synthesis stacks several template bodies in one function
    scope; each slot renames its template's :attr:`~DefectTemplate.local_names`
    (e.g. ``table`` -> ``table_d2``) so redeclarations never collide.
    """
    if not mapping:
        return tuple(lines)
    pattern = re.compile("|".join(rf"\b{re.escape(name)}\b" for name in mapping))
    return tuple(pattern.sub(lambda m: mapping[m.group(0)], line) for line in lines)


def replace_check_condition(body: Sequence[str], condition: str) -> tuple[str, ...]:
    """Rewrite the condition of a donor body's protective check.

    The protective check is, by template construction, the first ``if``
    statement of the body (comment lines may precede it); its indentation
    is preserved.
    """
    lines = list(body)
    for index, line in enumerate(lines):
        stripped = line.lstrip()
        if stripped.startswith("if ("):
            indent = line[: len(line) - len(stripped)]
            lines[index] = f"{indent}if ({condition}) {{"
            return tuple(lines)
    raise ValueError("donor body has no protective check to rewrite")


#: Every template, keyed by the error class it seeds.
TEMPLATES: dict[ErrorKind, DefectTemplate] = {
    template.kind: template
    for template in (
        IntegerOverflowTemplate(),
        OutOfBoundsWriteTemplate(),
        OutOfBoundsReadTemplate(),
        DivideByZeroTemplate(),
        NullDereferenceTemplate(),
        ResourceExhaustedTemplate(),
    )
}
