"""Scenario corpus engine: procedural donor/recipient pairs at campaign scale.

The paper validates horizontal code transfer on ten fixed donor/recipient
pairs; this package generates *matched pairs on demand* — for every error
class the VM detects, over every registered input format — so campaigns can
exercise thousands of distinct transfers instead of replaying Figure 8:

* :mod:`repro.scenarios.templates` — one defect/check template per
  :class:`~repro.lang.trace.ErrorKind`: what the seeded bug looks like in
  the recipient, and what protective check the donor carries;
* :mod:`repro.scenarios.generate` — pair synthesis: reader codegen from the
  format's field layout, template instantiation, content-addressed naming —
  including the adversarial synthesizers (multi-defect stacks, cross-format
  donors, near-miss donors, mutation-discovered triggers);
* :mod:`repro.scenarios.corpus` — deterministic seeded batches spanning
  hardness dimensions (:data:`~repro.scenarios.corpus.HARDNESS_DIMENSIONS`)
  with a JSON manifest for cross-process campaigns;
* :mod:`repro.scenarios.runner` — the campaign worker entry point and the
  ``codephage matrix`` driver helpers.

See ``docs/SCENARIOS.md`` for the error-class and hardness taxonomies, the
generation knobs, the false-accept-rate semantics, and the determinism
guarantees.
"""

from .corpus import (
    DEFAULT_ERROR_KINDS,
    HARDNESS_DIMENSIONS,
    CorpusConfig,
    ScenarioCorpus,
    generate_corpus,
)
from .generate import (
    ScenarioError,
    ScenarioPair,
    suitable_fields,
    synthesize_cross_format_pair,
    synthesize_multi_defect_pair,
    synthesize_mutation_pair,
    synthesize_near_miss_pair,
    synthesize_pair,
)
from .runner import (
    MANIFEST_NAME,
    corpus_plan,
    matrix_job_runner,
    matrix_scheduler_kwargs,
    prepare_matrix_store,
    run_matrix,
)
from .templates import NEAR_MISS_MODES, TEMPLATES, DefectTemplate, FieldAccess

__all__ = [
    "CorpusConfig",
    "DEFAULT_ERROR_KINDS",
    "DefectTemplate",
    "FieldAccess",
    "HARDNESS_DIMENSIONS",
    "MANIFEST_NAME",
    "NEAR_MISS_MODES",
    "ScenarioCorpus",
    "ScenarioError",
    "ScenarioPair",
    "TEMPLATES",
    "corpus_plan",
    "generate_corpus",
    "matrix_job_runner",
    "matrix_scheduler_kwargs",
    "prepare_matrix_store",
    "run_matrix",
    "suitable_fields",
    "synthesize_cross_format_pair",
    "synthesize_multi_defect_pair",
    "synthesize_mutation_pair",
    "synthesize_near_miss_pair",
    "synthesize_pair",
]
