"""Campaign execution of generated scenarios.

Campaign workers are separate processes; they cannot see applications the
parent registered, and a corpus must survive the parent dying mid-campaign
(that is what ``--resume`` promises).  The contract is therefore file-based:

* the driver generates the corpus and writes its **manifest** next to the
  run store (:meth:`ScenarioCorpus.save`);
* each worker runs :func:`matrix_job_runner`, which loads the manifest,
  registers exactly the job's donor/recipient pair for the duration of the
  transfer (:func:`repro.apps.registry.scoped_registration`), and routes the
  repair through the :mod:`repro.api` facade with the job's option variant —
  the same path ``figure8``/``campaign`` jobs take.

``matrix_job_runner`` carries the manifest path as a third argument; drivers
bind it with :func:`functools.partial`, which pickles cleanly into worker
processes under any start method.
"""

from __future__ import annotations

import time
from dataclasses import asdict
from functools import partial
from pathlib import Path
from typing import Optional

from ..apps.registry import scoped_registration
from ..campaign.plan import CampaignPlan, JobSpec, matrix_plan
from ..campaign.scheduler import CampaignReport, CampaignScheduler, SchedulerOptions
from ..campaign.store import RunStore
from ..core.reporting import ResultsDatabase, TransferRecord
from .corpus import ScenarioCorpus

#: Manifest file name, relative to the run-store directory.
MANIFEST_NAME = "scenarios.json"

#: Parsed corpora keyed by absolute manifest path, valid for the stat
#: signature they were loaded under.  The matrix drivers warm this in the
#: *parent* before scheduling, so under the default ``fork`` start method
#: every worker inherits the parsed corpus and skips re-parsing a manifest
#: that can hold thousands of generated program sources (one full JSON
#: parse per job otherwise).  Spawned workers miss the cache and fall back
#: to loading the file.
_CORPUS_CACHE: dict[str, tuple[tuple[int, int], ScenarioCorpus]] = {}


def _load_corpus(manifest_path: str | Path) -> ScenarioCorpus:
    path = Path(manifest_path).resolve()
    try:
        stat = path.stat()
        signature = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        signature = None
    cached = _CORPUS_CACHE.get(str(path))
    if cached is not None and signature is not None and cached[0] == signature:
        return cached[1]
    corpus = ScenarioCorpus.load(path)
    if signature is not None:
        _CORPUS_CACHE[str(path)] = (signature, corpus)
    return corpus


def matrix_job_runner(payload: dict, cache_path: Optional[str], manifest_path: str) -> dict:
    """Run one generated transfer; executed inside a worker process.

    Same telemetry contract as ``campaign.scheduler.default_job_runner``:
    the result payload carries the serialized event stream (persisted to the
    store's ``events/`` directory for ``codephage trace``/``bundle``) and a
    per-job metrics snapshot from a registry reset/enabled around the run.
    """
    from ..api.facade import RepairSession
    from ..core.events import events_as_dicts
    from ..obs import metrics as obs_metrics

    corpus = _load_corpus(manifest_path)
    job = JobSpec.from_dict(payload)
    pair = corpus.pair(job.case_id)
    obs_metrics.REGISTRY.reset()
    obs_metrics.REGISTRY.enable()
    start = time.perf_counter()
    # Multi-defect pairs ship decoy donors: run full donor selection over the
    # pool so the recursive repair loop has to recover from partial fixes.
    donor_pool = pair.donor_pool
    with scoped_registration(pair.recipient, *donor_pool):
        session = RepairSession(options=job.build_options(cache_path))
        if len(donor_pool) > 1:
            report = session.run_case(pair, donors=donor_pool)
        else:
            report = session.run_case(pair, donor=pair.donor)
    # An adversarial pair's registered donor is the near-miss: any success is
    # a false accept, the number the hard-matrix gate drives to zero.  The
    # counter is recorded even at zero so aggregated telemetry shows the
    # gate was exercised, not skipped.
    if pair.adversarial:
        obs_metrics.REGISTRY.inc(
            "scenarios.false_accepts", 1 if report.outcome.success else 0
        )
    if len(report.outcome.checks) > 1:
        obs_metrics.REGISTRY.inc("scenarios.multi_round_repairs")
    record = TransferRecord.from_outcome(report.outcome)
    return {
        "record": asdict(record),
        "elapsed_s": time.perf_counter() - start,
        "events": events_as_dicts(report.events),
        "metrics": obs_metrics.REGISTRY.snapshot(),
    }


def corpus_plan(corpus: ScenarioCorpus, **plan_kwargs) -> CampaignPlan:
    """The corpus's transfer matrix as a campaign plan.

    Job ids are content hashes over ``(case_id, donor, strategy, variant)``;
    with content-addressed case and donor names this makes the ids — and
    therefore resume — byte-identical across runs of the same config.
    """
    plan_kwargs.setdefault("name", f"scenario-matrix-seed{corpus.config.seed}")
    return matrix_plan(
        [(pair.case_id, pair.donor_name) for pair in corpus.pairs], **plan_kwargs
    )


def prepare_matrix_store(
    corpus: ScenarioCorpus,
    plan: CampaignPlan,
    store_dir: str | Path,
    resume: bool = True,
) -> tuple[RunStore, Path]:
    """Attach to the run store and persist the corpus manifest.

    Order matters: the store is initialised (and therefore plan-checked)
    *before* the manifest is written, so pointing a different corpus at an
    existing store fails without clobbering the manifest its records were
    produced from.  ``StoreError`` propagates to the caller.
    """
    store = RunStore(store_dir)
    store.initialise(plan, fresh=not resume)
    manifest_path = corpus.save(store.directory / MANIFEST_NAME)
    # Warm the parse cache with the exact corpus just written: fork-started
    # workers inherit it and never re-parse the manifest.
    stat = manifest_path.stat()
    _CORPUS_CACHE[str(manifest_path.resolve())] = (
        (stat.st_mtime_ns, stat.st_size),
        corpus,
    )
    return store, manifest_path


def matrix_scheduler_kwargs(corpus: ScenarioCorpus, manifest_path: str | Path) -> dict:
    """The :class:`CampaignScheduler` wiring every matrix driver shares."""
    return {
        "runner": partial(matrix_job_runner, manifest_path=str(manifest_path)),
        "job_class": corpus.classes_of_case(),
    }


def run_matrix(
    corpus: ScenarioCorpus,
    store_dir: str | Path,
    plan: Optional[CampaignPlan] = None,
    options: Optional[SchedulerOptions] = None,
    resume: bool = True,
    on_result=None,
) -> tuple[CampaignReport, ResultsDatabase]:
    """Drive a full matrix campaign over ``corpus`` (benchmarks/API callers).

    Initialises the run store, persists the manifest, schedules every
    pending job through :func:`matrix_job_runner`, and returns the per-run
    report (with per-error-class stats) plus the merged results database.
    """
    plan = plan or corpus_plan(corpus)
    store, manifest_path = prepare_matrix_store(corpus, plan, store_dir, resume=resume)
    scheduler = CampaignScheduler(
        plan,
        store,
        options or SchedulerOptions(),
        **matrix_scheduler_kwargs(corpus, manifest_path),
    )
    report = scheduler.run(on_result=on_result)
    return report, store.merge_into_database(plan)
