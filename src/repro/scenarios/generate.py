"""Donor/recipient pair synthesis.

One :func:`synthesize_pair` call turns ``(error kind, format, seeded RNG)``
into a matched pair of MicroC applications:

* both applications read the *same* input fields of the shared format — the
  reader code is generated from the format's :class:`~repro.formats.fields.Field`
  layout (offset, size, endianness), assembling multi-byte fields from
  individual bytes with shifts and ors exactly like the hand-written
  applications in ``src/repro/apps/`` do (or via the ``read_u16/u32``
  builtins; the RNG picks a style per program, so a pair may mix styles and
  the rewrite stage has to prove the equivalence);
* the recipient uses one field at a seeded defect site without the
  protective check (:mod:`repro.scenarios.templates`);
* the donor performs the same computation behind the protective check.

Names are **content-addressed**: the application name ends in a digest of
both sources plus the seed/error field values, so two different generations
can never collide in the registry, and the same configuration always
produces byte-identical names (which is what makes campaign job ids — and
therefore ``--resume`` — stable across processes and runs).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Sequence

from ..apps.registry import Application, ErrorTarget
from ..formats.fields import FormatSpec
from ..formats.registry import get_format
from ..lang.trace import ErrorKind
from .templates import TEMPLATES, DefectPlan, DefectTemplate, FieldAccess


class ScenarioError(ValueError):
    """Raised when a scenario cannot be generated as requested."""


#: Function-name pools; the RNG picks per program for surface variety.
_RECIPIENT_FUNCTIONS = ("decode_frame", "parse_header", "read_image", "process_chunk")
_DONOR_FUNCTIONS = ("load_input", "validate_and_load", "scan_header", "import_frame")


@dataclass(frozen=True)
class ScenarioPair:
    """One generated donor/recipient pair plus its seed and error inputs.

    Mirrors the surface of :class:`repro.experiments.ErrorCase`
    (``application()``/``target()``/``seed_input()``/``error_input()``/
    ``format_name``) so the :mod:`repro.api` facade can run either without
    knowing which corpus it came from — except that ``application()``
    returns the held object directly instead of a registry lookup, because
    generated pairs are only registered for the duration of a run.
    """

    case_id: str
    error_kind: ErrorKind
    format_name: str
    index: int
    recipient: Application
    donor: Application
    error_values: dict[str, int] = dataclass_field(default_factory=dict)
    defect_fields: tuple[str, ...] = ()
    threshold: int = 0
    description: str = ""

    @property
    def donor_name(self) -> str:
        return self.donor.name

    @property
    def recipient_name(self) -> str:
        return self.recipient.name

    def application(self) -> Application:
        return self.recipient

    def target(self) -> ErrorTarget:
        return self.recipient.targets[0]

    @property
    def target_id(self) -> str:
        return self.target().target_id

    def seed_input(self) -> bytes:
        # The seed is always the format's canonical defaults; templates pick
        # fields whose defaults sit in the benign window.
        return get_format(self.format_name).build()

    def error_input(self) -> bytes:
        spec = get_format(self.format_name)
        return spec.with_values(self.seed_input(), **self.error_values)

    @property
    def digest(self) -> str:
        """The content digest embedded in the generated names."""
        return self.case_id.rsplit("-", 1)[-1]

    # -- serialisation (the corpus manifest) ---------------------------------------

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "error_kind": self.error_kind.value,
            "format_name": self.format_name,
            "index": self.index,
            "recipient": _application_to_dict(self.recipient),
            "donor": _application_to_dict(self.donor),
            "error_values": dict(self.error_values),
            "defect_fields": list(self.defect_fields),
            "threshold": self.threshold,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioPair":
        return cls(
            case_id=payload["case_id"],
            error_kind=ErrorKind(payload["error_kind"]),
            format_name=payload["format_name"],
            index=payload["index"],
            recipient=_application_from_dict(payload["recipient"]),
            donor=_application_from_dict(payload["donor"]),
            error_values=dict(payload.get("error_values", {})),
            defect_fields=tuple(payload.get("defect_fields", ())),
            threshold=payload.get("threshold", 0),
            description=payload.get("description", ""),
        )


def _application_to_dict(application: Application) -> dict:
    return {
        "name": application.name,
        "version": application.version,
        "source": application.source,
        "formats": list(application.formats),
        "role": application.role,
        "description": application.description,
        "library": application.library,
        "targets": [
            {
                "target_id": target.target_id,
                "error_kind": target.error_kind.value,
                "site_function": target.site_function,
                "description": target.description,
            }
            for target in application.targets
        ],
    }


def _application_from_dict(payload: dict) -> Application:
    return Application(
        name=payload["name"],
        version=payload["version"],
        source=payload["source"],
        formats=tuple(payload["formats"]),
        role=payload["role"],
        description=payload.get("description", ""),
        library=payload.get("library", ""),
        targets=tuple(
            ErrorTarget(
                target_id=entry["target_id"],
                error_kind=ErrorKind(entry["error_kind"]),
                site_function=entry["site_function"],
                description=entry.get("description", ""),
            )
            for entry in payload.get("targets", ())
        ),
    )


# -- field selection ---------------------------------------------------------------


def suitable_fields(spec: FormatSpec, template: DefectTemplate) -> list[FieldAccess]:
    """The format's fields this template can seed a defect on."""
    seed = spec.build()
    entries = list(spec.field_map(seed))
    names = _variable_names([entry.path for entry in entries])
    accesses = []
    for entry in entries:
        access = FieldAccess(
            path=entry.path,
            var=names[entry.path],
            offset=entry.offset,
            size=entry.size,
            endianness=entry.endianness,
            default=entry.read(seed),
        )
        if template.suits(access):
            accesses.append(access)
    return accesses


def _variable_names(paths: Sequence[str]) -> dict[str, str]:
    """Readable MicroC identifiers per field path (``/ihdr/width`` -> ``width``).

    When two paths share a leaf (GIF has ``/screen/width`` and
    ``/image/width``) every colliding path keeps its parent as a prefix, so
    donor and recipient — both named from the full field list — always agree.
    """
    leaves = {path: _identifier(path.rstrip("/").rsplit("/", 1)[-1]) for path in paths}
    counts: dict[str, int] = {}
    for leaf in leaves.values():
        counts[leaf] = counts.get(leaf, 0) + 1
    names = {}
    for path, leaf in leaves.items():
        if counts[leaf] > 1:
            segments = [part for part in path.split("/") if part]
            names[path] = _identifier("_".join(segments[-2:]))
        else:
            names[path] = leaf
    return names


def _identifier(text: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"field_{cleaned}"
    return cleaned


# -- reader codegen ----------------------------------------------------------------


def _reader_lines(fields: Sequence[FieldAccess], style: str) -> list[str]:
    """MicroC statements reading ``fields`` (offset order) into u32 locals."""
    ordered = sorted(fields, key=lambda access: access.offset)

    def manual(access: FieldAccess) -> bool:
        # The read_uN builtins only exist for 16 and 32 bits; odd-sized
        # fields (e.g. 24-bit lengths) always take the byte-assembly path.
        return style == "manual" or access.size not in (2, 4)

    lines: list[str] = []
    if any(access.size > 1 and manual(access) for access in ordered):
        widest = max(access.size for access in ordered if manual(access))
        for i in range(widest):
            lines.append(f"    u8 b{i};")
    cursor = 0
    for access in ordered:
        if access.offset > cursor:
            lines.append(f"    skip_bytes({access.offset - cursor});")
        cursor = access.offset + access.size
        if access.size == 1:
            lines.append(f"    u32 {access.var} = (u32) read_byte();")
            continue
        if not manual(access):
            suffix = "be" if access.endianness == "big" else "le"
            width = access.size * 8
            lines.append(f"    u32 {access.var} = (u32) read_u{width}_{suffix}();")
            continue
        for i in range(access.size):
            lines.append(f"    b{i} = read_byte();")
        parts = []
        for i in range(access.size):
            shift = (
                (access.size - 1 - i) * 8
                if access.endianness == "big"
                else i * 8
            )
            parts.append(f"((u32) b{i})" if shift == 0 else f"(((u32) b{i}) << {shift})")
        lines.append(f"    u32 {access.var} = " + " | ".join(parts) + ";")
    return lines


def _render_program(
    title: str,
    function: str,
    reader: Sequence[str],
    body: Sequence[str],
    fields: Sequence[FieldAccess],
) -> str:
    lines = [f"// {title}", "", f"int {function}() {{"]
    lines.extend(reader)
    lines.extend(body)
    for access in sorted(fields, key=lambda entry: entry.offset):
        lines.append(f"    emit({access.var});")
    lines.append("    return 0;")
    lines.append("}")
    lines.append("")
    lines.append("int main() {")
    lines.append(f"    return {function}();")
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- pair synthesis ----------------------------------------------------------------


def synthesize_pair(
    error_kind: ErrorKind,
    format_name: str,
    index: int = 0,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    candidates: Optional[Sequence[FieldAccess]] = None,
) -> ScenarioPair:
    """Generate one matched donor/recipient pair for an error class.

    Deterministic: the RNG is derived from ``(seed, error_kind, format,
    index)`` unless one is passed in, and everything else is a pure function
    of its draws.  ``candidates`` short-circuits the field-suitability scan
    when the caller (the corpus generator) has already computed it.
    """
    template = TEMPLATES.get(error_kind)
    if template is None:
        raise ScenarioError(f"no defect template for error kind {error_kind.value!r}")
    if candidates is None:
        candidates = suitable_fields(get_format(format_name), template)
    if len(candidates) < template.field_count:
        raise ScenarioError(
            f"format {format_name!r} has no suitable fields for "
            f"{error_kind.value} (need {template.field_count})"
        )
    if rng is None:
        rng = random.Random(f"{seed}:{error_kind.value}:{format_name}:{index}")

    chosen = rng.sample(candidates, template.field_count)
    chosen.sort(key=lambda access: access.offset)
    plan = template.instantiate(chosen, rng)

    recipient_function = rng.choice(_RECIPIENT_FUNCTIONS)
    donor_function = rng.choice(_DONOR_FUNCTIONS)
    recipient_style = rng.choice(("manual", "builtin"))
    donor_style = rng.choice(("manual", "builtin"))

    kind_slug = error_kind.value.replace("-", "")
    recipient_source = _render_program(
        f"Generated recipient: seeded {error_kind.value} over {format_name} "
        f"({plan.description}).",
        recipient_function,
        _reader_lines(chosen, recipient_style),
        plan.recipient_body,
        chosen,
    )
    donor_source = _render_program(
        f"Generated donor: protective {error_kind.value} check over {format_name}.",
        donor_function,
        _reader_lines(chosen, donor_style),
        plan.donor_body,
        chosen,
    )

    digest = hashlib.sha1(
        json.dumps(
            {
                "recipient": recipient_source,
                "donor": donor_source,
                "error_values": sorted(plan.error_values.items()),
                "format": format_name,
            },
            sort_keys=True,
        ).encode("utf-8")
    ).hexdigest()[:8]

    case_id = f"gen-{kind_slug}-{format_name}-{index}-{digest}"
    # Names end in the digest so Application.full_name stays the bare name.
    recipient_name = f"gen-{kind_slug}-rx{index}-{digest}"
    donor_name = f"gen-{kind_slug}-dn{index}-{digest}"
    defect_line = recipient_source.splitlines().index(plan.defect_marker) + 1

    target = ErrorTarget(
        target_id=f"{recipient_name}.c:{defect_line}",
        error_kind=error_kind,
        site_function=recipient_function,
        description=plan.description,
    )
    recipient = Application(
        name=recipient_name,
        version=digest,
        source=recipient_source,
        formats=(format_name,),
        role="recipient",
        library=f"gen-{format_name}",
        description=f"generated recipient with a seeded {error_kind.value} defect",
        targets=(target,),
    )
    donor = Application(
        name=donor_name,
        version=digest,
        source=donor_source,
        formats=(format_name,),
        role="donor",
        library=f"gen-{format_name}",
        description=f"generated donor carrying the {error_kind.value} protective check",
    )
    return ScenarioPair(
        case_id=case_id,
        error_kind=error_kind,
        format_name=format_name,
        index=index,
        recipient=recipient,
        donor=donor,
        error_values=dict(plan.error_values),
        defect_fields=tuple(access.path for access in chosen),
        threshold=plan.threshold,
        description=plan.description,
    )
