"""Donor/recipient pair synthesis.

One :func:`synthesize_pair` call turns ``(error kind, format, seeded RNG)``
into a matched pair of MicroC applications:

* both applications read the *same* input fields of the shared format — the
  reader code is generated from the format's :class:`~repro.formats.fields.Field`
  layout (offset, size, endianness), assembling multi-byte fields from
  individual bytes with shifts and ors exactly like the hand-written
  applications in ``src/repro/apps/`` do (or via the ``read_u16/u32``
  builtins; the RNG picks a style per program, so a pair may mix styles and
  the rewrite stage has to prove the equivalence);
* the recipient uses one field at a seeded defect site without the
  protective check (:mod:`repro.scenarios.templates`);
* the donor performs the same computation behind the protective check.

Names are **content-addressed**: the application name ends in a digest of
both sources plus the seed/error field values, so two different generations
can never collide in the registry, and the same configuration always
produces byte-identical names (which is what makes campaign job ids — and
therefore ``--resume`` — stable across processes and runs).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field as dataclass_field, replace as dataclass_replace
from typing import Optional, Sequence

from ..apps.registry import Application, ErrorTarget
from ..formats.fields import FormatSpec
from ..formats.registry import get_format
from ..lang.trace import ErrorKind
from .templates import (
    NEAR_MISS_MODES,
    TEMPLATES,
    DefectPlan,
    DefectTemplate,
    FieldAccess,
    rename_locals,
)


class ScenarioError(ValueError):
    """Raised when a scenario cannot be generated as requested."""


#: Function-name pools; the RNG picks per program for surface variety.
_RECIPIENT_FUNCTIONS = ("decode_frame", "parse_header", "read_image", "process_chunk")
_DONOR_FUNCTIONS = ("load_input", "validate_and_load", "scan_header", "import_frame")


@dataclass(frozen=True)
class ScenarioPair:
    """One generated donor/recipient pair plus its seed and error inputs.

    Mirrors the surface of :class:`repro.experiments.ErrorCase`
    (``application()``/``target()``/``seed_input()``/``error_input()``/
    ``format_name``) so the :mod:`repro.api` facade can run either without
    knowing which corpus it came from — except that ``application()``
    returns the held object directly instead of a registry lookup, because
    generated pairs are only registered for the duration of a run.
    """

    case_id: str
    error_kind: ErrorKind
    format_name: str
    index: int
    recipient: Application
    donor: Application
    error_values: dict[str, int] = dataclass_field(default_factory=dict)
    defect_fields: tuple[str, ...] = ()
    threshold: int = 0
    description: str = ""
    #: Which hardness dimension generated this pair (see
    #: :data:`repro.scenarios.corpus.HARDNESS_DIMENSIONS`).
    hardness: str = "baseline"
    #: Number of seeded defects (``> 1`` for multi-defect recipients).
    defect_count: int = 1
    #: Error kinds of every seeded defect, in defect order (empty means the
    #: single :attr:`error_kind`).
    error_kinds: tuple[str, ...] = ()
    #: Per-defect trigger field values, in defect order (empty for
    #: single-defect pairs; the facade turns these into probe inputs).
    trigger_values: tuple[dict, ...] = ()
    #: The donor reads the recipient's byte stream through a different
    #: format's field vocabulary and decomposition.
    cross_format: bool = False
    #: Name of the format whose layout the donor is written against (set
    #: only for cross-format pairs).
    donor_format: str = ""
    #: The pair's ``donor`` is an almost-protective near-miss that
    #: validation must reject; any accepted transfer is a false accept.
    adversarial: bool = False
    #: Which near-miss construction (``fails-open``/``overbroad``).
    near_miss_mode: str = ""
    #: The genuinely protective donor for adversarial pairs (differential
    #: tests assert it is accepted on the same recipient).
    true_donor: Optional[Application] = None
    #: Decoy donors that protect only a subset of a multi-defect
    #: recipient's defects; the matrix runs them ahead of the full donor to
    #: exercise the multi-donor search for real.
    decoy_donors: tuple[Application, ...] = ()

    @property
    def donor_name(self) -> str:
        return self.donor.name

    @property
    def donor_pool(self) -> tuple[Application, ...]:
        """Every donor a matrix job should attempt, decoys first."""
        return (*self.decoy_donors, self.donor)

    @property
    def all_kinds(self) -> tuple[ErrorKind, ...]:
        """Every seeded defect's kind, in defect order."""
        if self.error_kinds:
            return tuple(ErrorKind(value) for value in self.error_kinds)
        return (self.error_kind,)

    def probe_inputs(self) -> tuple[bytes, ...]:
        """One known error trigger per defect (multi-defect pairs only)."""
        if not self.trigger_values:
            return ()
        spec = get_format(self.format_name)
        seed = self.seed_input()
        return tuple(
            spec.with_values(seed, **values) for values in self.trigger_values
        )

    @property
    def recipient_name(self) -> str:
        return self.recipient.name

    def application(self) -> Application:
        return self.recipient

    def target(self) -> ErrorTarget:
        return self.recipient.targets[0]

    @property
    def target_id(self) -> str:
        return self.target().target_id

    def seed_input(self) -> bytes:
        # The seed is always the format's canonical defaults; templates pick
        # fields whose defaults sit in the benign window.
        return get_format(self.format_name).build()

    def error_input(self) -> bytes:
        spec = get_format(self.format_name)
        return spec.with_values(self.seed_input(), **self.error_values)

    @property
    def digest(self) -> str:
        """The content digest embedded in the generated names."""
        return self.case_id.rsplit("-", 1)[-1]

    # -- serialisation (the corpus manifest) ---------------------------------------

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "error_kind": self.error_kind.value,
            "format_name": self.format_name,
            "index": self.index,
            "recipient": _application_to_dict(self.recipient),
            "donor": _application_to_dict(self.donor),
            "error_values": dict(self.error_values),
            "defect_fields": list(self.defect_fields),
            "threshold": self.threshold,
            "description": self.description,
            "hardness": self.hardness,
            "defect_count": self.defect_count,
            "error_kinds": list(self.error_kinds),
            "trigger_values": [dict(values) for values in self.trigger_values],
            "cross_format": self.cross_format,
            "donor_format": self.donor_format,
            "adversarial": self.adversarial,
            "near_miss_mode": self.near_miss_mode,
            "true_donor": (
                _application_to_dict(self.true_donor) if self.true_donor else None
            ),
            "decoy_donors": [
                _application_to_dict(donor) for donor in self.decoy_donors
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioPair":
        true_donor = payload.get("true_donor")
        return cls(
            case_id=payload["case_id"],
            error_kind=ErrorKind(payload["error_kind"]),
            format_name=payload["format_name"],
            index=payload["index"],
            recipient=_application_from_dict(payload["recipient"]),
            donor=_application_from_dict(payload["donor"]),
            error_values=dict(payload.get("error_values", {})),
            defect_fields=tuple(payload.get("defect_fields", ())),
            threshold=payload.get("threshold", 0),
            description=payload.get("description", ""),
            hardness=payload.get("hardness", "baseline"),
            defect_count=payload.get("defect_count", 1),
            error_kinds=tuple(payload.get("error_kinds", ())),
            trigger_values=tuple(
                dict(values) for values in payload.get("trigger_values", ())
            ),
            cross_format=payload.get("cross_format", False),
            donor_format=payload.get("donor_format", ""),
            adversarial=payload.get("adversarial", False),
            near_miss_mode=payload.get("near_miss_mode", ""),
            true_donor=_application_from_dict(true_donor) if true_donor else None,
            decoy_donors=tuple(
                _application_from_dict(entry)
                for entry in payload.get("decoy_donors", ())
            ),
        )


def _application_to_dict(application: Application) -> dict:
    return {
        "name": application.name,
        "version": application.version,
        "source": application.source,
        "formats": list(application.formats),
        "role": application.role,
        "description": application.description,
        "library": application.library,
        "targets": [
            {
                "target_id": target.target_id,
                "error_kind": target.error_kind.value,
                "site_function": target.site_function,
                "description": target.description,
            }
            for target in application.targets
        ],
    }


def _application_from_dict(payload: dict) -> Application:
    return Application(
        name=payload["name"],
        version=payload["version"],
        source=payload["source"],
        formats=tuple(payload["formats"]),
        role=payload["role"],
        description=payload.get("description", ""),
        library=payload.get("library", ""),
        targets=tuple(
            ErrorTarget(
                target_id=entry["target_id"],
                error_kind=ErrorKind(entry["error_kind"]),
                site_function=entry["site_function"],
                description=entry.get("description", ""),
            )
            for entry in payload.get("targets", ())
        ),
    )


# -- field selection ---------------------------------------------------------------


def suitable_fields(
    spec: FormatSpec, template: DefectTemplate, allow_empty: bool = False
) -> list[FieldAccess]:
    """The format's fields this template can seed a defect on.

    An empty result raises a :class:`ScenarioError` naming the template and
    the format (pass ``allow_empty=True`` to get the bare list instead —
    the corpus generator scans formats that way).  Historically the empty
    list leaked through to a confusing "no suitable fields (need N)" error
    much later; now the incompatibility is reported where it is detected,
    with the constraints that were violated.
    """
    seed = spec.build()
    entries = list(spec.field_map(seed))
    names = _variable_names([entry.path for entry in entries])
    accesses = []
    for entry in entries:
        access = FieldAccess(
            path=entry.path,
            var=names[entry.path],
            offset=entry.offset,
            size=entry.size,
            endianness=entry.endianness,
            default=entry.read(seed),
        )
        if template.suits(access):
            accesses.append(access)
    if not accesses and not allow_empty:
        constraints = [
            f"width >= {template.min_field_bits} bits",
            "width <= 32 bits",
            "format default in (0, 64]",
        ]
        if template.requires_nonzero_default:
            constraints.append("non-zero format default")
        raise ScenarioError(
            f"no field of format {spec.name!r} suits the {template.kind.value} "
            f"template ({type(template).__name__}); it needs "
            f"{template.field_count} field(s) with " + ", ".join(constraints)
        )
    return accesses


def _variable_names(paths: Sequence[str]) -> dict[str, str]:
    """Readable MicroC identifiers per field path (``/ihdr/width`` -> ``width``).

    When two paths share a leaf (GIF has ``/screen/width`` and
    ``/image/width``) every colliding path keeps its parent as a prefix, so
    donor and recipient — both named from the full field list — always agree.
    """
    leaves = {path: _identifier(path.rstrip("/").rsplit("/", 1)[-1]) for path in paths}
    counts: dict[str, int] = {}
    for leaf in leaves.values():
        counts[leaf] = counts.get(leaf, 0) + 1
    names = {}
    for path, leaf in leaves.items():
        if counts[leaf] > 1:
            segments = [part for part in path.split("/") if part]
            names[path] = _identifier("_".join(segments[-2:]))
        else:
            names[path] = leaf
    return names


def _identifier(text: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"field_{cleaned}"
    return cleaned


# -- reader codegen ----------------------------------------------------------------


def _reader_lines(fields: Sequence[FieldAccess], style: str) -> list[str]:
    """MicroC statements reading ``fields`` (offset order) into u32 locals."""
    ordered = sorted(fields, key=lambda access: access.offset)

    def manual(access: FieldAccess) -> bool:
        # The read_uN builtins only exist for 16 and 32 bits; odd-sized
        # fields (e.g. 24-bit lengths) always take the byte-assembly path.
        return style == "manual" or access.size not in (2, 4)

    lines: list[str] = []
    if any(access.size > 1 and manual(access) for access in ordered):
        widest = max(access.size for access in ordered if manual(access))
        for i in range(widest):
            lines.append(f"    u8 b{i};")
    cursor = 0
    for access in ordered:
        if access.offset > cursor:
            lines.append(f"    skip_bytes({access.offset - cursor});")
        cursor = access.offset + access.size
        if access.size == 1:
            lines.append(f"    u32 {access.var} = (u32) read_byte();")
            continue
        if not manual(access):
            suffix = "be" if access.endianness == "big" else "le"
            width = access.size * 8
            lines.append(f"    u32 {access.var} = (u32) read_u{width}_{suffix}();")
            continue
        for i in range(access.size):
            lines.append(f"    b{i} = read_byte();")
        parts = []
        for i in range(access.size):
            shift = (
                (access.size - 1 - i) * 8
                if access.endianness == "big"
                else i * 8
            )
            parts.append(f"((u32) b{i})" if shift == 0 else f"(((u32) b{i}) << {shift})")
        lines.append(f"    u32 {access.var} = " + " | ".join(parts) + ";")
    return lines


def _cross_reader_lines(
    fields: Sequence[FieldAccess], rng: random.Random
) -> list[str]:
    """A foreign-layout reader: same byte stream, different decomposition.

    Cross-format donors parse the recipient's byte stream the way *their*
    format would: every multi-byte field is assembled from two windows split
    at an RNG-chosen byte boundary (the way a foreign layout would group
    those bytes into adjacent narrower fields) and recombined with shifts.
    The values are the same — the expression structure the solver has to
    reason through is not, so a transferred check only validates if the
    rewrite genuinely translates between the two decompositions.
    """
    ordered = sorted(fields, key=lambda access: access.offset)
    lines: list[str] = []
    widest = max((access.size for access in ordered), default=1)
    if widest > 1:
        for i in range(widest):
            lines.append(f"    u8 b{i};")
    cursor = 0
    for access in ordered:
        if access.offset > cursor:
            lines.append(f"    skip_bytes({access.offset - cursor});")
        cursor = access.offset + access.size
        if access.size == 1:
            lines.append(f"    u32 {access.var} = (u32) read_byte();")
            continue
        split = rng.randrange(1, access.size)
        for i in range(access.size):
            lines.append(f"    b{i} = read_byte();")

        def window(start: int, stop: int) -> str:
            parts = []
            for i in range(start, stop):
                shift = (
                    (stop - 1 - i) * 8
                    if access.endianness == "big"
                    else (i - start) * 8
                )
                parts.append(
                    f"((u32) b{i})" if shift == 0 else f"(((u32) b{i}) << {shift})"
                )
            return " | ".join(parts)

        lines.append(f"    u32 {access.var}_w0 = {window(0, split)};")
        lines.append(f"    u32 {access.var}_w1 = {window(split, access.size)};")
        if access.endianness == "big":
            combined = (
                f"({access.var}_w0 << {(access.size - split) * 8}) | {access.var}_w1"
            )
        else:
            combined = f"{access.var}_w0 | ({access.var}_w1 << {split * 8})"
        lines.append(f"    u32 {access.var} = {combined};")
    return lines


def _render_program(
    title: str,
    function: str,
    reader: Sequence[str],
    body: Sequence[str],
    fields: Sequence[FieldAccess],
) -> str:
    lines = [f"// {title}", "", f"int {function}() {{"]
    lines.extend(reader)
    lines.extend(body)
    for access in sorted(fields, key=lambda entry: entry.offset):
        lines.append(f"    emit({access.var});")
    lines.append("    return 0;")
    lines.append("}")
    lines.append("")
    lines.append("int main() {")
    lines.append(f"    return {function}();")
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- pair synthesis ----------------------------------------------------------------


def synthesize_pair(
    error_kind: ErrorKind,
    format_name: str,
    index: int = 0,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    candidates: Optional[Sequence[FieldAccess]] = None,
) -> ScenarioPair:
    """Generate one matched donor/recipient pair for an error class.

    Deterministic: the RNG is derived from ``(seed, error_kind, format,
    index)`` unless one is passed in, and everything else is a pure function
    of its draws.  ``candidates`` short-circuits the field-suitability scan
    when the caller (the corpus generator) has already computed it.
    """
    template = TEMPLATES.get(error_kind)
    if template is None:
        raise ScenarioError(f"no defect template for error kind {error_kind.value!r}")
    if candidates is None:
        candidates = suitable_fields(get_format(format_name), template)
    if len(candidates) < template.field_count:
        raise ScenarioError(
            f"format {format_name!r} has no suitable fields for "
            f"{error_kind.value} (need {template.field_count})"
        )
    if rng is None:
        rng = random.Random(f"{seed}:{error_kind.value}:{format_name}:{index}")

    chosen = rng.sample(candidates, template.field_count)
    chosen.sort(key=lambda access: access.offset)
    plan = template.instantiate(chosen, rng)

    recipient_function = rng.choice(_RECIPIENT_FUNCTIONS)
    donor_function = rng.choice(_DONOR_FUNCTIONS)
    recipient_style = rng.choice(("manual", "builtin"))
    donor_style = rng.choice(("manual", "builtin"))

    kind_slug = error_kind.value.replace("-", "")
    recipient_source = _render_program(
        f"Generated recipient: seeded {error_kind.value} over {format_name} "
        f"({plan.description}).",
        recipient_function,
        _reader_lines(chosen, recipient_style),
        plan.recipient_body,
        chosen,
    )
    donor_source = _render_program(
        f"Generated donor: protective {error_kind.value} check over {format_name}.",
        donor_function,
        _reader_lines(chosen, donor_style),
        plan.donor_body,
        chosen,
    )

    digest = hashlib.sha1(
        json.dumps(
            {
                "recipient": recipient_source,
                "donor": donor_source,
                "error_values": sorted(plan.error_values.items()),
                "format": format_name,
            },
            sort_keys=True,
        ).encode("utf-8")
    ).hexdigest()[:8]

    case_id = f"gen-{kind_slug}-{format_name}-{index}-{digest}"
    # Names end in the digest so Application.full_name stays the bare name.
    recipient_name = f"gen-{kind_slug}-rx{index}-{digest}"
    donor_name = f"gen-{kind_slug}-dn{index}-{digest}"
    defect_line = recipient_source.splitlines().index(plan.defect_marker) + 1

    target = ErrorTarget(
        target_id=f"{recipient_name}.c:{defect_line}",
        error_kind=error_kind,
        site_function=recipient_function,
        description=plan.description,
    )
    recipient = Application(
        name=recipient_name,
        version=digest,
        source=recipient_source,
        formats=(format_name,),
        role="recipient",
        library=f"gen-{format_name}",
        description=f"generated recipient with a seeded {error_kind.value} defect",
        targets=(target,),
    )
    donor = Application(
        name=donor_name,
        version=digest,
        source=donor_source,
        formats=(format_name,),
        role="donor",
        library=f"gen-{format_name}",
        description=f"generated donor carrying the {error_kind.value} protective check",
    )
    return ScenarioPair(
        case_id=case_id,
        error_kind=error_kind,
        format_name=format_name,
        index=index,
        recipient=recipient,
        donor=donor,
        error_values=dict(plan.error_values),
        defect_fields=tuple(access.path for access in chosen),
        threshold=plan.threshold,
        description=plan.description,
    )


# -- hardness-dimension synthesis --------------------------------------------------


def _content_digest(**payload) -> str:
    return hashlib.sha1(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()[:8]


def _regression_rows(spec: FormatSpec, paths: Sequence[str]) -> list[dict]:
    """Per-field values of the regression corpus validation will replay.

    Uses the engine's defaults (:class:`~repro.core.pipeline.CodePhageOptions`
    and the seeded :class:`~repro.formats.generator.InputGenerator`), so
    bounds derived from these rows hold exactly for the validator's step-3
    comparison under default options.
    """
    from ..core.pipeline import CodePhageOptions
    from ..formats.generator import InputGenerator

    wanted = set(paths)
    corpus = InputGenerator(spec).regression_corpus(CodePhageOptions().regression_inputs)
    rows = []
    for data in corpus:
        rows.append(
            {
                entry.path: entry.read(data)
                for entry in spec.field_map(data)
                if entry.path in wanted
            }
        )
    return rows


def _donor_application(
    name: str, digest: str, source: str, format_name: str, description: str
) -> Application:
    return Application(
        name=name,
        version=digest,
        source=source,
        formats=(format_name,),
        role="donor",
        library=f"gen-{format_name}",
        description=description,
    )


def synthesize_multi_defect_pair(
    error_kinds: Sequence[ErrorKind],
    format_name: str,
    index: int = 0,
    seed: int = 0,
) -> ScenarioPair:
    """Generate a recipient stacking several defects of distinct kinds.

    Each defect consumes its own disjoint field set and carries its own
    trigger input; the donor stacks every protective check, and one decoy
    donor protects only the first defect (a matrix job that runs the decoy
    first gets a partial repair, residual errors, and a donor fallback —
    the multi-donor search exercised for real).  Defect ``i``'s template
    locals are renamed with a ``_d{i+1}`` suffix so stacked bodies share
    one function scope without collisions.
    """
    kinds = tuple(error_kinds)
    if not 2 <= len(kinds) <= 4:
        raise ScenarioError(
            f"a multi-defect recipient stacks 2-4 defects, got {len(kinds)}"
        )
    if len(set(kinds)) != len(kinds):
        raise ScenarioError("multi-defect kinds must be distinct")
    spec = get_format(format_name)
    stack_slug = "+".join(kind.value for kind in kinds)
    rng = random.Random(f"{seed}:multi:{stack_slug}:{format_name}:{index}")

    used_paths: set[str] = set()
    slots: list[tuple[DefectTemplate, list[FieldAccess], DefectPlan]] = []
    for kind in kinds:
        template = TEMPLATES.get(kind)
        if template is None:
            raise ScenarioError(f"no defect template for error kind {kind.value!r}")
        candidates = [
            access
            for access in suitable_fields(spec, template, allow_empty=True)
            if access.path not in used_paths
        ]
        if len(candidates) < template.field_count:
            raise ScenarioError(
                f"format {format_name!r} cannot stack {stack_slug}: no disjoint "
                f"fields left for {kind.value} (need {template.field_count})"
            )
        chosen = rng.sample(candidates, template.field_count)
        chosen.sort(key=lambda access: access.offset)
        used_paths.update(access.path for access in chosen)
        slots.append((template, chosen, template.instantiate(chosen, rng)))

    all_fields = sorted(
        (access for _, chosen, _ in slots for access in chosen),
        key=lambda access: access.offset,
    )
    recipient_body: list[str] = []
    donor_body: list[str] = []
    markers: list[str] = []
    trigger_values: list[dict] = []
    for slot_index, (template, _, plan) in enumerate(slots):
        mapping = {name: f"{name}_d{slot_index + 1}" for name in template.local_names}
        recipient_body.extend(rename_locals(plan.recipient_body, mapping))
        donor_body.extend(rename_locals(plan.donor_body, mapping))
        markers.append(rename_locals((plan.defect_marker,), mapping)[0])
        trigger_values.append(dict(plan.error_values))

    recipient_function = rng.choice(_RECIPIENT_FUNCTIONS)
    recipient_source = _render_program(
        f"Generated recipient: {len(slots)} stacked defects ({stack_slug}) "
        f"over {format_name}.",
        recipient_function,
        _reader_lines(all_fields, rng.choice(("manual", "builtin"))),
        recipient_body,
        all_fields,
    )
    donor_source = _render_program(
        f"Generated donor: the full {len(slots)}-check protective stack over "
        f"{format_name}.",
        rng.choice(_DONOR_FUNCTIONS),
        _reader_lines(all_fields, rng.choice(("manual", "builtin"))),
        donor_body,
        all_fields,
    )
    decoy_template, decoy_fields, decoy_plan = slots[0]
    decoy_source = _render_program(
        f"Generated decoy donor: only the {kinds[0].value} check over "
        f"{format_name}.",
        rng.choice(_DONOR_FUNCTIONS),
        _reader_lines(decoy_fields, rng.choice(("manual", "builtin"))),
        rename_locals(
            decoy_plan.donor_body,
            {name: f"{name}_d1" for name in decoy_template.local_names},
        ),
        decoy_fields,
    )

    digest = _content_digest(
        recipient=recipient_source,
        donor=donor_source,
        decoy=decoy_source,
        trigger_values=[sorted(values.items()) for values in trigger_values],
        format=format_name,
    )
    slug = f"multi{len(slots)}"
    case_id = f"gen-{slug}-{format_name}-{index}-{digest}"
    recipient_name = f"gen-{slug}-rx{index}-{digest}"
    source_lines = recipient_source.splitlines()
    targets = tuple(
        ErrorTarget(
            target_id=f"{recipient_name}.c:{source_lines.index(marker) + 1}",
            error_kind=kind,
            site_function=recipient_function,
            description=plan.description,
        )
        for marker, kind, (_, _, plan) in zip(markers, kinds, slots)
    )
    recipient = Application(
        name=recipient_name,
        version=digest,
        source=recipient_source,
        formats=(format_name,),
        role="recipient",
        library=f"gen-{format_name}",
        description=f"generated recipient with {len(slots)} stacked defects "
        f"({stack_slug})",
        targets=targets,
    )
    donor = _donor_application(
        f"gen-{slug}-dn{index}-{digest}",
        digest,
        donor_source,
        format_name,
        f"generated donor carrying the full {stack_slug} check stack",
    )
    decoy = _donor_application(
        f"gen-{slug}-dc{index}-{digest}",
        digest,
        decoy_source,
        format_name,
        f"generated decoy donor carrying only the {kinds[0].value} check",
    )
    return ScenarioPair(
        case_id=case_id,
        error_kind=kinds[0],
        format_name=format_name,
        index=index,
        recipient=recipient,
        donor=donor,
        error_values=dict(trigger_values[0]),
        defect_fields=tuple(access.path for access in all_fields),
        threshold=slots[0][2].threshold,
        description="; ".join(plan.description for _, _, plan in slots),
        hardness="multi_defect",
        defect_count=len(slots),
        error_kinds=tuple(kind.value for kind in kinds),
        trigger_values=tuple(trigger_values),
        decoy_donors=(decoy,),
    )


def synthesize_cross_format_pair(
    error_kind: ErrorKind,
    format_name: str,
    donor_format: str,
    index: int = 0,
    seed: int = 0,
) -> ScenarioPair:
    """Generate a pair whose donor is written against a foreign layout.

    The donor consumes the recipient-format byte stream, but through
    ``donor_format``'s field vocabulary (its locals are named after the
    foreign format's fields) and a foreign decomposition (every multi-byte
    field assembled as two split windows — see :func:`_cross_reader_lines`).
    The transferred check therefore only validates if the rewrite stage
    translates the donor's expression structure into the recipient's field
    symbols; simple name matching finds nothing shared.
    """
    if donor_format == format_name:
        raise ScenarioError(
            f"cross-format donor needs a different layout than {format_name!r}"
        )
    template = TEMPLATES.get(error_kind)
    if template is None:
        raise ScenarioError(f"no defect template for error kind {error_kind.value!r}")
    spec = get_format(format_name)
    donor_spec = get_format(donor_format)
    rng = random.Random(
        f"{seed}:cross:{error_kind.value}:{format_name}:{donor_format}:{index}"
    )
    candidates = suitable_fields(spec, template)
    if len(candidates) < template.field_count:
        raise ScenarioError(
            f"format {format_name!r} has no suitable fields for "
            f"{error_kind.value} (need {template.field_count})"
        )
    chosen = rng.sample(candidates, template.field_count)
    chosen.sort(key=lambda access: access.offset)
    plan = template.instantiate(chosen, rng)

    donor_seed = donor_spec.build()
    vocab = list(
        _variable_names(
            [entry.path for entry in donor_spec.field_map(donor_seed)]
        ).values()
    )
    prefix = _identifier(donor_format)
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for position, access in enumerate(chosen):
        base = f"{prefix}_{vocab[position % len(vocab)]}"
        name, suffix = base, 2
        while name in used:
            name = f"{base}{suffix}"
            suffix += 1
        used.add(name)
        mapping[access.var] = name
    donor_fields = [
        dataclass_replace(access, var=mapping[access.var]) for access in chosen
    ]

    kind_slug = error_kind.value.replace("-", "")
    recipient_function = rng.choice(_RECIPIENT_FUNCTIONS)
    recipient_source = _render_program(
        f"Generated recipient: seeded {error_kind.value} over {format_name} "
        f"({plan.description}).",
        recipient_function,
        _reader_lines(chosen, rng.choice(("manual", "builtin"))),
        plan.recipient_body,
        chosen,
    )
    donor_source = _render_program(
        f"Generated donor: protective {error_kind.value} check through a "
        f"{donor_format}-layout reader.",
        rng.choice(_DONOR_FUNCTIONS),
        _cross_reader_lines(donor_fields, rng),
        rename_locals(plan.donor_body, mapping),
        donor_fields,
    )

    digest = _content_digest(
        recipient=recipient_source,
        donor=donor_source,
        error_values=sorted(plan.error_values.items()),
        format=format_name,
        donor_format=donor_format,
    )
    case_id = f"gen-x{kind_slug}-{format_name}-{donor_format}-{index}-{digest}"
    recipient_name = f"gen-x{kind_slug}-rx{index}-{digest}"
    defect_line = recipient_source.splitlines().index(plan.defect_marker) + 1
    recipient = Application(
        name=recipient_name,
        version=digest,
        source=recipient_source,
        formats=(format_name,),
        role="recipient",
        library=f"gen-{format_name}",
        description=f"generated recipient with a seeded {error_kind.value} defect",
        targets=(
            ErrorTarget(
                target_id=f"{recipient_name}.c:{defect_line}",
                error_kind=error_kind,
                site_function=recipient_function,
                description=plan.description,
            ),
        ),
    )
    donor = _donor_application(
        f"gen-x{kind_slug}-dn{index}-{digest}",
        digest,
        donor_source,
        donor_format,
        f"generated {donor_format}-layout donor carrying the "
        f"{error_kind.value} protective check",
    )
    return ScenarioPair(
        case_id=case_id,
        error_kind=error_kind,
        format_name=format_name,
        index=index,
        recipient=recipient,
        donor=donor,
        error_values=dict(plan.error_values),
        defect_fields=tuple(access.path for access in chosen),
        threshold=plan.threshold,
        description=plan.description,
        hardness="cross_format",
        cross_format=True,
        donor_format=donor_format,
    )


def synthesize_near_miss_pair(
    error_kind: ErrorKind,
    format_name: str,
    index: int = 0,
    seed: int = 0,
    mode: str = "fails-open",
) -> ScenarioPair:
    """Generate an adversarial pair whose donor check is almost protective.

    The pair's ``donor`` is the near-miss (the matrix runs it and must
    reject the transfer — any accepted one is a false accept), and
    :attr:`ScenarioPair.true_donor` carries the genuinely protective donor
    for the same recipient (differential tests assert it still validates).
    """
    if mode not in NEAR_MISS_MODES:
        raise ScenarioError(
            f"unknown near-miss mode {mode!r}; one of {NEAR_MISS_MODES}"
        )
    template = TEMPLATES.get(error_kind)
    if template is None:
        raise ScenarioError(f"no defect template for error kind {error_kind.value!r}")
    spec = get_format(format_name)
    rng = random.Random(
        f"{seed}:nearmiss:{mode}:{error_kind.value}:{format_name}:{index}"
    )
    candidates = suitable_fields(spec, template)
    if len(candidates) < template.field_count:
        raise ScenarioError(
            f"format {format_name!r} has no suitable fields for "
            f"{error_kind.value} (need {template.field_count})"
        )
    rows = _regression_rows(spec, [access.path for access in candidates])

    if mode == "overbroad":
        # The overbroad bound must sit inside the benign window, which needs
        # a regression value strictly past the field's default; scan field
        # combinations in offset order for the first feasible one.
        ordered = sorted(candidates, key=lambda access: access.offset)
        if template.field_count == 1:
            combos = [[access] for access in ordered]
        else:
            combos = [
                [first, second]
                for position, first in enumerate(ordered)
                for second in ordered[position + 1 :]
            ]
        chosen = next(
            (
                combo
                for combo in combos
                if template.near_miss_condition(combo, None, mode, rows) is not None
            ),
            None,
        )
        if chosen is None:
            raise ScenarioError(
                f"no overbroad near-miss window for {error_kind.value} on "
                f"{format_name!r}: no regression value escapes the field defaults"
            )
    else:
        chosen = rng.sample(candidates, template.field_count)
        chosen.sort(key=lambda access: access.offset)
    plan = template.instantiate(chosen, rng)
    near_miss_body = template.near_miss_donor_body(chosen, plan, mode, rows)
    if near_miss_body is None:
        raise ScenarioError(
            f"near-miss mode {mode!r} is infeasible for {error_kind.value} on "
            f"{format_name!r}"
        )

    kind_slug = error_kind.value.replace("-", "")
    recipient_function = rng.choice(_RECIPIENT_FUNCTIONS)
    recipient_source = _render_program(
        f"Generated recipient: seeded {error_kind.value} over {format_name} "
        f"({plan.description}).",
        recipient_function,
        _reader_lines(chosen, rng.choice(("manual", "builtin"))),
        plan.recipient_body,
        chosen,
    )
    true_donor_source = _render_program(
        f"Generated donor: protective {error_kind.value} check over {format_name}.",
        rng.choice(_DONOR_FUNCTIONS),
        _reader_lines(chosen, rng.choice(("manual", "builtin"))),
        plan.donor_body,
        chosen,
    )
    near_miss_source = _render_program(
        f"Generated near-miss donor ({mode}): almost-protective "
        f"{error_kind.value} check over {format_name}.",
        rng.choice(_DONOR_FUNCTIONS),
        _reader_lines(chosen, rng.choice(("manual", "builtin"))),
        near_miss_body,
        chosen,
    )

    digest = _content_digest(
        recipient=recipient_source,
        near_miss=near_miss_source,
        true_donor=true_donor_source,
        error_values=sorted(plan.error_values.items()),
        format=format_name,
        mode=mode,
    )
    case_id = f"gen-adv-{kind_slug}-{format_name}-{index}-{digest}"
    recipient_name = f"gen-adv-{kind_slug}-rx{index}-{digest}"
    defect_line = recipient_source.splitlines().index(plan.defect_marker) + 1
    recipient = Application(
        name=recipient_name,
        version=digest,
        source=recipient_source,
        formats=(format_name,),
        role="recipient",
        library=f"gen-{format_name}",
        description=f"generated recipient with a seeded {error_kind.value} defect",
        targets=(
            ErrorTarget(
                target_id=f"{recipient_name}.c:{defect_line}",
                error_kind=error_kind,
                site_function=recipient_function,
                description=plan.description,
            ),
        ),
    )
    near_miss_donor = _donor_application(
        f"gen-adv-{kind_slug}-nm{index}-{digest}",
        digest,
        near_miss_source,
        format_name,
        f"generated near-miss donor ({mode}) whose {error_kind.value} check "
        f"must be rejected",
    )
    true_donor = _donor_application(
        f"gen-adv-{kind_slug}-dn{index}-{digest}",
        digest,
        true_donor_source,
        format_name,
        f"generated donor carrying the {error_kind.value} protective check",
    )
    return ScenarioPair(
        case_id=case_id,
        error_kind=error_kind,
        format_name=format_name,
        index=index,
        recipient=recipient,
        donor=near_miss_donor,
        error_values=dict(plan.error_values),
        defect_fields=tuple(access.path for access in chosen),
        threshold=plan.threshold,
        description=plan.description,
        hardness="adversarial",
        adversarial=True,
        near_miss_mode=mode,
        true_donor=true_donor,
    )


def synthesize_mutation_pair(
    error_kind: ErrorKind,
    format_name: str,
    index: int = 0,
    seed: int = 0,
    iterations: int = 200,
) -> ScenarioPair:
    """Generate a pair whose trigger the seeded fuzzer discovered.

    The defect is seeded as usual, but the error input is *not* taken from
    the template's declaration: a seeded :class:`~repro.discovery.fuzzer.
    FieldFuzzer` mutates the recipient's defect fields over the format byte
    stream until it finds a crash of the expected kind, and the crashing
    field values become the pair's error values.  Raises
    :class:`ScenarioError` when the campaign finds nothing (the corpus
    generator rotates to the next format).
    """
    from ..discovery.fuzzer import FieldFuzzer, FuzzerOptions
    from ..lang.checker import compile_program

    template = TEMPLATES.get(error_kind)
    if template is None:
        raise ScenarioError(f"no defect template for error kind {error_kind.value!r}")
    spec = get_format(format_name)
    rng = random.Random(f"{seed}:mutation:{error_kind.value}:{format_name}:{index}")
    candidates = suitable_fields(spec, template)
    if error_kind is ErrorKind.INTEGER_OVERFLOW:
        # The fuzzer mutates one field per mutant; only a full-width 32-bit
        # factor can wrap the size product against a default-valued partner.
        candidates = [access for access in candidates if access.size == 4]
    if len(candidates) < template.field_count:
        raise ScenarioError(
            f"format {format_name!r} has no fuzzable fields for "
            f"{error_kind.value} (need {template.field_count})"
        )
    chosen = rng.sample(candidates, template.field_count)
    chosen.sort(key=lambda access: access.offset)
    plan = template.instantiate(chosen, rng)

    kind_slug = error_kind.value.replace("-", "")
    recipient_function = rng.choice(_RECIPIENT_FUNCTIONS)
    recipient_source = _render_program(
        f"Generated recipient: seeded {error_kind.value} over {format_name}, "
        f"trigger discovered by fuzzing.",
        recipient_function,
        _reader_lines(chosen, rng.choice(("manual", "builtin"))),
        plan.recipient_body,
        chosen,
    )
    donor_source = _render_program(
        f"Generated donor: protective {error_kind.value} check over {format_name}.",
        rng.choice(_DONOR_FUNCTIONS),
        _reader_lines(chosen, rng.choice(("manual", "builtin"))),
        plan.donor_body,
        chosen,
    )

    program = compile_program(recipient_source, name=f"gen-mut-{kind_slug}-probe")
    fuzzer = FieldFuzzer(
        program,
        spec,
        FuzzerOptions(
            iterations=iterations,
            seed=rng.randrange(1 << 30),
            fields=tuple(access.path for access in chosen),
            stop_after=1,
        ),
    )
    findings = fuzzer.campaign()
    finding = next(
        (entry for entry in findings if entry.report.kind is error_kind), None
    )
    if finding is None:
        raise ScenarioError(
            f"the seeded fuzzer found no {error_kind.value} on {format_name!r} "
            f"in {iterations} mutants"
        )
    wanted = {access.path for access in chosen}
    error_values = {
        entry.path: entry.read(finding.error_input)
        for entry in spec.field_map(finding.error_input)
        if entry.path in wanted
    }

    digest = _content_digest(
        recipient=recipient_source,
        donor=donor_source,
        error_values=sorted(error_values.items()),
        format=format_name,
        discovered_by="fuzzer",
    )
    case_id = f"gen-mut-{kind_slug}-{format_name}-{index}-{digest}"
    recipient_name = f"gen-mut-{kind_slug}-rx{index}-{digest}"
    defect_line = recipient_source.splitlines().index(plan.defect_marker) + 1
    recipient = Application(
        name=recipient_name,
        version=digest,
        source=recipient_source,
        formats=(format_name,),
        role="recipient",
        library=f"gen-{format_name}",
        description=f"generated recipient with a seeded {error_kind.value} defect "
        f"(trigger discovered by the seeded fuzzer)",
        targets=(
            ErrorTarget(
                target_id=f"{recipient_name}.c:{defect_line}",
                error_kind=error_kind,
                site_function=recipient_function,
                description=plan.description,
            ),
        ),
    )
    donor = _donor_application(
        f"gen-mut-{kind_slug}-dn{index}-{digest}",
        digest,
        donor_source,
        format_name,
        f"generated donor carrying the {error_kind.value} protective check",
    )
    return ScenarioPair(
        case_id=case_id,
        error_kind=error_kind,
        format_name=format_name,
        index=index,
        recipient=recipient,
        donor=donor,
        error_values=error_values,
        defect_fields=tuple(access.path for access in chosen),
        threshold=plan.threshold,
        description=f"fuzzer-discovered trigger: {plan.description}",
        hardness="mutation",
    )
