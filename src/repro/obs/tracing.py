"""Hierarchical tracing spans over the transfer pipeline.

A :class:`Tracer` records :class:`SpanRecord`\\ s — named, categorised
intervals with parent links — and exports them as JSONL (one span per line)
or as Chrome ``trace_event`` JSON (load it in ``chrome://tracing`` or
Perfetto).  Two sources feed a tracer:

* the typed :class:`~repro.core.events.PipelineEvent` stream, folded into
  spans by :class:`TraceObserver` (``transfer > donor attempt > stage``);
* direct instrumentation hooks in the solver engine, the equivalence
  checker, and the VM, which call :func:`begin_span`/:func:`end_span` or
  :func:`record_span` against the *active* tracer — because those hooks run
  synchronously inside a stage, their spans nest under the stage span that
  is open at that moment.

The active tracer is a module-level stack (:func:`activate` /
:func:`deactivate`); when it is empty every hook is a single ``is None``
check, so tracing costs nothing until someone opts in (``codephage transfer
--trace``, or a :class:`Tracer` activated around a session).

Campaign jobs are traced *post hoc*: workers persist their event stream to
the run store (``events/<job-id>.jsonl``) and :func:`spans_from_events`
reconstructs the span tree from the stored stream — stage durations come
from ``StageFinished.elapsed_s``, and start times are reconstructed by
accumulation, so the timeline is exact in durations and approximate in
gaps.  Solver-query spans only exist in live traces; the stored stream does
not carry them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence


@dataclass
class SpanRecord:
    """One finished span: a named interval in the trace tree."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_s: float
    duration_s: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "attrs": self.attrs,
        }


@dataclass
class _OpenSpan:
    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_s: float
    attrs: dict


class Tracer:
    """Collects spans; hierarchy comes from the stack of open spans."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._stack: list[_OpenSpan] = []
        self._next_id = 1
        self.spans: list[SpanRecord] = []

    # -- clock -------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the tracer was created."""
        return time.perf_counter() - self._epoch

    # -- span lifecycle ----------------------------------------------------------

    def begin(self, name: str, category: str, **attrs) -> int:
        """Open a span under the currently open span; returns its id."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1].span_id if self._stack else None
        self._stack.append(
            _OpenSpan(span_id, parent, name, category, self.now(), dict(attrs))
        )
        return span_id

    def end(self, span_id: Optional[int] = None, **attrs) -> Optional[SpanRecord]:
        """Close the top open span (or pop down to and including ``span_id``).

        Closing down to an id also closes any spans opened above it that
        were never explicitly ended — an observer that loses an end event
        cannot corrupt the stack for its ancestors.
        """
        if not self._stack:
            return None
        closed: Optional[SpanRecord] = None
        while self._stack:
            open_span = self._stack.pop()
            if span_id is None or open_span.span_id == span_id:
                open_span.attrs.update(attrs)
            record = SpanRecord(
                span_id=open_span.span_id,
                parent_id=open_span.parent_id,
                name=open_span.name,
                category=open_span.category,
                start_s=open_span.start_s,
                duration_s=max(0.0, self.now() - open_span.start_s),
                attrs=open_span.attrs,
            )
            self.spans.append(record)
            closed = record
            if span_id is None or open_span.span_id == span_id:
                break
        return closed

    def record(
        self,
        name: str,
        category: str,
        duration_s: float,
        start_s: Optional[float] = None,
        **attrs,
    ) -> SpanRecord:
        """Record a completed leaf span under the currently open span."""
        span_id = self._next_id
        self._next_id += 1
        start = self.now() - duration_s if start_s is None else start_s
        record = SpanRecord(
            span_id=span_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            category=category,
            start_s=max(0.0, start),
            duration_s=duration_s,
            attrs=dict(attrs),
        )
        self.spans.append(record)
        return record

    def finish(self) -> None:
        """Close every span still open (end of trace)."""
        while self._stack:
            self.end()

    # -- export ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        ordered = sorted(self.spans, key=lambda span: (span.start_s, span.span_id))
        return "".join(
            json.dumps(span.to_dict(), separators=(",", ":")) + "\n"
            for span in ordered
        )

    def to_chrome(self) -> dict:
        """The spans as Chrome ``trace_event`` JSON (complete 'X' events)."""
        events = []
        for span in sorted(self.spans, key=lambda span: (span.start_s, span.span_id)):
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        **span.attrs,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str | Path, chrome: bool = False) -> Path:
        """Write the trace to ``path`` (JSONL, or Chrome JSON with ``chrome``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if chrome:
            path.write_text(json.dumps(self.to_chrome(), indent=2) + "\n")
        else:
            path.write_text(self.to_jsonl())
        return path


# -- the active tracer ------------------------------------------------------------------

_ACTIVE: list[Tracer] = []


def activate(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the target of the module-level span hooks."""
    _ACTIVE.append(tracer)
    return tracer


def deactivate(tracer: Optional[Tracer] = None) -> None:
    """Pop the active tracer (``tracer``, if given, must be it)."""
    if not _ACTIVE:
        return
    if tracer is None or _ACTIVE[-1] is tracer:
        _ACTIVE.pop()


def active() -> Optional[Tracer]:
    """The tracer instrumentation hooks should record into, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


def record_span(name: str, category: str, duration_s: float, **attrs) -> None:
    """Leaf-span hook: records into the active tracer, no-op without one."""
    tracer = _ACTIVE[-1] if _ACTIVE else None
    if tracer is not None:
        tracer.record(name, category, duration_s, **attrs)


class trace_session:
    """Context manager: activate a tracer for the duration of a block.

    ::

        tracer = Tracer()
        session = RepairSession(observers=[TraceObserver(tracer)])
        with trace_session(tracer):
            session.run(request)     # solver/VM hooks now feed the tracer
        tracer.write("out.jsonl")
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    def __enter__(self) -> Tracer:
        return activate(self.tracer)

    def __exit__(self, *exc_info) -> None:
        self.tracer.finish()
        deactivate(self.tracer)


# -- event-stream folding ---------------------------------------------------------------


class TraceObserver:
    """Folds the pipeline event stream into spans on a tracer.

    Subscribe one to an :class:`~repro.core.events.EventBus` (or pass it as
    a session observer).  Stage spans bracket ``StageStarted`` /
    ``StageFinished``; a donor-attempt span opens at ``DonorAttempted`` and
    closes at the next donor (or when the trace finishes); point decisions
    (``PatchValidated``, ``CandidateRejected``, ``ResidualErrorFound``)
    become zero-length marker spans.

    Events are dispatched by type name (the serialization tag), keeping this
    module import-free of :mod:`repro.core` — the solver engine imports the
    tracing hooks, and the core package imports the solver.
    """

    def __init__(self, tracer: Tracer, root: str = "transfer") -> None:
        self.tracer = tracer
        self.root = root
        self._root_id: Optional[int] = None
        self._donor_id: Optional[int] = None
        self._stage_ids: list[int] = []

    def __call__(self, event) -> None:
        tracer = self.tracer
        if self._root_id is None:
            self._root_id = tracer.begin(self.root, "transfer")
        name = type(event).__name__
        if name == "StageStarted":
            self._stage_ids.append(
                tracer.begin(
                    event.stage,
                    "stage",
                    round=event.round_index,
                    detail=event.detail,
                )
            )
        elif name == "StageFinished":
            if self._stage_ids:
                tracer.end(self._stage_ids.pop())
        elif name == "DonorAttempted":
            if self._donor_id is not None:
                tracer.end(self._donor_id)
            self._donor_id = tracer.begin(
                f"donor {event.donor}",
                "donor-attempt",
                donor=event.donor,
                index=event.index,
                total=event.total,
            )
            self._stage_ids.clear()
        elif name == "PatchValidated":
            tracer.record(
                f"patch validated {event.function}:{event.line}",
                "decision",
                0.0,
                donor=event.donor,
                excised_size=event.excised_size,
                translated_size=event.translated_size,
                round=event.round_index,
            )
        elif name == "CandidateRejected":
            tracer.record(
                f"rejected {event.kind} {event.function}:{event.line}",
                "decision",
                0.0,
                reason=event.reason,
            )
        elif name == "ResidualErrorFound":
            tracer.record(
                f"{event.count} residual error(s)",
                "decision",
                0.0,
                round=event.round_index,
            )


def spans_from_events(events: Iterable, root: str = "transfer") -> list[SpanRecord]:
    """Reconstruct the span tree from a (stored) event stream.

    Accepts :class:`~repro.core.events.PipelineEvent` objects or their
    serialized dicts.  Start times are rebuilt by accumulating stage
    durations onto a virtual clock: durations are exact (they come from
    ``StageFinished.elapsed_s``), the gaps between stages are not
    represented, and solver-query spans are absent — they exist only in
    live traces.
    """
    from ..core.events import event_from_dict  # local: core imports the solver

    tracer = Tracer()
    observer = TraceObserver(tracer, root=root)
    state = {"clock": 0.0}
    tracer.now = lambda: state["clock"]  # type: ignore[method-assign] - virtual timeline
    for item in events:
        event = event_from_dict(item) if isinstance(item, dict) else item
        if type(event).__name__ == "StageFinished":
            state["clock"] += event.elapsed_s
        observer(event)
    tracer.finish()
    return tracer.spans


def tracer_from_events(events: Sequence, root: str = "transfer") -> Tracer:
    """A tracer pre-loaded with :func:`spans_from_events` output (for export)."""
    tracer = Tracer()
    tracer.spans = spans_from_events(events, root=root)
    return tracer
