"""Repair evidence bundles: one auditable artifact per validated repair.

At campaign scale a patch is only as useful as its evidence: *why* was this
repair accepted?  A bundle packages everything one job produced — the patch
and its provenance (which donor check, validated where), the proof
obligations the pipeline discharged (branches considered, candidates
rejected and why), the solver verdict accounting (backend, budgets, query
and cache counters), the per-stage timings, and the full typed event stream
— under a versioned schema (:mod:`repro.obs.schema`), so a bundle written
today stays machine-checkable after the format moves on.

Bundles are built from the campaign run store (``codephage bundle
<job-id>``: the stored :class:`~repro.core.reporting.TransferRecord` plus
the per-job event stream workers persist) or directly from a live
:class:`~repro.api.RepairReport` (:func:`bundle_from_report`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from .schema import BUNDLE_SCHEMA, LATEST_SCHEMA_VERSION, ensure_valid_bundle

#: Override keys that are solver budgets (surfaced under ``solver.budgets``).
_BUDGET_KEYS = (
    "sat_conflict_budget",
    "sat_truth_cost_budget",
    "sat_cost_budget",
    "max_exhaustive_cost",
    "sample_count",
)


class BundleError(RuntimeError):
    """Raised when a bundle cannot be built (missing record or events)."""


def build_bundle(
    *,
    job: dict,
    record: dict,
    events: Sequence[dict] = (),
    attempt_elapsed_s: float = 0.0,
    source: Optional[str] = None,
) -> dict:
    """Assemble (and validate) a schema-versioned evidence bundle.

    ``job`` is a :meth:`~repro.campaign.plan.JobSpec.to_dict` payload,
    ``record`` an ``asdict``-ed :class:`~repro.core.reporting.TransferRecord`,
    and ``events`` the serialized event stream of the attempt that produced
    the record.
    """
    overrides = dict(job.get("overrides") or {})
    validated_checks = [
        {
            "function": event.get("function", ""),
            "line": int(event.get("line", 0)),
            "excised_size": int(event.get("excised_size", 0)),
            "translated_size": int(event.get("translated_size", 0)),
            "round": int(event.get("round_index", 0)),
        }
        for event in events
        if event.get("event") == "PatchValidated"
    ]
    rejected: dict[str, int] = {}
    for event in events:
        if event.get("event") == "CandidateRejected":
            kind = event.get("kind", "unknown")
            rejected[kind] = rejected.get(kind, 0) + 1

    bundle = {
        "schema": BUNDLE_SCHEMA,
        "schema_version": LATEST_SCHEMA_VERSION,
        "job": {
            "job_id": job.get("job_id", ""),
            "case_id": job.get("case_id", ""),
            "donor": job.get("donor", ""),
            "strategy": job.get("strategy", ""),
            "variant": job.get("variant", "default"),
            "overrides": overrides,
        },
        "repair": {
            "recipient": record.get("recipient", ""),
            "target": record.get("target", ""),
            "donor": record.get("donor", ""),
            "success": bool(record.get("success")),
            "failure_reason": record.get("failure_reason", ""),
            "generation_time_s": record.get("generation_time_s", 0.0),
            "used_checks": int(record.get("used_checks", 0)),
        },
        "patch": {
            "preview": record.get("patch_preview", ""),
            "check_size": record.get("check_size", ""),
            "insertion_points": record.get("insertion_points", ""),
        },
        "provenance": {
            "donor": record.get("donor", ""),
            "validated_checks": validated_checks,
        },
        "obligations": {
            "relevant_branches": int(record.get("relevant_branches", 0)),
            "flipped_branches": str(record.get("flipped_branches", "")),
            "rejected": rejected,
        },
        "solver": {
            "backend": str(overrides.get("backend", "cdcl")),
            "queries": int(record.get("solver_queries", 0)),
            "cache_hits": int(record.get("solver_cache_hits", 0)),
            "persistent_cache_hits": int(record.get("solver_persistent_hits", 0)),
            "expensive_queries": int(record.get("solver_expensive_queries", 0)),
            "batch_hits": int(record.get("solver_batch_hits", 0)),
            "backends": dict(record.get("solver_backend_stats") or {}),
            "budgets": {
                key: overrides[key] for key in _BUDGET_KEYS if key in overrides
            },
        },
        "timings": {
            "stage_seconds": dict(record.get("stage_timings") or {}),
            "attempt_elapsed_s": attempt_elapsed_s,
        },
        "events": list(events),
    }
    if source is not None:
        bundle["source"] = source
    return ensure_valid_bundle(bundle)


def bundle_from_store(store, job_id: str) -> dict:
    """Export the bundle for one completed job in a campaign run store.

    ``store`` is a :class:`~repro.campaign.store.RunStore`; the job must
    have a completed attempt recorded.  The event stream comes from the
    store's ``events/`` directory (empty when the job predates event
    persistence).
    """
    plan = store.load_plan()
    job = next((job for job in plan.jobs if job.job_id == job_id), None)
    if job is None:
        raise BundleError(
            f"job {job_id!r} is not in the plan of store {store.directory}"
        )
    result = store.results().get(job_id)
    if result is None or not result.completed or result.record is None:
        raise BundleError(
            f"job {job_id!r} has no completed attempt in store {store.directory}"
        )
    return build_bundle(
        job=job.to_dict(),
        record=result.record,
        events=store.load_event_dicts(job_id),
        attempt_elapsed_s=result.elapsed_s,
        source=str(store.directory),
    )


def bundle_from_report(report, *, job: Optional[dict] = None, source: str = "session") -> dict:
    """Build a bundle straight from a live :class:`~repro.api.RepairReport`."""
    from dataclasses import asdict

    from ..core.events import events_as_dicts  # local: core imports the solver
    from ..core.reporting import TransferRecord

    record = asdict(TransferRecord.from_outcome(report.outcome))
    job = job or {
        "job_id": "",
        "case_id": "",
        "donor": report.outcome.donor,
        "strategy": "",
        "variant": "session",
        "overrides": {},
    }
    return build_bundle(
        job=job,
        record=record,
        events=events_as_dicts(report.events),
        attempt_elapsed_s=report.outcome.metrics.generation_time_s,
        source=source,
    )


def write_bundle(bundle: dict, path: str | Path) -> Path:
    """Write a validated bundle as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle, indent=2, sort_keys=True) + "\n")
    return path


def load_bundle(path: str | Path) -> dict:
    """Load and validate a bundle file."""
    return ensure_valid_bundle(json.loads(Path(path).read_text()))
