"""Schema-version registry and validator for repair evidence bundles.

Every bundle carries ``{"schema": "repair-evidence-bundle", "schema_version":
N}``; :data:`SCHEMA_VERSIONS` maps each published version to a declarative
spec, and :func:`validate_bundle` checks a payload against the spec for the
version *it claims* — a reader can therefore accept any version it knows and
reject the rest with a precise error, and a writer bumping the format must
register the new version here (and keep the old spec so archived bundles
stay checkable).

Specs are nested dicts: a key maps to a type (or tuple of types), to a
nested dict (a required sub-object), or to a single-element list (a required
list whose items each match the element spec).  ``Optional(spec)`` marks a
key that may be absent (but must match when present).
"""

from __future__ import annotations

from typing import Union

#: The ``schema`` tag every bundle carries.
BUNDLE_SCHEMA = "repair-evidence-bundle"

#: The version :mod:`repro.obs.bundle` currently writes.
LATEST_SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A bundle failed validation (message lists every violation)."""


class Optional_:
    """Marks a spec key as optional; the value must still match its spec."""

    def __init__(self, spec) -> None:
        self.spec = spec


Spec = Union[type, tuple, dict, list, Optional_]

_NUMBER = (int, float)

#: Version 1: the initial bundle layout (PR 6).
_V1: dict = {
    "schema": str,
    "schema_version": int,
    "job": {
        "job_id": str,
        "case_id": str,
        "donor": str,
        "strategy": str,
        "variant": str,
        "overrides": dict,
    },
    "repair": {
        "recipient": str,
        "target": str,
        "donor": str,
        "success": bool,
        "failure_reason": str,
        "generation_time_s": _NUMBER,
        "used_checks": int,
    },
    "patch": {
        "preview": str,
        "check_size": str,
        "insertion_points": str,
    },
    "provenance": {
        "donor": str,
        "validated_checks": [
            {
                "function": str,
                "line": int,
                "excised_size": int,
                "translated_size": int,
                "round": int,
            }
        ],
    },
    "obligations": {
        "relevant_branches": int,
        "flipped_branches": str,
        "rejected": dict,          # rejection kind -> count
    },
    "solver": {
        "backend": str,
        "queries": int,
        "cache_hits": int,
        "persistent_cache_hits": int,
        "expensive_queries": int,
        "batch_hits": int,
        "backends": dict,          # backend name -> counter dict
        "budgets": dict,           # budget overrides in force, if any
    },
    "timings": {
        "stage_seconds": dict,     # stage name -> wall seconds
        "attempt_elapsed_s": _NUMBER,
    },
    "events": [dict],
    "source": Optional_(str),      # store path the bundle was exported from
}

#: Every published bundle schema version.
SCHEMA_VERSIONS: dict[int, dict] = {1: _V1}


def _check(payload, spec: Spec, path: str, errors: list[str]) -> None:
    if isinstance(spec, Optional_):
        _check(payload, spec.spec, path, errors)
        return
    if isinstance(spec, dict):
        if not isinstance(payload, dict):
            errors.append(f"{path}: expected object, got {type(payload).__name__}")
            return
        for key, sub in spec.items():
            if key not in payload:
                if isinstance(sub, Optional_):
                    continue
                errors.append(f"{path}.{key}: required key missing")
                continue
            _check(payload[key], sub, f"{path}.{key}", errors)
        return
    if isinstance(spec, list):
        if not isinstance(payload, list):
            errors.append(f"{path}: expected array, got {type(payload).__name__}")
            return
        for index, item in enumerate(payload):
            _check(item, spec[0], f"{path}[{index}]", errors)
        return
    # A type (or tuple of types).  bool is an int subclass: reject a bool
    # where a number is expected unless bool itself is allowed.
    allowed = spec if isinstance(spec, tuple) else (spec,)
    if isinstance(payload, bool) and bool not in allowed:
        errors.append(f"{path}: expected {_spec_name(allowed)}, got bool")
    elif not isinstance(payload, allowed):
        errors.append(
            f"{path}: expected {_spec_name(allowed)}, got {type(payload).__name__}"
        )


def _spec_name(allowed: tuple) -> str:
    return "|".join(t.__name__ for t in allowed)


def validate_bundle(payload: dict) -> list[str]:
    """Every violation in ``payload`` against the schema version it claims.

    Returns an empty list for a valid bundle.  The schema tag and a known
    version are themselves part of validation.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"bundle: expected object, got {type(payload).__name__}"]
    if payload.get("schema") != BUNDLE_SCHEMA:
        errors.append(
            f"bundle.schema: expected {BUNDLE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    version = payload.get("schema_version")
    spec = SCHEMA_VERSIONS.get(version)
    if spec is None:
        errors.append(
            f"bundle.schema_version: unknown version {version!r} "
            f"(known: {sorted(SCHEMA_VERSIONS)})"
        )
        return errors
    _check(payload, spec, "bundle", errors)
    return errors


def ensure_valid_bundle(payload: dict) -> dict:
    """Validate and return ``payload``; raises :class:`SchemaError` with every
    violation listed otherwise."""
    errors = validate_bundle(payload)
    if errors:
        raise SchemaError(
            "invalid evidence bundle:\n  " + "\n  ".join(errors)
        )
    return payload
