"""``repro.obs`` — the unified telemetry layer.

One observability surface over the whole pipeline, in four parts:

* :mod:`~repro.obs.tracing` — hierarchical spans (transfer > donor attempt >
  stage > solver query), fed by the typed event stream plus instrumentation
  hooks in the solver engine, the equivalence checker, and the VM;
  exportable as JSONL or Chrome ``trace_event`` JSON (``codephage transfer
  --trace`` live, ``codephage trace <job-id>`` from a run store).
* :mod:`~repro.obs.metrics` — a process-wide counters/gauges/histograms
  registry, disabled by default (near-zero overhead), aggregated across
  campaign workers through the run store.
* :mod:`~repro.obs.bundle` / :mod:`~repro.obs.schema` — versioned,
  validator-backed repair evidence bundles (``codephage bundle <job-id>``).
* :mod:`~repro.obs.ledger` — the committed perf-trajectory ledger
  (``benchmarks/trajectory.json``) that ``tools/check_perf.py`` appends
  benchmark summaries to and gates CI against.

See ``docs/OBSERVABILITY.md`` for the span model, metric names, bundle
schema versions, and the ledger workflow.
"""

from .bundle import (
    BundleError,
    build_bundle,
    bundle_from_report,
    bundle_from_store,
    load_bundle,
    write_bundle,
)
from .ledger import (
    DEFAULT_LEDGER,
    GATED_COUNTERS,
    LedgerError,
    Regression,
    append_entry,
    baseline_entry,
    check_results,
    compare_entries,
    entry_from_summaries,
    load_ledger,
    load_summaries,
    make_summary,
)
from .metrics import REGISTRY, MetricsEventObserver, MetricsRegistry
from .schema import (
    BUNDLE_SCHEMA,
    LATEST_SCHEMA_VERSION,
    SCHEMA_VERSIONS,
    SchemaError,
    ensure_valid_bundle,
    validate_bundle,
)
from .tracing import (
    SpanRecord,
    TraceObserver,
    Tracer,
    spans_from_events,
    trace_session,
    tracer_from_events,
)

__all__ = [
    "BUNDLE_SCHEMA",
    "BundleError",
    "DEFAULT_LEDGER",
    "GATED_COUNTERS",
    "LATEST_SCHEMA_VERSION",
    "LedgerError",
    "MetricsEventObserver",
    "MetricsRegistry",
    "REGISTRY",
    "Regression",
    "SCHEMA_VERSIONS",
    "SchemaError",
    "SpanRecord",
    "TraceObserver",
    "Tracer",
    "append_entry",
    "baseline_entry",
    "build_bundle",
    "bundle_from_report",
    "bundle_from_store",
    "check_results",
    "compare_entries",
    "ensure_valid_bundle",
    "entry_from_summaries",
    "load_bundle",
    "load_ledger",
    "load_summaries",
    "make_summary",
    "spans_from_events",
    "trace_session",
    "tracer_from_events",
    "validate_bundle",
    "write_bundle",
]
