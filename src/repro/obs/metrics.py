"""Process-wide metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` per process (:data:`REGISTRY`), fed by cheap
instrumentation hooks in the solver engine, the equivalence checker, the
MicroC VM, the stage-graph engine (via :class:`MetricsEventObserver`), and
the campaign scheduler.  Recording is **disabled by default** and every
recording call starts with one attribute check, so instrumented hot paths
(solver queries, VM runs) pay near-zero overhead until someone opts in —
``codephage transfer --progress``/``--trace`` and campaign workers call
:func:`enable`.

Campaign workers are separate (usually fork-started) processes, each with
its own registry; a worker snapshots its registry into the result payload it
writes to the run store's outbox, and the scheduler folds every worker
snapshot into the campaign report with :func:`merge_snapshot` — the run
store, not shared memory, is the aggregation channel.

Metric names are dotted strings; the canonical names and their units are
documented in ``docs/OBSERVABILITY.md``.  Counters accumulate numbers (ints
or floats), gauges keep the last set value (merge keeps the max), and
histograms bucket observations against :data:`DEFAULT_BOUNDS` (seconds
scale) while tracking count/sum/min/max.
"""

from __future__ import annotations

import threading
from typing import Optional

#: Histogram bucket upper bounds, in seconds (observations above the last
#: bound land in the overflow bucket).
DEFAULT_BOUNDS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("bounds", "buckets", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.minimum,
            "max": self.maximum,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    def merge_dict(self, payload: dict) -> None:
        """Fold a snapshot dict (same bounds) into this histogram."""
        self.count += payload.get("count", 0)
        self.total += payload.get("sum", 0.0)
        for bound in ("min", "max"):
            value = payload.get(bound)
            if value is None:
                continue
            if bound == "min" and (self.minimum is None or value < self.minimum):
                self.minimum = value
            if bound == "max" and (self.maximum is None or value > self.maximum):
                self.maximum = value
        buckets = payload.get("buckets") or []
        if len(buckets) == len(self.buckets):
            self.buckets = [a + b for a, b in zip(self.buckets, buckets)]


class MetricsRegistry:
    """Counters, gauges, and histograms behind one enable/disable switch.

    Thread-safe: every mutation is a read-modify-write (``inc``,
    ``gauge_max``, histogram buckets), so recording from concurrent repair
    worker threads (the :mod:`repro.service` daemon) without a lock loses
    updates.  The lock is taken only after the enabled check — the disabled
    hot path stays one attribute test.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- switch ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every recorded value (the switch state is kept)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- recording (no-ops while disabled) ---------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Set the gauge to ``value`` if it exceeds the current reading."""
        if not self._enabled:
            return
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # -- reading -----------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> dict:
        """JSON-ready snapshot of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self._histograms.items()
                },
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one (worker -> report).

        Counters add, gauges keep the maximum (peak across workers), and
        histograms merge bucket-wise.  Works regardless of the enabled
        switch — aggregation is bookkeeping, not instrumentation.
        """
        with self._lock:
            for name, value in (snapshot.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in (snapshot.get("gauges") or {}).items():
                if value > self._gauges.get(name, float("-inf")):
                    self._gauges[name] = value
            for name, payload in (snapshot.get("histograms") or {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    bounds = tuple(payload.get("bounds") or DEFAULT_BOUNDS)
                    histogram = self._histograms[name] = Histogram(bounds)
                histogram.merge_dict(payload)


def merge_snapshots(target: dict, snapshot: dict) -> dict:
    """Merge plain snapshot dicts (for report fields that never see a registry)."""
    registry = MetricsRegistry()
    registry.merge_snapshot(target)
    registry.merge_snapshot(snapshot)
    merged = registry.snapshot()
    target.clear()
    target.update(merged)
    return target


#: The process-wide registry every instrumentation hook records into.
REGISTRY = MetricsRegistry()

# Module-level shorthands — instrumented code calls ``metrics.inc(...)``.
enable = REGISTRY.enable
disable = REGISTRY.disable
reset = REGISTRY.reset
inc = REGISTRY.inc
set_gauge = REGISTRY.set_gauge
gauge_max = REGISTRY.gauge_max
observe = REGISTRY.observe
snapshot = REGISTRY.snapshot


def enabled() -> bool:
    return REGISTRY.enabled


class MetricsEventObserver:
    """Folds the pipeline event stream into the registry.

    Subscribed by every :class:`repro.api.RepairSession`; while the registry
    is disabled each event costs one name lookup and a returned no-op, so
    sessions carry the observer unconditionally.

    Events are dispatched by type *name* (the same tag the JSONL serializer
    uses), which keeps this module import-free of :mod:`repro.core` — the
    solver and VM import the registry, and the core package imports the
    solver, so an import edge back into core would be a cycle.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry or REGISTRY

    def __call__(self, event) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        name = type(event).__name__
        if name == "StageFinished":
            registry.inc(f"pipeline.stage.{event.stage}.seconds", event.elapsed_s)
            registry.inc(f"pipeline.stage.{event.stage}.runs")
            registry.observe("pipeline.stage_seconds", event.elapsed_s)
        elif name == "DonorAttempted":
            registry.inc("pipeline.donor_attempts")
        elif name == "CandidateRejected":
            registry.inc("pipeline.candidates_rejected")
            registry.inc(f"pipeline.rejected.{event.kind}")
        elif name == "PatchValidated":
            registry.inc("pipeline.patches_validated")
        elif name == "ResidualErrorFound":
            registry.inc("pipeline.residual_errors", event.count)
