"""The perf-trajectory ledger: benchmark summaries tracked across runs.

The benchmarks each emit one *benchmark summary* JSON into ``results/``
(``benchmarks/conftest.write_benchmark_summary`` — shared schema: name,
wall-ms breakdown, counters).  The ledger (committed at
``benchmarks/trajectory.json``) is an append-only list of entries, one per
recorded benchmark run, each folding in every summary present at record
time.  ``tools/check_perf.py`` appends entries (``--append``) and gates CI:
the current ``results/`` summaries are compared against the ledger's latest
entry, and a run fails on a regression of more than ``--max-regression``
(default 25%) in any benchmark's total wall time or in a gated counter —
most importantly ``validation_share``, the PR 4 headline number, which is a
ratio and therefore comparable across machines.

This keeps perf wins from silently eroding: the 85% -> 62% validation-share
drop is no longer a one-off claim in a PR description but a committed data
point every CI run is measured against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

#: Schema tags.
SUMMARY_SCHEMA = "benchmark-summary"
TRAJECTORY_SCHEMA = "perf-trajectory"
SUMMARY_SCHEMA_VERSION = 1
TRAJECTORY_SCHEMA_VERSION = 1

#: Counters gated by the regression check (ratios / shares: smaller is
#: better, machine-independent).  Wall-ms totals are always gated.
GATED_COUNTERS = ("validation_share",)

#: The committed ledger location, relative to the repository root.
DEFAULT_LEDGER = "benchmarks/trajectory.json"


class LedgerError(RuntimeError):
    """Raised on malformed ledgers or summaries."""


@dataclass
class Regression:
    """One gated metric that got worse than the allowance."""

    benchmark: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        return (
            f"{self.benchmark}.{self.metric}: {self.baseline:.4g} -> "
            f"{self.current:.4g} ({self.ratio - 1.0:+.1%})"
        )


# -- summaries --------------------------------------------------------------------------


def make_summary(
    name: str,
    wall_ms: dict[str, float],
    counters: Optional[dict[str, float]] = None,
    extra: Optional[dict] = None,
) -> dict:
    """One benchmark summary in the shared schema.

    ``wall_ms`` is the wall-time breakdown in milliseconds; a ``total`` key
    is computed from the parts when not given.
    """
    wall_ms = {key: round(float(value), 3) for key, value in wall_ms.items()}
    if "total" not in wall_ms:
        wall_ms["total"] = round(sum(wall_ms.values()), 3)
    summary = {
        "schema": SUMMARY_SCHEMA,
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "name": name,
        "wall_ms": wall_ms,
        "counters": dict(counters or {}),
    }
    if extra:
        summary["extra"] = extra
    return summary


def is_summary(payload: dict) -> bool:
    return (
        isinstance(payload, dict)
        and payload.get("schema") == SUMMARY_SCHEMA
        and isinstance(payload.get("name"), str)
        and isinstance(payload.get("wall_ms"), dict)
    )


def load_summaries(results_dir: str | Path) -> dict[str, dict]:
    """Every benchmark summary under ``results_dir``, keyed by name.

    Non-summary JSON files (raw results databases, legacy shapes) are
    skipped silently — the ledger only ingests the shared schema.
    """
    summaries: dict[str, dict] = {}
    directory = Path(results_dir)
    if not directory.is_dir():
        return summaries
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if is_summary(payload):
            summaries[payload["name"]] = payload
    return summaries


# -- the ledger -------------------------------------------------------------------------


def empty_ledger() -> dict:
    return {
        "schema": TRAJECTORY_SCHEMA,
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "entries": [],
    }


def load_ledger(path: str | Path) -> dict:
    """Load a trajectory ledger (an absent file is an empty ledger)."""
    path = Path(path)
    if not path.exists():
        return empty_ledger()
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise LedgerError(f"ledger {path} is not valid JSON: {exc}") from None
    if payload.get("schema") != TRAJECTORY_SCHEMA:
        raise LedgerError(f"ledger {path} has schema {payload.get('schema')!r}")
    payload.setdefault("entries", [])
    return payload


def entry_from_summaries(
    summaries: dict[str, dict], source: str = "local", label: str = ""
) -> dict:
    """One ledger entry folding in every summary (wall-ms + counters only)."""
    if not summaries:
        raise LedgerError("no benchmark summaries to record")
    return {
        "source": source,
        "label": label,
        "benchmarks": {
            name: {
                "wall_ms": dict(summary.get("wall_ms") or {}),
                "counters": dict(summary.get("counters") or {}),
            }
            for name, summary in sorted(summaries.items())
        },
    }


def append_entry(path: str | Path, entry: dict) -> dict:
    """Append ``entry`` to the ledger at ``path`` (created if absent)."""
    path = Path(path)
    ledger = load_ledger(path)
    ledger["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    return ledger


def baseline_entry(ledger: dict) -> Optional[dict]:
    """The entry current results are compared against: the latest one."""
    entries = ledger.get("entries") or []
    return entries[-1] if entries else None


# -- regression gating ------------------------------------------------------------------


def compare_entries(
    baseline: dict, current: dict, max_regression: float = 0.25
) -> list[Regression]:
    """Gated metrics of ``current`` that regressed past the allowance.

    Only benchmarks present in *both* entries are compared (a benchmark that
    was not rerun cannot regress); within a benchmark, the ``total`` wall
    time and every :data:`GATED_COUNTERS` counter present on both sides are
    gated.  ``max_regression`` is relative: 0.25 fails anything more than
    25% worse than baseline.
    """
    regressions: list[Regression] = []
    base_benchmarks = baseline.get("benchmarks") or {}
    current_benchmarks = current.get("benchmarks") or {}
    for name in sorted(set(base_benchmarks) & set(current_benchmarks)):
        base, cur = base_benchmarks[name], current_benchmarks[name]
        pairs: list[tuple[str, float, float]] = []
        base_total = (base.get("wall_ms") or {}).get("total")
        cur_total = (cur.get("wall_ms") or {}).get("total")
        if base_total and cur_total is not None:
            pairs.append(("wall_ms.total", float(base_total), float(cur_total)))
        for counter in GATED_COUNTERS:
            base_value = (base.get("counters") or {}).get(counter)
            cur_value = (cur.get("counters") or {}).get(counter)
            if base_value and cur_value is not None:
                pairs.append((f"counters.{counter}", float(base_value), float(cur_value)))
        for metric, base_value, cur_value in pairs:
            if cur_value > base_value * (1.0 + max_regression):
                regressions.append(Regression(name, metric, base_value, cur_value))
    return regressions


def check_results(
    ledger_path: str | Path,
    results_dir: str | Path,
    max_regression: float = 0.25,
) -> tuple[list[Regression], dict[str, dict]]:
    """Compare current ``results/`` summaries against the committed ledger.

    Returns ``(regressions, summaries)``.  An empty ledger yields no
    regressions (there is nothing to gate against yet).
    """
    summaries = load_summaries(results_dir)
    baseline = baseline_entry(load_ledger(ledger_path))
    if baseline is None or not summaries:
        return [], summaries
    current = entry_from_summaries(summaries, source="check")
    return compare_entries(baseline, current, max_regression), summaries
