"""Command-line interface for the CP reproduction.

Subcommands::

    codephage list                       # applications and formats in the database
    codephage transfer CASE [--donor D]  # run one transfer (e.g. cwebp-jpegdec)
    codephage figure8 [--out FILE]       # regenerate the Figure 8 table
    codephage discover CASE              # re-discover the error input with DIODE/fuzzing
"""

from __future__ import annotations

import argparse
import sys

from .apps import all_applications, get_application
from .core.pipeline import CodePhage
from .core.reporting import ResultsDatabase
from .experiments import ERROR_CASES, FIGURE8_ROWS, discover_error_input, run_row
from .formats import all_formats


def _cmd_list(_: argparse.Namespace) -> int:
    print("Applications:")
    for app in all_applications():
        targets = ", ".join(t.target_id for t in app.targets) or "-"
        print(f"  {app.full_name:20s} role={app.role:9s} formats={','.join(app.formats):18s} targets={targets}")
    print("\nFormats:")
    for spec in all_formats():
        print(f"  {spec.name:6s} {spec.description}")
    print("\nError cases:")
    for case_id, case in ERROR_CASES.items():
        print(f"  {case_id:18s} {case.recipient:18s} {case.target_id:22s} donors={','.join(case.donors)}")
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    case = ERROR_CASES[args.case]
    donor_name = args.donor or case.donors[0]
    phage = CodePhage()
    outcome = phage.transfer(
        case.application(),
        case.target(),
        get_application(donor_name),
        case.seed_input(),
        case.error_input(),
        case.format_name,
    )
    print(f"{case.recipient} <- {donor_name}: {'SUCCESS' if outcome.success else 'FAILED'}")
    for check in outcome.checks:
        print("  patch:", check.patch.render())
        print("  check size:", check.check_size, "| insertion points:", check.accounting)
    if not outcome.success:
        print("  reason:", outcome.failure_reason)
    return 0 if outcome.success else 1


def _cmd_figure8(args: argparse.Namespace) -> int:
    database = ResultsDatabase()
    for row in FIGURE8_ROWS:
        record = database.add(run_row(row))
        status = "ok" if record.success else "FAIL"
        print(f"[{status}] {record.recipient} {record.target} <- {record.donor}")
    table = database.to_table(title="Figure 8 (reproduction)")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(table + "\n")
        print(f"\nwrote {args.out}")
    else:
        print("\n" + table)
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    error_input = discover_error_input(args.case)
    if error_input is None:
        print("no error-triggering input found")
        return 1
    print(f"discovered a {len(error_input)}-byte error-triggering input: {error_input.hex()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="codephage", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications, formats, and error cases")

    transfer = sub.add_parser("transfer", help="run one donor/recipient transfer")
    transfer.add_argument("case", choices=sorted(ERROR_CASES))
    transfer.add_argument("--donor", default=None)

    figure8 = sub.add_parser("figure8", help="regenerate the Figure 8 table")
    figure8.add_argument("--out", default=None)

    discover = sub.add_parser("discover", help="re-discover an error input")
    discover.add_argument("case", choices=sorted(ERROR_CASES))

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "transfer": _cmd_transfer,
        "figure8": _cmd_figure8,
        "discover": _cmd_discover,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
