"""Command-line interface for the CP reproduction.

Subcommands::

    codephage list                       # applications and formats in the database
    codephage transfer CASE [--donor D] [--progress] [--policy P] [--backend B]
                                         # run one transfer (e.g. cwebp-jpegdec)
    codephage figure8 [--out FILE] [--jobs N] [--nodes N] [--resume]
                                         # regenerate the Figure 8 table
    codephage campaign [--cases ...] [--donors ...] [--strategies ...] [--jobs N]
                                         # run an arbitrary transfer campaign
                                         # (--nodes N: distributed over N
                                         # emulated worker nodes, repro.dist)
    codephage matrix [--seed N] [--pairs N] [--classes ...] [--formats ...]
                     [--hardness ...]    # generate a scenario corpus and run the
                                         # N-pairs x error-class transfer matrix
                                         # (--hardness adds adversarial dimensions
                                         # and reports a false-accept rate)
    codephage trace JOB_ID [--chrome]    # export a stored job's trace (spans)
    codephage bundle JOB_ID [--out F]    # export a repair evidence bundle
    codephage discover CASE              # re-discover the error input with DIODE/fuzzing

``figure8``, ``campaign``, and ``matrix`` all run through the campaign engine
(:mod:`repro.campaign`): jobs are scheduled over a worker pool, every attempt
is recorded in a resumable on-disk run store, and solver queries are shared
through a persistent cross-process cache.  ``matrix`` additionally generates
its corpus (:mod:`repro.scenarios`) from ``--seed`` — deterministically, so
job ids are stable and ``--resume`` works across invocations — and reports
per-error-class success rates.  ``--hardness`` extends the corpus beyond the
baseline diagonal (multi-defect recipients, cross-format donors, near-miss
donors, fuzzer-discovered triggers); near-miss jobs are *expected to fail*
validation, and the summary reports the false-accept rate (the share that
validated anyway — target 0.0).

Every subcommand routes repairs through the :mod:`repro.api` facade; this
module contains no stage-sequencing logic of its own.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api import (
    POLICIES,
    CodePhageOptions,
    ProgressPrinter,
    RepairRequest,
    RepairSession,
)
from .apps import all_applications, get_application
from .campaign import (
    CampaignPlan,
    CampaignScheduler,
    JobSpec,
    PlanError,
    RunStore,
    SchedulerOptions,
    StoreError,
    expand_plan,
    figure8_plan,
)
from .core.patch import PatchStrategy
from .experiments import ERROR_CASES, discover_error_input
from .formats import all_formats
from .formats.fields import FormatError
from .lang.trace import ErrorKind
from .lang.vm import set_default_execution_tier
from .obs import (
    BundleError,
    TraceObserver,
    Tracer,
    bundle_from_store,
    metrics as obs_metrics,
    trace_session,
    tracer_from_events,
    write_bundle,
)
from .scenarios import (
    HARDNESS_DIMENSIONS,
    CorpusConfig,
    ScenarioError,
    corpus_plan,
    generate_corpus,
    matrix_scheduler_kwargs,
    prepare_matrix_store,
)
from .solver.backends import BACKENDS
from .solver.equivalence import EquivalenceOptions

DEFAULT_FIGURE8_STORE = "results/figure8-campaign"
DEFAULT_CAMPAIGN_STORE = "results/campaign"
DEFAULT_MATRIX_STORE = "results/matrix"


def _cmd_list(_: argparse.Namespace) -> int:
    print("Applications:")
    for app in all_applications():
        targets = ", ".join(t.target_id for t in app.targets) or "-"
        print(f"  {app.full_name:20s} role={app.role:9s} formats={','.join(app.formats):18s} targets={targets}")
    print("\nFormats:")
    for spec in all_formats():
        print(f"  {spec.name:6s} {spec.description}")
    print("\nError cases:")
    for case_id, case in ERROR_CASES.items():
        print(f"  {case_id:18s} {case.recipient:18s} {case.target_id:22s} donors={','.join(case.donors)}")
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    case = ERROR_CASES[args.case]
    donor_name = args.donor or case.donors[0]
    observers: list = [ProgressPrinter(verbose=args.verbose)] if args.progress else []
    if args.progress:
        # Live metric snapshot lines ride on the progress stream.
        obs_metrics.enable()
    tracer = None
    if args.trace:
        tracer = Tracer()
        observers.append(TraceObserver(tracer))
    options = None
    if args.backend:
        options = CodePhageOptions(
            equivalence_options=EquivalenceOptions(backend=args.backend)
        )
    session = RepairSession(options=options, observers=observers)
    request = RepairRequest(
        recipient=case.application(),
        target=case.target(),
        seed=case.seed_input(),
        error_input=case.error_input(),
        format_name=case.format_name,
        donor=get_application(donor_name),
        policy=args.policy,
    )
    if tracer is not None:
        with trace_session(tracer):
            report = session.run(request)
        trace_path = tracer.write(args.trace, chrome=args.chrome)
        print(f"trace: {len(tracer.spans)} spans -> {trace_path}", file=sys.stderr)
    else:
        report = session.run(request)
    outcome = report.outcome
    print(f"{case.recipient} <- {donor_name}: {'SUCCESS' if outcome.success else 'FAILED'}")
    for check in outcome.checks:
        print("  patch:", check.patch.render())
        print("  check size:", check.check_size, "| insertion points:", check.accounting)
    if not outcome.success:
        print("  reason:", outcome.failure_reason)
    if args.progress and outcome.metrics.stage_timings:
        breakdown = ", ".join(
            f"{stage} {elapsed * 1000.0:.1f}ms"
            for stage, elapsed in sorted(
                outcome.metrics.stage_timings.items(), key=lambda item: -item[1]
            )
        )
        print("  stage timings:", breakdown)
    if args.progress:
        solver = session.solver_statistics()
        for name, counters in sorted(solver["backends"].items()):
            if not counters.get("queries"):
                continue
            print(
                f"  solver backend {name}: {counters['queries']} queries, "
                f"{counters['conflicts']} conflicts, "
                f"{counters['learned_clauses']} learned, "
                f"{counters['time_s'] * 1000.0:.1f}ms"
            )
        print(
            f"  query batch: {solver['batch_hits']} hits "
            f"({solver['batch_dedupe_rate']:.0%} dedupe rate)"
        )
    return 0 if outcome.success else 1


def _apply_backend(plan: CampaignPlan, backend: str | None) -> CampaignPlan:
    """Pin every job of the plan to one solver backend.

    The override is part of each job's content-addressed identity, so runs
    with different backends resume independently within one store.
    """
    if not backend:
        return plan
    jobs = tuple(
        JobSpec(
            case_id=job.case_id,
            donor=job.donor,
            strategy=job.strategy,
            variant=job.variant,
            overrides=tuple(sorted({**dict(job.overrides), "backend": backend}.items())),
        )
        for job in plan.jobs
    )
    return CampaignPlan(name=plan.name, jobs=jobs)


def _run_campaign(
    plan: CampaignPlan,
    store_dir: str,
    *,
    jobs: int,
    resume: bool,
    timeout_s: float | None,
    retries: int,
    no_cache: bool,
    out: str | None,
    title: str,
    nodes: int = 0,
    store: RunStore | None = None,
    scheduler_kwargs=None,
    classify_record=None,
) -> int:
    """Shared driver for the ``figure8``, ``campaign``, and ``matrix`` subcommands.

    ``store`` may be passed pre-initialised (the matrix subcommand attaches
    to it earlier, before writing its corpus manifest); otherwise the plan
    is initialised here.  ``nodes > 0`` swaps the single-host scheduler for
    the coordinator/worker-node engine (:mod:`repro.dist`): jobs are placed
    on a consistent-hash ring over N emulated nodes and the solver cache
    becomes a partitioned key-space.
    """
    if store is None:
        store = RunStore(store_dir)
        try:
            store.initialise(plan, fresh=not resume)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    def on_result(job, result) -> None:
        if result.completed:
            record = result.record or {}
            status = "ok" if record.get("success") else "FAIL"
            print(
                f"[{status}] {record.get('recipient')} {record.get('target')} "
                f"<- {record.get('donor')} ({result.elapsed_s:.2f}s)"
            )
        else:
            print(f"[{result.status}] {job.describe()}: {result.error}")

    scheduler_kwargs = dict(scheduler_kwargs or {})
    if nodes > 0:
        from .dist import DistOptions, DistributedCoordinator

        engine = DistributedCoordinator(
            plan,
            store,
            DistOptions(
                nodes=nodes,
                timeout_s=timeout_s,
                retries=retries,
                use_persistent_cache=not no_cache,
            ),
            **scheduler_kwargs,
        )
    else:
        engine = CampaignScheduler(
            plan,
            store,
            SchedulerOptions(
                jobs=jobs,
                timeout_s=timeout_s,
                retries=retries,
                use_persistent_cache=not no_cache,
            ),
            **scheduler_kwargs,
        )
    report = engine.run(on_result=on_result)

    database = store.merge_into_database(plan)
    table = database.to_table(title=title)
    if classify_record is not None:
        rates = database.class_summary(classify_record)
        if rates:
            table += "\n\nSuccess by error class (all recorded runs):\n" + "\n".join(
                f"  {name:22s} {counters['successful']}/{counters['transfers']} "
                f"({counters['success_rate']:.0%})"
                for name, counters in sorted(rates.items())
            )
    # The run store keeps the machine-readable results; --out (or the store
    # itself) receives the rendered table.
    database.save(store.directory / "results.json")
    table_path = Path(out) if out else store.directory / "table.md"
    table_path.parent.mkdir(parents=True, exist_ok=True)
    table_path.write_text(table + "\n")

    print("\n" + table)
    print()
    print(report.summary())
    if report.completed == 0 and report.skipped == len(plan) and len(plan) > 0:
        print(
            "note: every job was already complete in the store — the table "
            "above is replayed from previous runs; pass --fresh to recompute"
        )
    print(f"store: {store.directory} (table: {table_path}, records: results.json)")
    return 1 if report.failed else 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    return _run_campaign(
        _apply_backend(figure8_plan(), args.backend),
        args.store,
        jobs=args.jobs,
        resume=not args.fresh,
        timeout_s=args.timeout,
        retries=args.retries,
        no_cache=args.no_cache,
        out=args.out,
        title="Figure 8 (reproduction)",
        nodes=args.nodes,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    try:
        plan = expand_plan(
            cases=args.cases or None,
            donors=args.donors or None,
            strategies=args.strategies or None,
        )
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _run_campaign(
        _apply_backend(plan, args.backend),
        args.store,
        jobs=args.jobs,
        resume=not args.fresh,
        timeout_s=args.timeout,
        retries=args.retries,
        no_cache=args.no_cache,
        out=args.out,
        title=f"Campaign ({len(plan)} transfers)",
        nodes=args.nodes,
    )


def _cmd_matrix(args: argparse.Namespace) -> int:
    # Deduplicate repeated values: a shell-expanded list should narrow the
    # corpus, not inflate it (mirrors expand_plan's --cases treatment).
    kinds = (
        tuple(ErrorKind(value) for value in dict.fromkeys(args.classes))
        if args.classes
        else CorpusConfig().error_kinds
    )
    hardness = tuple(dict.fromkeys(args.hardness or ("baseline",)))
    if "all" in hardness:
        hardness = HARDNESS_DIMENSIONS
    try:
        corpus = generate_corpus(
            CorpusConfig(
                seed=args.seed,
                pairs_per_class=args.pairs,
                error_kinds=kinds,
                formats=tuple(dict.fromkeys(args.formats or ())),
                hardness=hardness,
            )
        )
        plan = _apply_backend(
            corpus_plan(corpus, strategies=args.strategies or None), args.backend
        )
        store, manifest_path = prepare_matrix_store(
            corpus, plan, args.store, resume=not args.fresh
        )
    except (ScenarioError, PlanError, FormatError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kind_of_recipient = corpus.kind_of_recipient()
    print(
        f"scenario corpus: {len(corpus)} generated pairs "
        f"({args.pairs} per class, seed {args.seed}, "
        f"hardness: {'+'.join(hardness)}) -> {len(plan)} transfers "
        f"(manifest: {manifest_path})"
    )
    return _run_campaign(
        plan,
        args.store,
        jobs=args.jobs,
        resume=not args.fresh,
        timeout_s=args.timeout,
        retries=args.retries,
        no_cache=args.no_cache,
        out=args.out,
        title=f"Scenario matrix (seed {args.seed}, {len(plan)} transfers)",
        nodes=args.nodes,
        store=store,
        scheduler_kwargs=matrix_scheduler_kwargs(corpus, manifest_path),
        classify_record=lambda record: kind_of_recipient.get(record.recipient),
    )


def _find_store(job_id: str, store_arg: str | None) -> RunStore | None:
    """The run store holding ``job_id`` (explicit ``--store``, or a default).

    Without ``--store``, every default store directory with a plan is
    searched for a plan containing the job.
    """
    if store_arg:
        return RunStore(store_arg)
    for candidate in (
        DEFAULT_FIGURE8_STORE,
        DEFAULT_CAMPAIGN_STORE,
        DEFAULT_MATRIX_STORE,
    ):
        store = RunStore(candidate)
        try:
            plan = store.load_plan()
        except StoreError:
            continue
        if any(job.job_id == job_id for job in plan.jobs):
            return store
    return None


def _cmd_trace(args: argparse.Namespace) -> int:
    store = _find_store(args.job_id, args.store)
    if store is None:
        print(
            f"error: no run store contains job {args.job_id!r}; pass --store",
            file=sys.stderr,
        )
        return 2
    events = store.load_event_dicts(args.job_id)
    if not events:
        print(
            f"error: store {store.directory} has no event stream for job "
            f"{args.job_id!r} (the job has not completed under this version)",
            file=sys.stderr,
        )
        return 1
    tracer = tracer_from_events(events)
    suffix = ".json" if args.chrome else ".jsonl"
    out = Path(args.out) if args.out else store.directory / "traces" / f"{args.job_id}{suffix}"
    tracer.write(out, chrome=args.chrome)
    print(f"trace: {len(tracer.spans)} spans ({len(events)} events) -> {out}")
    return 0


def _cmd_bundle(args: argparse.Namespace) -> int:
    store = _find_store(args.job_id, args.store)
    if store is None:
        print(
            f"error: no run store contains job {args.job_id!r}; pass --store",
            file=sys.stderr,
        )
        return 2
    try:
        bundle = bundle_from_store(store, args.job_id)
    except (BundleError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out else store.directory / "bundles" / f"{args.job_id}.json"
    write_bundle(bundle, out)
    repair = bundle["repair"]
    print(
        f"bundle: {repair['recipient']} <- {repair['donor']} "
        f"({'success' if repair['success'] else 'failed'}, schema v"
        f"{bundle['schema_version']}, {len(bundle['events'])} events) -> {out}"
    )
    return 0


DEFAULT_SERVICE_STORE = "results/service"


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service pulls in the HTTP stack, which no other
    # subcommand needs.
    from .service import RepairDaemon, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        pool_size=args.pool_size,
        queue_limit=args.queue_limit,
        retries=args.retries,
        default_budget_s=args.budget,
        max_budget_s=args.max_budget,
        store_dir=args.store,
        stores_root=args.stores_root,
    )
    daemon = RepairDaemon(config)
    host, port = daemon.address
    print(
        f"codephage service on http://{host}:{port} "
        f"({config.workers} workers, {config.pool_size} warm sessions, "
        f"queue limit {config.queue_limit}, store {config.store_dir})"
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        daemon.stop()
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    error_input = discover_error_input(args.case)
    if error_input is None:
        print("no error-triggering input found")
        return 1
    print(f"discovered a {len(error_input)}-byte error-triggering input: {error_input.hex()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="codephage", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications, formats, and error cases")

    transfer = sub.add_parser("transfer", help="run one donor/recipient transfer")
    transfer.add_argument("case", choices=sorted(ERROR_CASES))
    transfer.add_argument("--donor", default=None)
    transfer.add_argument(
        "--progress",
        action="store_true",
        help="render the pipeline event stream (per-stage timings) to stderr",
    )
    transfer.add_argument(
        "--verbose",
        action="store_true",
        help="with --progress, also print every rejected candidate and why",
    )
    transfer.add_argument(
        "--policy",
        choices=sorted(POLICIES),
        default=None,
        help="search policy for the candidate/donor retry loops",
    )
    transfer.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="SAT backend for solver queries (default: cdcl)",
    )
    transfer.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record tracing spans (stages, donor attempts, solver queries, "
        "VM runs) and write them here",
    )
    transfer.add_argument(
        "--chrome",
        action="store_true",
        help="with --trace, write Chrome trace_event JSON instead of span JSONL",
    )
    transfer.add_argument(
        "--no-compile",
        action="store_true",
        help="run MicroC on the tree-walking interpreter instead of the "
        "compiled bytecode tier",
    )

    def add_campaign_arguments(command: argparse.ArgumentParser, default_store: str) -> None:
        command.add_argument("--out", default=None, help="write the rendered table here")
        command.add_argument("--jobs", type=int, default=1, help="worker processes")
        command.add_argument(
            "--nodes",
            type=int,
            default=0,
            help="run distributed: N emulated worker nodes claim jobs off a "
            "consistent-hash ring with a partitioned solver cache "
            "(0 = single-host scheduler; see docs/DISTRIBUTED.md)",
        )
        command.add_argument("--store", default=default_store, help="run store directory")
        command.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-attempt timeout in seconds (a retried job may run longer overall)",
        )
        command.add_argument(
            "--retries",
            type=int,
            default=1,
            help="extra attempts after a crashed, timed-out, or errored attempt",
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the persistent cross-process solver cache",
        )
        command.add_argument(
            "--no-compile",
            action="store_true",
            help="run MicroC on the tree-walking interpreter instead of the "
            "compiled bytecode tier",
        )
        command.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default=None,
            help="pin every job to this SAT backend (part of the job identity)",
        )
        # Campaigns resume by default: completed jobs in the store are
        # skipped, so re-running an interrupted command picks up where it
        # left off.  --fresh is the destructive opt-in.
        mode = command.add_mutually_exclusive_group()
        mode.add_argument(
            "--fresh",
            action="store_true",
            help="discard previous records instead of resuming (the solver cache is kept)",
        )
        mode.add_argument(
            "--resume",
            action="store_true",
            help="resume from the run store (the default; kept for explicitness)",
        )

    figure8 = sub.add_parser(
        "figure8", help="regenerate the Figure 8 table via the campaign engine"
    )
    add_campaign_arguments(figure8, DEFAULT_FIGURE8_STORE)

    campaign = sub.add_parser("campaign", help="run a transfer campaign")
    add_campaign_arguments(campaign, DEFAULT_CAMPAIGN_STORE)
    campaign.add_argument(
        "--cases", nargs="+", choices=sorted(ERROR_CASES), help="restrict to these cases"
    )
    campaign.add_argument("--donors", nargs="+", help="restrict to these donors")
    campaign.add_argument(
        "--strategies",
        nargs="+",
        choices=[strategy.value for strategy in PatchStrategy],
        help="patch strategies to cross with the cases",
    )

    matrix = sub.add_parser(
        "matrix",
        help="generate a scenario corpus and run its error-class transfer matrix",
    )
    add_campaign_arguments(matrix, DEFAULT_MATRIX_STORE)
    matrix.add_argument(
        "--seed", type=int, default=0, help="corpus generation seed (drives everything)"
    )
    matrix.add_argument(
        "--pairs", type=int, default=2, help="donor/recipient pairs per error class"
    )
    matrix.add_argument(
        "--classes",
        nargs="+",
        choices=sorted(kind.value for kind in ErrorKind),
        help="restrict to these error classes (default: every class)",
    )
    matrix.add_argument(
        "--formats",
        nargs="+",
        help="restrict generation to these input formats",
    )
    matrix.add_argument(
        "--strategies",
        nargs="+",
        choices=[strategy.value for strategy in PatchStrategy],
        help="patch strategies to cross with the generated pairs",
    )
    matrix.add_argument(
        "--hardness",
        nargs="+",
        choices=[*HARDNESS_DIMENSIONS, "all"],
        help=(
            "hardness dimensions to generate (default: baseline); "
            "'all' selects every dimension — adversarial pairs report a "
            "false-accept rate in the campaign summary"
        ),
    )

    trace = sub.add_parser(
        "trace", help="export the span trace of a completed campaign job"
    )
    trace.add_argument("job_id", help="job id (shown in plan.json / records.jsonl)")
    trace.add_argument(
        "--store", default=None, help="run store directory (default: search the defaults)"
    )
    trace.add_argument(
        "--out", default=None, help="output path (default: <store>/traces/<job-id>)"
    )
    trace.add_argument(
        "--chrome",
        action="store_true",
        help="write Chrome trace_event JSON instead of span JSONL",
    )

    bundle = sub.add_parser(
        "bundle", help="export the repair evidence bundle of a completed job"
    )
    bundle.add_argument("job_id", help="job id (shown in plan.json / records.jsonl)")
    bundle.add_argument(
        "--store", default=None, help="run store directory (default: search the defaults)"
    )
    bundle.add_argument(
        "--out", default=None, help="output path (default: <store>/bundles/<job-id>.json)"
    )

    discover = sub.add_parser("discover", help="re-discover an error input")
    discover.add_argument("case", choices=sorted(ERROR_CASES))

    serve = sub.add_parser(
        "serve", help="run the repair-as-a-service HTTP daemon (see docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8642, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="repair worker threads"
    )
    serve.add_argument(
        "--pool-size", type=int, default=2, help="warm sessions in the pool"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="bounded job queue size (429 once full)",
    )
    serve.add_argument(
        "--retries", type=int, default=0, help="extra attempts per failing job"
    )
    serve.add_argument(
        "--budget", type=float, default=30.0, help="default per-job budget (seconds)"
    )
    serve.add_argument(
        "--max-budget",
        type=float,
        default=300.0,
        help="largest accepted per-job budget (seconds)",
    )
    serve.add_argument(
        "--store",
        default=DEFAULT_SERVICE_STORE,
        help="run store directory for service jobs",
    )
    serve.add_argument(
        "--stores-root",
        default="results",
        help="directory whose campaign stores /v1/stores exposes",
    )

    args = parser.parse_args(argv)
    if getattr(args, "no_compile", False):
        # Flip the process-wide default so every VM in this run (including
        # fork-started campaign workers, which inherit it) uses the
        # interpreter tier.
        set_default_execution_tier(False)
    handlers = {
        "list": _cmd_list,
        "transfer": _cmd_transfer,
        "figure8": _cmd_figure8,
        "campaign": _cmd_campaign,
        "matrix": _cmd_matrix,
        "trace": _cmd_trace,
        "bundle": _cmd_bundle,
        "discover": _cmd_discover,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
