"""Simplified GIF format.

gif2tiff's out-of-bounds write (CVE-2013-4231) is driven by the LZW minimum
code size byte of the image descriptor: the GIF specification limits it to 12,
and gif2tiff iterates over tables sized for 12-bit codes without checking.
The donor check (ImageMagick Display 6.5.2-9) enforces ``data_size <= 12``.

Layout (26 bytes, little-endian fields per the GIF spec)::

    00  47 49 46 38 39 61    "GIF89a"
    06  ww ww                /screen/width       (16-bit LE)
    08  hh hh                /screen/height      (16-bit LE)
    0A  flags bg aspect
    0D  2C                   image separator
    0E  00 00 00 00          image left, top
    12  ww ww                /image/width        (16-bit LE)
    14  hh hh                /image/height       (16-bit LE)
    16  flags
    17  cs                   /image/code_size    (LZW minimum code size)
    18  00                   block terminator
    19  3B                   trailer
"""

from __future__ import annotations

from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes


class GifFormat(FixedLayoutFormat):
    """Simplified GIF89a with one image descriptor."""

    name = "gif"
    description = "GIF image (logical screen + image descriptor)"
    total_size = 26

    literals = (
        LiteralBytes(0, b"GIF89a", "signature"),
        LiteralBytes(10, b"\x00\x00\x00", "screen flags / background / aspect"),
        LiteralBytes(13, b"\x2c", "image separator"),
        LiteralBytes(14, b"\x00\x00\x00\x00", "image left/top"),
        LiteralBytes(22, b"\x00", "image flags"),
        LiteralBytes(24, b"\x00", "block terminator"),
        LiteralBytes(25, b"\x3b", "trailer"),
    )

    field_defaults = (
        FieldDefault("/screen/width", 6, 2, 64, "little", "logical screen width"),
        FieldDefault("/screen/height", 8, 2, 64, "little", "logical screen height"),
        FieldDefault("/image/width", 18, 2, 64, "little", "image width"),
        FieldDefault("/image/height", 20, 2, 64, "little", "image height"),
        FieldDefault("/image/code_size", 23, 1, 8, "little", "LZW minimum code size"),
    )


SCREEN_WIDTH = "/screen/width"
SCREEN_HEIGHT = "/screen/height"
IMAGE_WIDTH = "/image/width"
IMAGE_HEIGHT = "/image/height"
CODE_SIZE = "/image/code_size"
