"""Simplified DCP (ETSI) network packet format.

Wireshark 1.4.14's divide-by-zero (packet-dcp-etsi.c) is triggered by
degenerate packets whose payload-length field is zero: the dissector divides
the total data length by the per-fragment payload length to compute the
fragment count.  Wireshark 1.8.6 guards the division with ``if (real_len)``.

Layout (12 bytes, big-endian network order)::

    00  44 43                "DC" sync bytes
    02  pt                   /dcp/packet_type
    03  tl tl                /dcp/total_len      (total reassembled length)
    05  pl pl                /dcp/plen           (per-fragment payload length)
    07  fi fi                /dcp/fragment_index
    09  cf                   /dcp/crc_flag
    0A  00 00                padding
"""

from __future__ import annotations

from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes


class DcpFormat(FixedLayoutFormat):
    """Simplified DCP-ETSI packet."""

    name = "dcp"
    description = "DCP (ETSI) network packet"
    total_size = 12

    literals = (
        LiteralBytes(0, b"DC", "sync"),
        LiteralBytes(10, b"\x00\x00", "padding"),
    )

    field_defaults = (
        FieldDefault("/dcp/packet_type", 2, 1, 1, "big", "packet type"),
        FieldDefault("/dcp/total_len", 3, 2, 96, "big", "total reassembled length"),
        FieldDefault("/dcp/plen", 5, 2, 24, "big", "per-fragment payload length"),
        FieldDefault("/dcp/fragment_index", 7, 2, 0, "big", "fragment index"),
        FieldDefault("/dcp/crc_flag", 9, 1, 0, "big", "CRC present flag"),
    )


PACKET_TYPE = "/dcp/packet_type"
TOTAL_LEN = "/dcp/total_len"
PLEN = "/dcp/plen"
FRAGMENT_INDEX = "/dcp/fragment_index"
CRC_FLAG = "/dcp/crc_flag"
