"""Fixed-layout format specifications.

The simplified formats used by the MicroC applications all have a fixed byte
layout (a handful of header fields at known offsets followed by a small body).
:class:`FixedLayoutFormat` implements :class:`repro.formats.fields.FormatSpec`
for that case from a declarative description: magic bytes, a list of
:class:`FieldDefault` entries, and the total file size.

Real formats of course have variable layouts — the original CP leans on
Hachoir for exactly this reason — but a fixed layout preserves everything the
CP algorithms observe (which bytes belong to which named field and how the
applications consume them) while keeping the application substrate small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .fields import Field, FieldMap, FormatError, FormatSpec, merge_values


@dataclass(frozen=True)
class FieldDefault:
    """A field definition plus the value it takes in the canonical seed input."""

    path: str
    offset: int
    size: int
    default: int
    endianness: str = "big"
    description: str = ""

    def to_field(self) -> Field:
        return Field(
            path=self.path,
            offset=self.offset,
            size=self.size,
            endianness=self.endianness,
            description=self.description,
        )


@dataclass(frozen=True)
class LiteralBytes:
    """Fixed bytes (magic numbers, markers, padding) at a given offset."""

    offset: int
    data: bytes
    description: str = ""


class FixedLayoutFormat(FormatSpec):
    """A format whose fields live at fixed offsets."""

    #: Subclasses set these class attributes.
    name: str = ""
    description: str = ""
    total_size: int = 0
    literals: Sequence[LiteralBytes] = ()
    field_defaults: Sequence[FieldDefault] = ()

    def __init__(self) -> None:
        if not self.name:
            raise FormatError("format subclasses must define a name")
        if self.total_size <= 0:
            raise FormatError(f"format {self.name!r} must define a positive total_size")
        self._fields = [entry.to_field() for entry in self.field_defaults]
        for entry in self.field_defaults:
            if entry.offset + entry.size > self.total_size:
                raise FormatError(
                    f"field {entry.path!r} extends beyond the {self.name} file size"
                )
        for literal in self.literals:
            if literal.offset + len(literal.data) > self.total_size:
                raise FormatError(f"literal at {literal.offset} extends beyond the file size")

    # -- FormatSpec interface ---------------------------------------------------

    def matches(self, data: bytes) -> bool:
        if len(data) < self.total_size:
            return False
        magic = self.literals[0] if self.literals else None
        if magic is None:
            return True
        return data[magic.offset : magic.offset + len(magic.data)] == magic.data

    def field_map(self, data: bytes) -> FieldMap:
        return FieldMap(self._fields, total_size=self.total_size, format_name=self.name)

    def layout(self) -> FieldMap:
        """The field layout independent of any concrete input."""
        return FieldMap(self._fields, total_size=self.total_size, format_name=self.name)

    def build(self, values: Mapping[str, int] | None = None, **overrides: int) -> bytes:
        defaults = {entry.path: entry.default for entry in self.field_defaults}
        merged = merge_values(defaults, values, overrides)
        unknown = set(merged) - set(defaults)
        if unknown:
            raise FormatError(
                f"unknown field(s) for format {self.name}: {', '.join(sorted(unknown))}"
            )
        data = bytearray(self.total_size)
        for literal in self.literals:
            data[literal.offset : literal.offset + len(literal.data)] = literal.data
        field_map = self.layout()
        for path, value in merged.items():
            field_map.field(path).write(data, value)
        return bytes(data)

    # -- convenience --------------------------------------------------------------

    def seed(self) -> bytes:
        """The canonical seed input (all defaults)."""
        return self.build()

    def field_paths(self) -> list[str]:
        return [entry.path for entry in self.field_defaults]

    def describe(self) -> str:
        """A human-readable layout summary (used by the CLI and docs)."""
        lines = [f"format {self.name}: {self.description} ({self.total_size} bytes)"]
        for entry in sorted(self.field_defaults, key=lambda e: e.offset):
            lines.append(
                f"  [{entry.offset:3d}:{entry.offset + entry.size:3d}] "
                f"{entry.path}  ({entry.size * 8}-bit {entry.endianness}-endian, "
                f"default {entry.default})"
            )
        return "\n".join(lines)
