"""Simplified SWF format (with an embedded JPEG bitmap tag).

Swfplay 0.5.5 overflows 32-bit buffer-size computations when decoding JPEG
data embedded in SWF files: the per-component YUVA buffers are sized as
``width * height * sampling`` (jpeg.c:192) and the merged RGBA buffer as
``width * height * 4`` (jpeg_rgb_decoder.c:253/257).  The donor (Gnash) checks
the JPEG sampling factors (``MAX_SAMP_FACTOR``) and dimensions
(``JPEG_MAX_DIMENSION``), plus a channel-aware overflow check.

Layout (20 bytes)::

    00  46 57 53             "FWS"
    03  06                   version
    04  ll ll ll ll          file length (32-bit LE)
    08  FF D8                embedded JPEG SOI
    0A  hh hh                /jpeg/height     (16-bit BE)
    0C  ww ww                /jpeg/width      (16-bit BE)
    0E  hs                   /jpeg/h_samp     (horizontal sampling factor)
    0F  vs                   /jpeg/v_samp     (vertical sampling factor)
    10  nc                   /jpeg/components
    11  FF D9 00             embedded JPEG EOI + padding
"""

from __future__ import annotations

from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes


class SwfFormat(FixedLayoutFormat):
    """Simplified SWF container with one embedded JPEG bitmap."""

    name = "swf"
    description = "SWF movie with embedded JPEG bitmap"
    total_size = 20

    literals = (
        LiteralBytes(0, b"FWS", "signature"),
        LiteralBytes(3, b"\x06", "version"),
        LiteralBytes(4, (20).to_bytes(4, "little"), "file length"),
        LiteralBytes(8, b"\xff\xd8", "embedded JPEG SOI"),
        LiteralBytes(17, b"\xff\xd9\x00", "embedded JPEG EOI"),
    )

    field_defaults = (
        FieldDefault("/jpeg/height", 10, 2, 64, "big", "embedded JPEG height"),
        FieldDefault("/jpeg/width", 12, 2, 64, "big", "embedded JPEG width"),
        FieldDefault("/jpeg/h_samp", 14, 1, 2, "big", "horizontal sampling factor"),
        FieldDefault("/jpeg/v_samp", 15, 1, 2, "big", "vertical sampling factor"),
        FieldDefault("/jpeg/components", 16, 1, 3, "big", "number of components"),
    )


HEIGHT = "/jpeg/height"
WIDTH = "/jpeg/width"
H_SAMP = "/jpeg/h_samp"
V_SAMP = "/jpeg/v_samp"
COMPONENTS = "/jpeg/components"
