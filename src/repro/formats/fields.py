"""Input field descriptions (the reproduction's Hachoir).

CP "uses Hachoir to convert byte ranges into symbolic input fields" (§3.2):
the taint labels attached to input bytes are not raw offsets but named fields
such as ``/start_frame/content/height``, which is what makes the excised check
application independent.  This module provides the same capability for the
simplified binary formats used by the MicroC applications:

* :class:`Field` — one named field: path, byte offset, size, endianness.
* :class:`FieldMap` — the set of fields of one concrete input, with lookups
  from byte offsets to the symbolic expression describing that byte.
* :class:`FormatSpec` — a file format: how to recognise it, how to lay out its
  fields, how to build a file from field values, and how to parse one.

When a format is unknown (or Hachoir-style parsing is disabled) CP falls back
to *raw mode*, where every byte is its own 8-bit field (see
:mod:`repro.formats.raw`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Mapping, Optional, Sequence

from ..symbolic import builder
from ..symbolic.expr import Expr


class FormatError(Exception):
    """Raised when an input cannot be parsed or built for a format."""


@dataclass(frozen=True)
class Field:
    """A single named input field."""

    path: str
    offset: int
    size: int
    endianness: str = "big"
    description: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise FormatError(f"field {self.path!r} has non-positive size {self.size}")
        if self.endianness not in ("big", "little"):
            raise FormatError(f"field {self.path!r} has unknown endianness {self.endianness!r}")
        if not self.path.startswith("/"):
            raise FormatError(f"field path {self.path!r} must be absolute (start with '/')")

    @property
    def width(self) -> int:
        """Width of the field in bits."""
        return self.size * 8

    @property
    def end(self) -> int:
        """Offset one past the last byte of the field."""
        return self.offset + self.size

    def covers(self, offset: int) -> bool:
        return self.offset <= offset < self.end

    def read(self, data: bytes) -> int:
        """The concrete value of this field in ``data``."""
        if len(data) < self.end:
            raise FormatError(
                f"input too short for field {self.path!r} (need {self.end} bytes, have {len(data)})"
            )
        chunk = data[self.offset : self.end]
        return int.from_bytes(chunk, "big" if self.endianness == "big" else "little")

    def write(self, data: bytearray, value: int) -> None:
        """Store ``value`` into ``data`` at this field's location."""
        if len(data) < self.end:
            raise FormatError(f"buffer too short for field {self.path!r}")
        order = "big" if self.endianness == "big" else "little"
        data[self.offset : self.end] = (value & ((1 << self.width) - 1)).to_bytes(self.size, order)

    def symbolic(self) -> Expr:
        """The symbolic expression for the whole field (an input-field leaf)."""
        return builder.input_field(self.path, self.width)

    def symbolic_byte(self, offset: int) -> Expr:
        """The symbolic expression for the byte of the file at ``offset``.

        For a big-endian field the first byte in the file is the most
        significant byte of the field; for little-endian it is the least
        significant.  The returned expression is an 8-bit extraction of the
        field leaf, which is exactly the label the paper's taint tracker
        attaches to the byte.
        """
        if not self.covers(offset):
            raise FormatError(f"offset {offset} is not inside field {self.path!r}")
        index = offset - self.offset
        if self.endianness == "big":
            hi = self.width - 1 - index * 8
        else:
            hi = index * 8 + 7
        return builder.extract(self.symbolic(), hi, hi - 7)


class FieldMap:
    """The fields of one concrete input, indexed by path and by byte offset."""

    def __init__(self, fields: Iterable[Field], total_size: int, format_name: str = "raw") -> None:
        self._fields: list[Field] = sorted(fields, key=lambda f: f.offset)
        self._by_path: dict[str, Field] = {}
        self.total_size = total_size
        self.format_name = format_name
        for entry in self._fields:
            if entry.path in self._by_path:
                raise FormatError(f"duplicate field path {entry.path!r}")
            self._by_path[entry.path] = entry
        overlap = self._find_overlap()
        if overlap is not None:
            first, second = overlap
            raise FormatError(f"fields {first.path!r} and {second.path!r} overlap")

    def _find_overlap(self) -> Optional[tuple[Field, Field]]:
        for first, second in zip(self._fields, self._fields[1:]):
            if second.offset < first.end:
                return first, second
        return None

    # -- lookups ----------------------------------------------------------------

    def __iter__(self):
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def paths(self) -> list[str]:
        return [entry.path for entry in self._fields]

    def field(self, path: str) -> Field:
        try:
            return self._by_path[path]
        except KeyError:
            raise FormatError(f"unknown field path {path!r}") from None

    def has_field(self, path: str) -> bool:
        return path in self._by_path

    def field_at(self, offset: int) -> Optional[Field]:
        """The field covering byte ``offset``, or None for unstructured bytes."""
        for entry in self._fields:
            if entry.covers(offset):
                return entry
            if entry.offset > offset:
                break
        return None

    def symbolic_byte(self, offset: int) -> Expr:
        """Symbolic label for the input byte at ``offset``.

        Bytes outside any named field get a raw per-byte field so that taint
        tracking remains complete.
        """
        entry = self.field_at(offset)
        if entry is not None:
            return entry.symbolic_byte(offset)
        return builder.input_field(f"/raw/offset_{offset}", 8)

    # -- concrete values -----------------------------------------------------------

    def values(self, data: bytes) -> dict[str, int]:
        """Concrete value of every field present in ``data``."""
        result = {}
        for entry in self._fields:
            if entry.end <= len(data):
                result[entry.path] = entry.read(data)
        return result

    def value(self, data: bytes, path: str) -> int:
        return self.field(path).read(data)

    def differing_fields(self, first: bytes, second: bytes) -> list[str]:
        """Field paths whose values differ between two inputs.

        This is how CP identifies the *relevant bytes* in its experiments: "CP
        identifies the relevant bytes as those input fields that differ
        between the seed and error-triggering inputs" (§3.2).
        """
        first_values = self.values(first)
        second_values = self.values(second)
        differing = []
        for path in self.paths():
            if first_values.get(path) != second_values.get(path):
                differing.append(path)
        return differing


class FormatSpec(abc.ABC):
    """A binary input format understood by the donor/recipient applications."""

    #: Short format name ("jpeg", "png", ...).
    name: str = ""
    #: Human-readable description.
    description: str = ""

    @abc.abstractmethod
    def matches(self, data: bytes) -> bool:
        """Whether ``data`` looks like this format (magic-byte check)."""

    @abc.abstractmethod
    def field_map(self, data: bytes) -> FieldMap:
        """The field layout of ``data``."""

    @abc.abstractmethod
    def build(self, values: Mapping[str, int] | None = None, **overrides: int) -> bytes:
        """Construct a well-formed file, applying ``values``/``overrides`` on
        top of the format's defaults."""

    def parse(self, data: bytes) -> dict[str, int]:
        """Field path -> concrete value for ``data``."""
        return self.field_map(data).values(data)

    def default_values(self) -> dict[str, int]:
        """The field values of the format's canonical seed input."""
        seed = self.build()
        return self.parse(seed)

    def with_values(self, base: bytes, **overrides: int) -> bytes:
        """Return a copy of ``base`` with the given field values replaced."""
        field_map = self.field_map(base)
        data = bytearray(base)
        for path, value in overrides.items():
            field_map.field(_normalise_path(path)).write(data, value)
        return bytes(data)


def _normalise_path(path: str) -> str:
    """Allow keyword-friendly field names (``sof_height``) as overrides."""
    if path.startswith("/"):
        return path
    return "/" + path.replace("__", "/")


def merge_values(
    defaults: Mapping[str, int],
    values: Mapping[str, int] | None,
    overrides: Mapping[str, int],
) -> dict[str, int]:
    """Merge default, explicit, and keyword-style field values."""
    merged = dict(defaults)
    if values:
        for path, value in values.items():
            merged[_normalise_path(path)] = value
    for path, value in overrides.items():
        merged[_normalise_path(path)] = value
    return merged
