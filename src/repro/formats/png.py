"""Simplified PNG format.

Dillo's integer-overflow error (CVE-2009-2294) is triggered by PNG images
whose IHDR ``width`` and ``height`` make the 32-bit buffer-size product
``width * height * depth`` overflow.  The donors (FEH, mtpaint, Viewnior) read
the same IHDR fields.

Layout (33 bytes)::

    00  89 50 4E 47 0D 0A 1A 0A    PNG signature
    08  00 00 00 0D                IHDR chunk length (13)
    0C  49 48 44 52                "IHDR"
    10  ww ww ww ww                /ihdr/width        (32-bit BE)
    14  hh hh hh hh                /ihdr/height       (32-bit BE)
    18  bd                         /ihdr/bit_depth
    19  ct                         /ihdr/color_type
    1A  00 00 00                   compression, filter, interlace
    1D  00 00 00 00                CRC (unchecked)
"""

from __future__ import annotations

from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes


class PngFormat(FixedLayoutFormat):
    """Simplified PNG with a single IHDR chunk."""

    name = "png"
    description = "PNG image (IHDR chunk)"
    total_size = 33

    literals = (
        LiteralBytes(0, b"\x89PNG\r\n\x1a\n", "signature"),
        LiteralBytes(8, b"\x00\x00\x00\x0d", "IHDR length"),
        LiteralBytes(12, b"IHDR", "chunk type"),
        LiteralBytes(26, b"\x00\x00\x00", "compression/filter/interlace"),
    )

    field_defaults = (
        FieldDefault("/ihdr/width", 16, 4, 64, "big", "image width in pixels"),
        FieldDefault("/ihdr/height", 20, 4, 64, "big", "image height in pixels"),
        FieldDefault("/ihdr/bit_depth", 24, 1, 8, "big", "bits per sample"),
        FieldDefault("/ihdr/color_type", 25, 1, 2, "big", "colour type (2 = truecolour)"),
    )


WIDTH = "/ihdr/width"
HEIGHT = "/ihdr/height"
BIT_DEPTH = "/ihdr/bit_depth"
COLOR_TYPE = "/ihdr/color_type"
