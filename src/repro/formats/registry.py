"""Registry of the input formats known to the reproduction."""

from __future__ import annotations

from typing import Iterable

from .dcp import DcpFormat
from .fields import FormatError, FormatSpec
from .gif import GifFormat
from .jp2 import Jp2Format
from .jpeg import JpegFormat
from .png import PngFormat
from .raw import RawFormat
from .swf import SwfFormat
from .tiff import TiffFormat

_FORMATS: dict[str, FormatSpec] = {}


def register_format(format_spec: FormatSpec) -> FormatSpec:
    """Register a format specification under its name."""
    if not format_spec.name:
        raise FormatError("cannot register a format without a name")
    _FORMATS[format_spec.name] = format_spec
    return format_spec


def get_format(name: str) -> FormatSpec:
    """Look up a format by name."""
    try:
        return _FORMATS[name]
    except KeyError:
        known = ", ".join(sorted(_FORMATS))
        raise FormatError(f"unknown format {name!r} (known formats: {known})") from None


def all_formats() -> list[FormatSpec]:
    """All registered formats (raw mode excluded)."""
    return [spec for name, spec in sorted(_FORMATS.items()) if name != "raw"]


def identify(data: bytes) -> FormatSpec:
    """Identify the format of ``data`` by magic bytes (falling back to raw)."""
    for spec in all_formats():
        if spec.matches(data):
            return spec
    return get_format("raw")


def _register_builtin_formats() -> None:
    for spec in (
        JpegFormat(),
        PngFormat(),
        GifFormat(),
        TiffFormat(),
        SwfFormat(),
        Jp2Format(),
        DcpFormat(),
        RawFormat(),
    ):
        register_format(spec)


_register_builtin_formats()
