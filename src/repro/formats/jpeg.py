"""Simplified JPEG/JFIF format.

The paper's CWebP example (Section 2) and three of its donors (FEH, mtpaint,
Viewnior) read JPEG images; the fields that matter to the transferred checks
are the SOF0 frame header's ``height`` and ``width`` (16-bit big-endian) and
the per-component sampling factors.  The paper's excised checks refer to the
dimensions as ``/start_frame/content/height`` and
``/start_frame/content/width`` — the same paths are used here.

Layout (23 bytes)::

    00  FF D8              SOI marker
    02  FF C0              SOF0 marker
    04  00 11              frame header length
    06  08                 sample precision
    07  hh hh              /start_frame/content/height   (16-bit BE)
    09  ww ww              /start_frame/content/width    (16-bit BE)
    0B  nn                 /start_frame/content/nr_components
    0C  01 sf 00           component 1: id, sampling (/start_frame/component0/sampling), qtable
    0F  02 11 01           component 2
    12  03 11 01           component 3
    15  FF D9              EOI marker
"""

from __future__ import annotations

from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes

#: Default sampling byte: horizontal factor 2 in the high nibble, vertical 2 in the low.
_DEFAULT_SAMPLING = 0x22


class JpegFormat(FixedLayoutFormat):
    """Simplified JPEG with an SOF0 frame header."""

    name = "jpeg"
    description = "JPEG image (SOF0 frame header)"
    total_size = 23

    literals = (
        LiteralBytes(0, b"\xff\xd8", "SOI"),
        LiteralBytes(2, b"\xff\xc0", "SOF0"),
        LiteralBytes(4, b"\x00\x11", "frame header length"),
        LiteralBytes(6, b"\x08", "precision"),
        LiteralBytes(12, b"\x01", "component 1 id"),
        LiteralBytes(14, b"\x00", "component 1 quant table"),
        LiteralBytes(15, b"\x02\x11\x01", "component 2"),
        LiteralBytes(18, b"\x03\x11\x01", "component 3"),
        LiteralBytes(21, b"\xff\xd9", "EOI"),
    )

    field_defaults = (
        FieldDefault(
            "/start_frame/content/height", 7, 2, 64, "big", "image height in pixels"
        ),
        FieldDefault(
            "/start_frame/content/width", 9, 2, 64, "big", "image width in pixels"
        ),
        FieldDefault(
            "/start_frame/content/nr_components", 11, 1, 3, "big", "number of colour components"
        ),
        FieldDefault(
            "/start_frame/component0/sampling",
            13,
            1,
            _DEFAULT_SAMPLING,
            "big",
            "component 1 sampling factors (high nibble horizontal, low nibble vertical)",
        ),
    )


#: Field paths used by applications and tests.
HEIGHT = "/start_frame/content/height"
WIDTH = "/start_frame/content/width"
COMPONENTS = "/start_frame/content/nr_components"
SAMPLING = "/start_frame/component0/sampling"
