"""Simplified TIFF format.

ImageMagick Display 6.5.2-8's integer overflow (CVE-2009-1882) is driven by
the ImageWidth / ImageLength / BitsPerSample / SamplesPerPixel IFD entries:
the pixel-buffer length is computed as their 32-bit product without overflow
checking.  Donors FEH and Viewnior read the same entries.

Layout (62 bytes, little-endian per the classic ``II*\\0`` header).  A real
TIFF reader walks the IFD; the simplified layout keeps one IFD with four
entries at fixed offsets — the value word of each entry carries the field::

    00  49 49 2A 00          "II" little-endian magic
    04  08 00 00 00          IFD offset
    08  04 00                entry count
    0A  00 01 ..             entry: ImageWidth        value at 0x12 -> /ifd/width
    16  01 01 ..             entry: ImageLength       value at 0x1E -> /ifd/height
    22  02 01 ..             entry: BitsPerSample     value at 0x2A -> /ifd/bits_per_sample
    2E  15 01 ..             entry: SamplesPerPixel   value at 0x36 -> /ifd/samples_per_pixel
    3A  00 00 00 00          next IFD offset (none)
"""

from __future__ import annotations

from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes


def _entry_header(tag: int) -> bytes:
    """Tag (2 LE) + type LONG (2 LE) + count 1 (4 LE)."""
    return tag.to_bytes(2, "little") + (4).to_bytes(2, "little") + (1).to_bytes(4, "little")


class TiffFormat(FixedLayoutFormat):
    """Simplified little-endian TIFF with a four-entry IFD."""

    name = "tiff"
    description = "TIFF image (single IFD)"
    total_size = 62

    literals = (
        LiteralBytes(0, b"II\x2a\x00", "little-endian magic"),
        LiteralBytes(4, (8).to_bytes(4, "little"), "IFD offset"),
        LiteralBytes(8, (4).to_bytes(2, "little"), "entry count"),
        LiteralBytes(10, _entry_header(256), "ImageWidth entry header"),
        LiteralBytes(22, _entry_header(257), "ImageLength entry header"),
        LiteralBytes(34, _entry_header(258), "BitsPerSample entry header"),
        LiteralBytes(46, _entry_header(277), "SamplesPerPixel entry header"),
        LiteralBytes(58, b"\x00\x00\x00\x00", "next IFD offset"),
    )

    field_defaults = (
        FieldDefault("/ifd/width", 18, 4, 64, "little", "ImageWidth"),
        FieldDefault("/ifd/height", 30, 4, 64, "little", "ImageLength"),
        FieldDefault("/ifd/bits_per_sample", 42, 4, 8, "little", "BitsPerSample"),
        FieldDefault("/ifd/samples_per_pixel", 54, 4, 3, "little", "SamplesPerPixel"),
    )


WIDTH = "/ifd/width"
HEIGHT = "/ifd/height"
BITS_PER_SAMPLE = "/ifd/bits_per_sample"
SAMPLES_PER_PIXEL = "/ifd/samples_per_pixel"
