"""Simplified JPEG-2000 codestream format.

JasPer 1.9's out-of-bounds write (CVE-2012-3352) comes from an off-by-one in
its tile-number check: the code that processes an SOT (start of tile) segment
checks ``tileno > numtiles`` where the correct check — present in OpenJPEG —
is ``tileno >= numtiles`` (with ``numtiles = tw * th``).

Layout (26 bytes, big-endian per the JPEG-2000 codestream syntax)::

    00  FF 4F                SOC marker
    02  FF 51                SIZ marker
    04  00 0C                Lsiz
    06  ww ww ww ww          /siz/width          (32-bit BE)
    0A  hh hh hh hh          /siz/height         (32-bit BE)
    0E  tx                   /siz/tiles_x        (tiles across)
    0F  ty                   /siz/tiles_y        (tiles down)
    10  FF 90                SOT marker
    12  00 0A                Lsot
    14  tn tn                /sot/tileno         (16-bit BE tile index)
    16  ll ll                /sot/tile_bytes     (tile-part length)
    18  FF D9                EOC marker
"""

from __future__ import annotations

from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes


class Jp2Format(FixedLayoutFormat):
    """Simplified JPEG-2000 codestream with one SOT segment."""

    name = "jp2"
    description = "JPEG-2000 codestream (SIZ + SOT segments)"
    total_size = 26

    literals = (
        LiteralBytes(0, b"\xff\x4f", "SOC"),
        LiteralBytes(2, b"\xff\x51", "SIZ"),
        LiteralBytes(4, b"\x00\x0c", "Lsiz"),
        LiteralBytes(16, b"\xff\x90", "SOT"),
        LiteralBytes(18, b"\x00\x0a", "Lsot"),
        LiteralBytes(24, b"\xff\xd9", "EOC"),
    )

    field_defaults = (
        FieldDefault("/siz/width", 6, 4, 256, "big", "image width"),
        FieldDefault("/siz/height", 10, 4, 256, "big", "image height"),
        FieldDefault("/siz/tiles_x", 14, 1, 2, "big", "number of tile columns"),
        FieldDefault("/siz/tiles_y", 15, 1, 2, "big", "number of tile rows"),
        FieldDefault("/sot/tileno", 20, 2, 0, "big", "tile index of this tile-part"),
        FieldDefault("/sot/tile_bytes", 22, 2, 4, "big", "tile-part length"),
    )


WIDTH = "/siz/width"
HEIGHT = "/siz/height"
TILES_X = "/siz/tiles_x"
TILES_Y = "/siz/tiles_y"
TILENO = "/sot/tileno"
TILE_BYTES = "/sot/tile_bytes"
