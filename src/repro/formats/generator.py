"""Input generation and mutation.

The CP experiments obtain their seed and error-triggering inputs from DIODE,
from standard fuzzing, and from CVE proof-of-concept inputs.  This module
provides the building blocks those tools (and the regression suites used
during patch validation) need: seed corpora per format and field-level
mutation of existing inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .fields import FormatSpec


@dataclass(frozen=True)
class LabeledInput:
    """An input file plus the format it was generated for."""

    data: bytes
    format_name: str
    description: str = ""


class InputGenerator:
    """Seed corpora and field mutations for a given format."""

    def __init__(self, format_spec: FormatSpec, seed: int = 0xD10DE) -> None:
        self.format = format_spec
        self._random = random.Random(seed)

    # -- seed corpora ------------------------------------------------------------

    def seed_input(self) -> bytes:
        """The canonical, well-formed seed input."""
        return self.format.build()

    def regression_corpus(self, count: int = 8) -> list[bytes]:
        """A small corpus of benign inputs used as a regression suite.

        The corpus varies every field over modest values that keep the inputs
        well within the applications' supported ranges.
        """
        corpus = [self.seed_input()]
        layout = self.format.field_map(corpus[0])
        paths = layout.paths()
        for index in range(count - 1):
            values: dict[str, int] = {}
            for path in paths:
                width = layout.field(path).width
                # Small benign values, mimicking real-world files: single-byte
                # fields (sampling factors, colour types, code sizes, tile
                # counts) stay in 1..4; wider fields (dimensions, lengths)
                # stay in 1..64.  Never zero: zero-sized dimensions are not
                # representative regression inputs.
                maximum = 4 if width <= 8 else 64
                values[path] = self._random.randrange(1, maximum + 1)
            corpus.append(self.format.build(values))
        return corpus

    # -- mutation ----------------------------------------------------------------

    def mutate_field(self, base: bytes, path: str, value: int) -> bytes:
        """Return ``base`` with a single field replaced."""
        return self.format.with_values(base, **{path: value})

    def mutate_fields(self, base: bytes, values: Mapping[str, int]) -> bytes:
        """Return ``base`` with several fields replaced."""
        return self.format.with_values(base, **dict(values))

    def random_field_mutations(
        self, base: bytes, count: int, paths: Sequence[str] | None = None
    ) -> Iterator[bytes]:
        """Yield ``count`` single-field mutations of ``base``.

        Mutated values are drawn from a mix of boundary values (zero, small,
        maximum, powers of two) and uniformly random values — the classic
        fuzzing value schedule.
        """
        layout = self.format.field_map(base)
        candidate_paths = list(paths) if paths is not None else layout.paths()
        for _ in range(count):
            path = self._random.choice(candidate_paths)
            width = layout.field(path).width
            yield self.mutate_field(base, path, self._interesting_value(width))

    def _interesting_value(self, width: int) -> int:
        maximum = (1 << width) - 1
        boundary = [0, 1, 2, maximum, maximum - 1, maximum // 2, 1 << (width - 1)]
        boundary.extend((1 << shift) for shift in range(0, width, 4))
        if self._random.random() < 0.6:
            return self._random.choice(boundary) & maximum
        return self._random.getrandbits(width)


def corpus_for(formats: Iterable[FormatSpec], per_format: int = 4) -> list[LabeledInput]:
    """A labelled corpus across several formats (used by the donor database)."""
    corpus: list[LabeledInput] = []
    for format_spec in formats:
        generator = InputGenerator(format_spec)
        for index, data in enumerate(generator.regression_corpus(per_format)):
            corpus.append(
                LabeledInput(
                    data=data,
                    format_name=format_spec.name,
                    description=f"{format_spec.name} regression input {index}",
                )
            )
    return corpus
