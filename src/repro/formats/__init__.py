"""Input formats and field trees (the reproduction's Hachoir).

The formats here are simplified but structurally faithful versions of the
formats the paper's benchmark applications consume: JPEG, PNG, GIF, TIFF, SWF,
JPEG-2000 codestreams, and DCP-ETSI network packets, plus a raw
byte-per-field mode for unknown formats.
"""

from .dcp import DcpFormat
from .fields import Field, FieldMap, FormatError, FormatSpec, merge_values
from .generator import InputGenerator, LabeledInput, corpus_for
from .gif import GifFormat
from .jp2 import Jp2Format
from .jpeg import JpegFormat
from .layout import FieldDefault, FixedLayoutFormat, LiteralBytes
from .png import PngFormat
from .raw import RawFormat, raw_path
from .registry import all_formats, get_format, identify, register_format
from .swf import SwfFormat
from .tiff import TiffFormat

__all__ = [
    "DcpFormat",
    "Field",
    "FieldDefault",
    "FieldMap",
    "FixedLayoutFormat",
    "FormatError",
    "FormatSpec",
    "GifFormat",
    "InputGenerator",
    "Jp2Format",
    "JpegFormat",
    "LabeledInput",
    "LiteralBytes",
    "PngFormat",
    "RawFormat",
    "SwfFormat",
    "TiffFormat",
    "all_formats",
    "corpus_for",
    "get_format",
    "identify",
    "merge_values",
    "raw_path",
    "register_format",
]
