"""Campaign plans: deterministic expansion of transfer jobs.

A campaign is any subset or cross-product of the evaluation space
``ERROR_CASES x donors x PatchStrategy/option variants``.  A plan expands
that request into an ordered tuple of :class:`JobSpec` items, each carrying a
deterministic content-addressed ``job_id`` so that a re-run (or a resumed run)
of the same plan recognises its previously completed jobs regardless of the
order in which workers finished them.

Identity and resume semantics
-----------------------------

``job_id`` is a SHA-1 over the job's *semantic* fields only — case, donor,
strategy, variant name, and the sorted option overrides.  Two consequences:

* **Resume is content-addressed, not positional.**  The run store records
  completions by ``job_id``; reordering a plan, interleaving workers, or
  resuming after a crash cannot mis-attribute a completed job.  Conversely,
  editing a variant's overrides changes its jobs' ids, so previously
  recorded completions (correctly) stop matching and the jobs re-run.
* **The variant *name* is part of the identity.**  Two variants with equal
  overrides but different names are distinct jobs — campaigns may
  deliberately A/B the same configuration.

Option-override namespacing
---------------------------

Overrides are split by key into :class:`~repro.core.pipeline.CodePhageOptions`
fields (``_PIPELINE_KEYS``) and nested
:class:`~repro.solver.equivalence.EquivalenceOptions` fields
(``_EQUIVALENCE_KEYS``); unknown keys fail plan expansion up front rather
than on each worker.  Note the interaction with the shared solver cache:
equivalence options are folded into the persistent cache-key *namespace*
(see :mod:`repro.solver.equivalence`), so variants with different solver
settings share the cache file but never each other's verdicts, while
pipeline-only overrides reuse the same namespace — and each other's
verdicts — freely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from ..core.patch import PatchStrategy
from ..core.pipeline import CodePhageOptions
from ..core.stages import POLICIES
from ..experiments import ERROR_CASES, FIGURE8_ROWS
from ..solver.backends import BACKENDS
from ..solver.equivalence import EquivalenceOptions


class PlanError(ValueError):
    """Raised when a campaign request does not match the evaluation space."""


#: Option overrides applied to :class:`CodePhageOptions` itself.
_PIPELINE_KEYS = frozenset(
    {
        "regression_inputs",
        "max_candidate_checks",
        "max_recursive_patches",
        "filter_unstable_points",
        "search_policy",
    }
)

#: Option overrides applied to the nested :class:`EquivalenceOptions`.
_EQUIVALENCE_KEYS = frozenset(
    {
        "use_cache",
        "use_disjoint_field_filter",
        "sample_count",
        "exhaustive_bit_limit",
        "sat_cost_budget",
        "sat_truth_cost_budget",
        "sat_conflict_limit",
        "random_seed",
        "backend",
    }
)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable transfer: a Figure-8 row plus an options variant."""

    case_id: str
    donor: str
    strategy: str = PatchStrategy.EXIT.value
    variant: str = "default"
    overrides: tuple[tuple[str, object], ...] = ()

    @property
    def job_id(self) -> str:
        """Content hash of the job's semantic fields (stable across runs)."""
        canonical = json.dumps(
            {
                "case_id": self.case_id,
                "donor": self.donor,
                "strategy": self.strategy,
                "variant": self.variant,
                "overrides": sorted(self.overrides),
            },
            sort_keys=True,
        )
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]

    def describe(self) -> str:
        suffix = "" if self.variant == "default" else f" [{self.variant}]"
        return f"{self.case_id} <- {self.donor} ({self.strategy}){suffix}"

    # -- serialisation ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "case_id": self.case_id,
            "donor": self.donor,
            "strategy": self.strategy,
            "variant": self.variant,
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobSpec":
        overrides = tuple(sorted((payload.get("overrides") or {}).items()))
        return cls(
            case_id=payload["case_id"],
            donor=payload["donor"],
            strategy=payload.get("strategy", PatchStrategy.EXIT.value),
            variant=payload.get("variant", "default"),
            overrides=overrides,
        )

    # -- execution -------------------------------------------------------------------

    def build_options(
        self, persistent_cache_path: Optional[str] = None
    ) -> CodePhageOptions:
        """Materialise the pipeline options this job runs under."""
        pipeline_kwargs: dict = {}
        equivalence_kwargs: dict = {}
        for key, value in self.overrides:
            if key in _PIPELINE_KEYS:
                pipeline_kwargs[key] = value
            elif key in _EQUIVALENCE_KEYS:
                equivalence_kwargs[key] = value
            else:
                raise PlanError(f"unknown option override {key!r}")
        equivalence = EquivalenceOptions(
            persistent_cache_path=persistent_cache_path, **equivalence_kwargs
        )
        return CodePhageOptions(
            patch_strategy=PatchStrategy(self.strategy),
            equivalence_options=equivalence,
            **pipeline_kwargs,
        )


@dataclass(frozen=True)
class CampaignPlan:
    """An ordered, validated collection of jobs."""

    name: str
    jobs: tuple[JobSpec, ...] = ()

    def __post_init__(self) -> None:
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise PlanError("plan contains duplicate jobs")

    def job_ids(self) -> tuple[str, ...]:
        return tuple(job.job_id for job in self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def to_dict(self) -> dict:
        return {"name": self.name, "jobs": [job.to_dict() for job in self.jobs]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignPlan":
        return cls(
            name=payload.get("name", "campaign"),
            jobs=tuple(JobSpec.from_dict(entry) for entry in payload.get("jobs", ())),
        )


def _validated_strategies(strategies: Optional[Sequence[str]]) -> tuple[str, ...]:
    """Deduplicate and validate patch-strategy names (default: exit)."""
    strategy_values = (
        tuple(dict.fromkeys(strategies)) if strategies else (PatchStrategy.EXIT.value,)
    )
    for strategy in strategy_values:
        try:
            PatchStrategy(strategy)
        except ValueError:
            raise PlanError(f"unknown patch strategy {strategy!r}") from None
    return strategy_values


def _validated_variants(
    variants: Optional[Mapping[str, Mapping[str, object]]],
) -> list[tuple[str, Mapping[str, object]]]:
    """Validate option-override variants up front (default: one empty variant).

    Fail fast on typo'd override keys: a bad variant is a plan error, not
    something every worker should discover (and retry) at run time.
    """
    variant_items: list[tuple[str, Mapping[str, object]]] = (
        list(variants.items()) if variants else [("default", {})]
    )
    known_keys = _PIPELINE_KEYS | _EQUIVALENCE_KEYS
    for variant_name, overrides in variant_items:
        unknown = sorted(set(overrides) - known_keys)
        if unknown:
            raise PlanError(
                f"variant {variant_name!r} has unknown option override(s): "
                + ", ".join(unknown)
            )
        policy = overrides.get("search_policy")
        if policy is not None and policy not in POLICIES:
            raise PlanError(
                f"variant {variant_name!r} has unknown search policy {policy!r}; "
                "expected one of " + ", ".join(sorted(POLICIES))
            )
        backend = overrides.get("backend")
        if backend is not None and backend not in BACKENDS:
            raise PlanError(
                f"variant {variant_name!r} has unknown solver backend {backend!r}; "
                "expected one of " + ", ".join(sorted(BACKENDS))
            )
    return variant_items


def expand_plan(
    cases: Optional[Iterable[str]] = None,
    donors: Optional[Iterable[str]] = None,
    strategies: Optional[Sequence[str]] = None,
    variants: Optional[Mapping[str, Mapping[str, object]]] = None,
    name: str = "campaign",
) -> CampaignPlan:
    """Expand a campaign request into a deterministic job list.

    ``cases`` / ``donors`` restrict the evaluation space (defaults: every
    error case, every donor the case lists); ``strategies`` selects patch
    strategies; ``variants`` maps a variant name to option overrides.  Job
    order is the cross-product in evaluation order (case, donor, strategy,
    variant), so a full default expansion matches ``FIGURE8_ROWS``.
    """
    if cases is None:
        case_ids = list(ERROR_CASES)
    else:
        # Deduplicate while preserving order: a repeated value in a scripted
        # or shell-expanded list should not abort the campaign.
        case_ids = list(dict.fromkeys(cases))
        unknown = [case_id for case_id in case_ids if case_id not in ERROR_CASES]
        if unknown:
            raise PlanError(f"unknown error case(s): {', '.join(unknown)}")

    donor_filter = set(donors) if donors is not None else None
    if donor_filter is not None:
        known_donors = {d for case in ERROR_CASES.values() for d in case.donors}
        unknown = sorted(donor_filter - known_donors)
        if unknown:
            raise PlanError(f"unknown donor(s): {', '.join(unknown)}")

    strategy_values = _validated_strategies(strategies)
    variant_items = _validated_variants(variants)

    jobs: list[JobSpec] = []
    empty_cases: list[str] = []
    for case_id in case_ids:
        case = ERROR_CASES[case_id]
        donors_for_case = [
            donor
            for donor in case.donors
            if donor_filter is None or donor in donor_filter
        ]
        if not donors_for_case:
            empty_cases.append(case_id)
            continue
        for donor in donors_for_case:
            for strategy in strategy_values:
                for variant_name, overrides in variant_items:
                    jobs.append(
                        JobSpec(
                            case_id=case_id,
                            donor=donor,
                            strategy=strategy,
                            variant=variant_name,
                            overrides=tuple(sorted(overrides.items())),
                        )
                    )
    if cases is not None and empty_cases:
        # The caller named these cases explicitly; dropping them silently
        # would make the campaign's table shorter than requested.
        raise PlanError(
            "donor filter excludes every donor of requested case(s): "
            + ", ".join(empty_cases)
        )
    if not jobs:
        raise PlanError("campaign request selects no jobs")
    return CampaignPlan(name=name, jobs=tuple(jobs))


def figure8_plan(name: str = "figure8") -> CampaignPlan:
    """The canonical plan: every Figure 8 row, default options, paper order."""
    return CampaignPlan(
        name=name,
        jobs=tuple(
            JobSpec(case_id=row.case_id, donor=row.donor) for row in FIGURE8_ROWS
        ),
    )


def matrix_plan(
    transfers: Iterable[tuple[str, str]],
    strategies: Optional[Sequence[str]] = None,
    variants: Optional[Mapping[str, Mapping[str, object]]] = None,
    name: str = "matrix",
) -> CampaignPlan:
    """Expand explicit ``(case_id, donor)`` transfers into a campaign plan.

    This is the scenario-matrix entry point: unlike :func:`expand_plan` the
    case ids are *not* validated against the paper's ``ERROR_CASES`` —
    generated corpora (:mod:`repro.scenarios`) bring their own
    content-addressed cases, and whoever runs the plan supplies a runner
    that can resolve them.  Strategy and variant validation (and the
    deterministic job-id scheme, and therefore resume) are shared with
    :func:`expand_plan`.
    """
    strategy_values = _validated_strategies(strategies)
    variant_items = _validated_variants(variants)
    jobs = [
        JobSpec(
            case_id=case_id,
            donor=donor,
            strategy=strategy,
            variant=variant_name,
            overrides=tuple(sorted(overrides.items())),
        )
        for case_id, donor in dict.fromkeys(transfers)
        for strategy in strategy_values
        for variant_name, overrides in variant_items
    ]
    if not jobs:
        raise PlanError("matrix request selects no jobs")
    return CampaignPlan(name=name, jobs=tuple(jobs))
