"""Multiprocess campaign scheduler with retry, timeout, and resume.

The scheduler owns the control plane of a campaign: it launches each pending
job in its own worker process (up to ``jobs`` concurrently), collects results,
and appends every attempt to the :class:`RunStore`.  Workers are isolated
processes, so a crashing transfer (or one killed by the per-job timeout)
cannot take the campaign down — the attempt is recorded and the job retried
up to ``retries`` extra times (crashes, timeouts, and runner exceptions all
count as failed attempts).

Result transport is split in two to stay robust against ``terminate()``:

* the *payload* (the transfer record, arbitrarily large) is written to a
  per-attempt file in the store's ``outbox/`` directory via atomic rename;
* the *doorbell* (job id, attempt, ok/error) goes over a shared queue as a
  small fixed-size message — well under ``PIPE_BUF``, so a worker killed
  mid-send cannot leave a torn pickle frame that poisons the queue.

The outbox file, not the queue message, is the ground truth for a worker
that exited cleanly: if the doorbell is lost or late, the scheduler recovers
the result from the file instead of misclassifying the job as crashed.

Retry semantics
---------------

A job gets ``1 + retries`` attempts.  Crashes (non-zero worker exit),
per-attempt timeouts, runner exceptions, and unreadable result payloads all
count as failed attempts; *every* attempt — including the failed ones — is
appended to the store, so a resumed run sees the full history.  Retried jobs
go to the back of the pending queue (other jobs are not starved behind a
flapping one), and ``timeout_s`` bounds each attempt individually, so a job
with retries may run for ``(1 + retries) * timeout_s`` of wall clock in
total.  A job is *failed* for this run only when its attempt budget is
exhausted; a later ``run()`` against the same store starts a fresh budget.

Resume semantics
----------------

``run()`` asks the store for completed job ids up front and never launches
those jobs again — resume is skip-by-id, there is no in-flight state to
reconstruct.  Jobs that were running when a previous campaign died simply
have no completion record and run again from scratch.  The ``outbox/``
scratch directory is wiped at startup: payload files from a killed run are
unreadable-by-design remnants whose doorbell never fired, and their jobs
will be re-attempted anyway.

Only the scheduler writes ``records.jsonl``.  The one multi-writer file is
the persistent solver cache, which is designed for concurrent appends (see
:mod:`repro.campaign.cache`); workers attach to it via the cache path the
scheduler passes down, and their verdicts are namespaced by solver options
so different option variants never replay each other's results (see
:mod:`repro.solver.equivalence`).

The worker entry point is :func:`repro.experiments.execute_job`, which runs
each transfer through the :mod:`repro.api` facade — the scheduler knows
nothing about pipeline stages; the per-stage timing breakdown each worker
reports (``stage_timings`` on the record) is persisted with every attempt
and aggregated into the :class:`CampaignReport`.  Tests inject a stub
``runner`` (any module-level callable with the same signature) to exercise
scheduling policies without running real transfers.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable, Optional

from ..obs import metrics as obs_metrics
from .execution import (
    AttemptLedger,
    ClassAccountant,
    account_completed,
    account_skipped,
    discard_payload,
    payload_exists,
    read_payload,
    remove_outbox,
    reset_outbox,
    write_payload,
)
from .plan import CampaignPlan, JobSpec
from .store import (
    STATUS_CRASHED,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    JobResult,
    RunStore,
)

#: A runner maps (job payload, persistent cache path) -> result payload with
#: a ``record`` dict and an ``elapsed_s`` float.  Must be picklable
#: (module-level) so it survives non-fork start methods.
Runner = Callable[[dict, Optional[str]], dict]


def default_job_runner(payload: dict, cache_path: Optional[str]) -> dict:
    """Run one real transfer; executed inside a worker process.

    Besides the record, the payload ships the job's serialized event stream
    (persisted to the store's ``events/`` directory for ``codephage trace``
    and ``codephage bundle``) and a per-job metrics snapshot: the worker's
    registry is reset and enabled around the transfer, so the snapshot is
    exactly this attempt's counters even under fork-started workers that
    inherit parent registry state.
    """
    from ..core.events import events_as_dicts
    from ..core.reporting import TransferRecord
    from ..experiments import execute_job_report

    job = JobSpec.from_dict(payload)
    obs_metrics.REGISTRY.reset()
    obs_metrics.REGISTRY.enable()
    start = time.perf_counter()
    report = execute_job_report(job, persistent_cache_path=cache_path)
    record = TransferRecord.from_outcome(report.outcome)
    return {
        "record": asdict(record),
        "elapsed_s": time.perf_counter() - start,
        "events": events_as_dicts(report.events),
        "metrics": obs_metrics.REGISTRY.snapshot(),
    }


def _worker_main(
    runner: Runner,
    payload: dict,
    cache_path: Optional[str],
    results,
    attempt: int,
    outbox: str,
) -> None:
    job_id = payload.get("job_id", "")
    try:
        result = runner(payload, cache_path)
        write_payload(outbox, job_id, attempt, result)
        message = {
            "job_id": job_id,
            "attempt": attempt,
            "ok": True,
            "elapsed_s": result.get("elapsed_s", 0.0),
        }
    except Exception as exc:  # noqa: BLE001 - report, parent decides on retry
        message = {
            "job_id": job_id,
            "attempt": attempt,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}"[:300],
        }
    results.put(message)


@dataclass
class SchedulerOptions:
    """Control-plane knobs."""

    jobs: int = 1
    timeout_s: Optional[float] = None   # per-attempt wall-clock limit
    retries: int = 1                    # extra attempts after crash/timeout/error
    poll_interval_s: float = 0.02
    start_method: Optional[str] = None  # default: fork when available
    use_persistent_cache: bool = True


@dataclass
class CampaignReport:
    """What one scheduler run did, plus aggregate solver accounting."""

    plan_name: str
    total_jobs: int
    completed: int = 0          # jobs newly completed by this run
    skipped: int = 0            # jobs already completed when the run started
    failed: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    cache_enabled: bool = True
    solver_queries: int = 0
    solver_cache_hits: int = 0
    persistent_cache_hits: int = 0
    expensive_queries: int = 0
    batch_hits: int = 0
    #: Wall time per pipeline stage, summed over every completed job (the
    #: per-job deltas are persisted with each attempt record in the store).
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: Per-backend solver counters summed over every completed job, keyed by
    #: backend name ("cdcl", "dpll", "portfolio"): queries, sat/unsat/unknown
    #: verdicts, conflicts, learned clauses, wall time, portfolio wins.
    backend_stats: dict[str, dict] = field(default_factory=dict)
    #: Per-class transfer accounting, populated only when the scheduler was
    #: given a ``job_class`` mapping (the scenario matrix maps each job to
    #: its :class:`~repro.lang.trace.ErrorKind`): class name -> counters
    #: ``jobs`` (settled this run or skipped as already done), ``completed``,
    #: ``validated`` (completed with a successful transfer), ``failed``.
    #: Skipped jobs contribute their stored record's verdict, so a resumed
    #: matrix reports the same rates as an uninterrupted one.
    class_stats: dict[str, dict] = field(default_factory=dict)
    #: Merged worker telemetry (a :mod:`repro.obs.metrics` snapshot —
    #: counters add, gauges keep the peak, histograms merge) plus the
    #: scheduler's own control-plane gauges (peak queue depth, worker
    #: utilization).  Empty when workers ship no snapshots (stub runners).
    metrics: dict = field(default_factory=dict)

    def class_success_rates(self) -> dict[str, float]:
        """Validated-transfer rate per class (0.0 when nothing settled)."""
        return {
            name: (counters["validated"] / counters["jobs"]) if counters["jobs"] else 0.0
            for name, counters in self.class_stats.items()
        }

    def false_accept_rate(self) -> Optional[float]:
        """Share of adversarial near-miss donors that validated anyway.

        Adversarial jobs register a donor whose check *looks* protective but
        is off-by-one or wrong-bound; a sound validation rejects every one,
        so this rate's target is 0.0.  ``None`` when the run had no
        adversarial jobs (the rate is then meaningless, not perfect).
        """
        counters = self.class_stats.get("hardness:adversarial")
        if not counters or not counters["jobs"]:
            return None
        return counters["validated"] / counters["jobs"]

    @property
    def persistent_hit_rate(self) -> float:
        if not self.solver_queries:
            return 0.0
        return self.persistent_cache_hits / self.solver_queries

    def summary(self) -> str:
        parts = [
            f"{self.completed} completed",
            f"{self.skipped} skipped (already done)",
            f"{len(self.failed)} failed",
            f"{self.elapsed_s:.2f}s",
        ]
        if self.cache_enabled:
            cache = (
                f"persistent solver cache: {self.persistent_cache_hits}/"
                f"{self.solver_queries} hits ({self.persistent_hit_rate:.1%}), "
                f"{self.expensive_queries} expensive queries"
            )
        else:
            cache = (
                f"persistent solver cache: disabled, "
                f"{self.expensive_queries} expensive queries"
            )
        lines = [f"campaign {self.plan_name}: " + ", ".join(parts), cache]
        if self.batch_hits:
            lines.append(f"query batch: {self.batch_hits} deduped queries")
        counters = self.metrics.get("counters") or {}
        gauges = self.metrics.get("gauges") or {}
        if counters:
            lines.append(
                f"telemetry: {int(counters.get('pipeline.donor_attempts', 0))} donor "
                f"attempts, {int(counters.get('solver.queries', 0))} solver queries, "
                f"{int(counters.get('vm.instructions_retired', 0))} VM instructions "
                "retired"
            )
        if counters.get("vm.runs"):
            compiles = int(counters.get("vm.compiles", 0))
            cache_hits = int(counters.get("vm.compile_cache_hits", 0))
            lines.append(
                f"execution tiers: {int(counters.get('vm.runs_compiled', 0))} "
                f"compiled / {int(counters.get('vm.runs_interpreted', 0))} "
                f"interpreted runs, compile cache {cache_hits} hits / "
                f"{compiles} compiles"
            )
        if "campaign.worker_utilization" in gauges:
            lines.append(
                f"workers: {gauges['campaign.worker_utilization']:.0%} utilized, "
                f"peak queue depth {int(gauges.get('campaign.queue_depth_peak', 0))}"
            )
        if "dist.nodes" in gauges:
            lines.append(
                f"distributed: {int(gauges['dist.nodes'])} nodes, "
                f"{int(counters.get('dist.steals', 0))} steals, "
                f"{int(counters.get('dist.jobs_reassigned', 0))} jobs re-rung "
                f"after {int(counters.get('dist.node_failures', 0))} node "
                f"failures, cache {int(counters.get('dist.cache_local_hits', 0))} "
                f"local / {int(counters.get('dist.cache_remote_hits', 0))} remote "
                f"hits, {int(counters.get('dist.cache_hops', 0))} hops"
            )
        if self.stage_timings:
            breakdown = ", ".join(
                f"{stage} {elapsed:.2f}s"
                for stage, elapsed in sorted(
                    self.stage_timings.items(), key=lambda item: -item[1]
                )
            )
            lines.append(f"per-stage time (all jobs): {breakdown}")
        for name in sorted(self.backend_stats):
            counters = self.backend_stats[name]
            detail = (
                f"backend {name}: {counters.get('queries', 0)} queries "
                f"({counters.get('sat', 0)} sat, {counters.get('unsat', 0)} unsat, "
                f"{counters.get('unknown', 0)} unknown), "
                f"{counters.get('conflicts', 0)} conflicts, "
                f"{counters.get('learned_clauses', 0)} learned, "
                f"{counters.get('time_s', 0.0):.2f}s"
            )
            if counters.get("wins"):
                detail += f", {counters['wins']} portfolio wins"
            lines.append(detail)
        for name in sorted(self.class_stats):
            counters = self.class_stats[name]
            lines.append(
                f"class {name}: {counters['validated']}/{counters['jobs']} "
                f"transfers validated"
                + (f", {counters['failed']} failed" if counters["failed"] else "")
            )
        false_accepts = self.false_accept_rate()
        if false_accepts is not None:
            lines.append(
                f"false-accept rate (near-miss donors validated): {false_accepts:.1%}"
            )
        return "\n".join(lines)


@dataclass
class _Running:
    process: multiprocessing.Process
    job: JobSpec
    attempt: int
    started_at: float


class CampaignScheduler:
    """Schedules a plan's pending jobs over a pool of worker processes."""

    def __init__(
        self,
        plan: CampaignPlan,
        store: RunStore,
        options: Optional[SchedulerOptions] = None,
        runner: Runner = default_job_runner,
        job_class: Optional[object] = None,
    ) -> None:
        self.plan = plan
        self.store = store
        self.options = options or SchedulerOptions()
        self.runner = runner
        # job_class maps a job to its reporting class (the scenario matrix
        # passes each case's ErrorKind): either a callable over JobSpec or a
        # mapping keyed by case id.  Runs in the parent process only.
        self._accountant = ClassAccountant(job_class)

    # -- public API ------------------------------------------------------------------

    def run(self, on_result: Optional[Callable[[JobSpec, JobResult], None]] = None) -> CampaignReport:
        """Run every pending job; returns the report for *this* invocation."""
        start = time.perf_counter()
        stored = self.store.results()
        completed_before = {
            job_id for job_id, result in stored.items() if result.completed
        }
        pending = deque(
            job for job in self.plan.jobs if job.job_id not in completed_before
        )
        report = CampaignReport(
            plan_name=self.plan.name,
            total_jobs=len(self.plan.jobs),
            skipped=len(self.plan.jobs) - len(pending),
            cache_enabled=self.options.use_persistent_cache,
        )
        if report.skipped:
            # Skipped jobs still count toward per-class rates: take their
            # verdict from the stored record so a resumed run reports the
            # same rates as an uninterrupted one.
            account_skipped(report, self.plan, stored, self._accountant)
        cache_path = (
            str(self.store.cache_path) if self.options.use_persistent_cache else None
        )
        outbox = reset_outbox(self.store)  # leftovers from a killed run

        method = self.options.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        ctx = multiprocessing.get_context(method)
        results: multiprocessing.Queue = ctx.Queue()
        running: dict[str, _Running] = {}
        ledger = AttemptLedger(self.options.retries)
        slots = max(1, self.options.jobs)
        # Control-plane telemetry: peak depth/occupancy and total worker-busy
        # seconds (for the utilization gauge folded into report.metrics).
        peak = {"queue": 0, "workers": 0}
        busy = {"s": 0.0}

        def finish(entry: _Running, result: JobResult) -> None:
            """Record one settled attempt and decide what happens next."""
            busy["s"] += time.perf_counter() - entry.started_at
            self.store.append(result)
            if result.completed:
                account_completed(report, result)
                report.completed += 1
                self._accountant.account(
                    report, entry.job, completed=True,
                    success=bool((result.record or {}).get("success")),
                )
            elif not ledger.exhausted(entry.job.job_id):
                # Retries go to the back of the queue: other jobs are not
                # starved behind a flapping one.
                pending.append(entry.job)
            else:
                report.failed.append(entry.job.job_id)
                self._accountant.account(report, entry.job, completed=False)
            if on_result is not None:
                on_result(entry.job, result)

        def settle(entry: _Running, ok: bool, elapsed_s: float, error: str) -> None:
            running.pop(entry.job.job_id, None)
            entry.process.join(timeout=5)
            if ok:
                try:
                    payload = read_payload(outbox, entry.job.job_id, entry.attempt)
                except (OSError, json.JSONDecodeError) as exc:
                    finish(
                        entry,
                        JobResult(
                            job_id=entry.job.job_id,
                            status=STATUS_ERROR,
                            attempt=entry.attempt,
                            error=f"result payload unreadable: {exc}",
                        ),
                    )
                    return
                finally:
                    discard_payload(outbox, entry.job.job_id, entry.attempt)
                events = payload.get("events") or []
                if events:
                    self.store.write_events(entry.job.job_id, events)
                snapshot = payload.get("metrics")
                if snapshot:
                    obs_metrics.merge_snapshots(report.metrics, snapshot)
                finish(
                    entry,
                    JobResult(
                        job_id=entry.job.job_id,
                        status=STATUS_DONE,
                        attempt=entry.attempt,
                        elapsed_s=elapsed_s or payload.get("elapsed_s", 0.0),
                        record=payload.get("record"),
                    ),
                )
            else:
                discard_payload(outbox, entry.job.job_id, entry.attempt)
                finish(
                    entry,
                    JobResult(
                        job_id=entry.job.job_id,
                        status=STATUS_ERROR,
                        attempt=entry.attempt,
                        error=error,
                    ),
                )

        def handle(message: dict) -> None:
            entry = running.get(message.get("job_id", ""))
            if entry is None or message.get("attempt") != entry.attempt:
                # No live attempt, or a doorbell from an attempt already
                # written off (e.g. terminated for timeout after it rang):
                # drop it — and its payload — rather than crediting the
                # currently running attempt with a stale record.
                job_id = message.get("job_id", "")
                attempt = message.get("attempt")
                if job_id and isinstance(attempt, int):
                    discard_payload(outbox, job_id, attempt)
                return
            settle(
                entry,
                ok=bool(message.get("ok")),
                elapsed_s=message.get("elapsed_s", 0.0),
                error=message.get("error", ""),
            )

        def drain(block_s: float = 0.0) -> None:
            deadline = time.perf_counter() + block_s
            while True:
                try:
                    handle(results.get_nowait())
                except queue_module.Empty:
                    if time.perf_counter() >= deadline:
                        return
                    time.sleep(0.005)

        while pending or running:
            while pending and len(running) < slots:
                job = pending.popleft()
                attempt = ledger.begin(job.job_id)
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        self.runner,
                        job.to_dict(),
                        cache_path,
                        results,
                        attempt,
                        str(outbox),
                    ),
                    daemon=True,
                )
                process.start()
                running[job.job_id] = _Running(process, job, attempt, time.perf_counter())

            peak["queue"] = max(peak["queue"], len(pending))
            peak["workers"] = max(peak["workers"], len(running))
            # Live readings for progress observers (no-ops while disabled).
            obs_metrics.set_gauge("campaign.queue_depth", len(pending))
            obs_metrics.set_gauge("campaign.workers_active", len(running))

            drain()
            for job_id, entry in list(running.items()):
                if job_id not in running:
                    continue  # resolved by a drain() earlier in this scan
                # Recomputed per entry: an earlier blocking drain in this
                # scan must not let other workers overrun their deadline.
                now = time.perf_counter()
                timed_out = (
                    self.options.timeout_s is not None
                    and now - entry.started_at > self.options.timeout_s
                )
                if timed_out and entry.process.is_alive():
                    # A result may have arrived at the deadline; prefer it.
                    drain()
                    if job_id not in running:
                        continue
                    entry.process.terminate()
                    entry.process.join(timeout=1)
                    running.pop(job_id, None)
                    discard_payload(outbox, job_id, entry.attempt)
                    finish(
                        entry,
                        JobResult(
                            job_id=job_id,
                            status=STATUS_TIMEOUT,
                            attempt=entry.attempt,
                            elapsed_s=now - entry.started_at,
                            error=f"timed out after {self.options.timeout_s}s",
                        ),
                    )
                elif not entry.process.is_alive():
                    # The worker exited: give its doorbell a moment to arrive.
                    # Only a clean exit can have rung one, so don't stall the
                    # control loop waiting on a killed worker's silence.
                    drain(block_s=0.25 if entry.process.exitcode == 0 else 0.0)
                    if job_id not in running:
                        continue
                    # Doorbell lost or late — the outbox file is the ground
                    # truth for a worker that exited cleanly.
                    if entry.process.exitcode == 0 and payload_exists(
                        outbox, job_id, entry.attempt
                    ):
                        settle(entry, ok=True, elapsed_s=0.0, error="")
                        continue
                    running.pop(job_id, None)
                    finish(
                        entry,
                        JobResult(
                            job_id=job_id,
                            status=STATUS_CRASHED,
                            attempt=entry.attempt,
                            error=f"worker exited with code {entry.process.exitcode}",
                        ),
                    )

            if running:
                time.sleep(self.options.poll_interval_s)

        results.close()
        remove_outbox(self.store)
        report.elapsed_s = time.perf_counter() - start
        utilization = (
            busy["s"] / (slots * report.elapsed_s) if report.elapsed_s > 0 else 0.0
        )
        obs_metrics.merge_snapshots(
            report.metrics,
            {
                "gauges": {
                    "campaign.queue_depth_peak": peak["queue"],
                    "campaign.workers_active_peak": peak["workers"],
                    "campaign.worker_utilization": round(min(utilization, 1.0), 4),
                }
            },
        )
        return report
