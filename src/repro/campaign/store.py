"""Resumable on-disk run store for campaigns.

A run store is a directory holding everything one campaign run produces:

* ``plan.json`` — the expanded plan, written at initialisation and verified
  on resume (a store can only be resumed with the plan that created it);
* ``records.jsonl`` — one line per job *attempt* (done, crashed, timed out,
  or errored), appended as workers finish, in completion order;
* ``solver_cache.jsonl`` — the persistent solver query cache shared by the
  campaign's workers (see :mod:`repro.campaign.cache`);
* ``events/<job-id>.jsonl`` — the serialized pipeline event stream of each
  job's latest completed attempt, persisted by workers so that traces
  (``codephage trace``) and evidence bundles (``codephage bundle``) can be
  rebuilt after the run (see :mod:`repro.obs`).

Because every attempt is appended rather than rewritten, killing a campaign
mid-run loses at most the in-flight jobs; re-opening the store recovers the
set of completed jobs and the scheduler skips them.  ``merge_into_database``
re-orders the surviving records into *plan* order, so a resumed or parallel
run renders the same table as a serial one.

Resume and retry, concretely
----------------------------

* A job counts as *completed* when any recorded attempt has status
  ``done``; :meth:`RunStore.results` keeps the latest attempt per job but
  never lets a later failed attempt shadow an earlier completion (a retried
  timeout racing a late success must not un-complete the job).
* ``records.jsonl`` may legitimately hold several lines per job — one per
  attempt, failures included.  Consumers must aggregate via
  :meth:`RunStore.results`; reading raw lines as "one job each" is wrong.
* A torn trailing line (scheduler killed mid-append) is skipped on read;
  at most that one attempt record is lost, and the affected job re-runs.
* ``initialise(fresh=True)`` deletes the *records*, not the solver cache:
  verdicts are keyed by expression digests + solver options
  (:mod:`repro.campaign.cache`), which remain valid across any re-plan of
  the same code, so a fresh campaign restarts from zero completed jobs but
  with warm solver state.  Plan identity is compared as the *set* of job
  ids — resuming with a reordered but equal plan is allowed; any addition
  or removal requires ``fresh`` or a new directory.

Cache-key namespacing
---------------------

The store hands workers one shared ``solver_cache.jsonl``; isolation between
incompatible configurations happens in the *keys*, not in files.  Each entry
key is ``<namespace>##<digest-key>`` where the namespace folds in the cache
schema version and every equivalence option (sampling depth, SAT budgets,
seed — see ``EquivalenceChecker._ns_neutral``/``_ns_backend``: proved
verdicts are shared across solver backends, budget-limited ones quarantined
per backend), and the digest key identifies the simplified query
(order-insensitive pairs for equivalence, ``##sat##``-tagged single digests
for satisfiability).  Campaign variants with different solver options
therefore coexist in one file without replaying
each other's verdicts, and bumping
:data:`repro.solver.equivalence.CACHE_SCHEMA_VERSION` retires stale entries
wholesale without touching the file.
"""

from __future__ import annotations

import json
import shutil
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Optional

from ..core.reporting import ResultsDatabase, TransferRecord
from .plan import CampaignPlan


class StoreError(RuntimeError):
    """Raised on plan mismatches and malformed store directories."""


#: Attempt status values recorded in ``records.jsonl``.
STATUS_DONE = "done"
STATUS_CRASHED = "crashed"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


@dataclass
class JobResult:
    """Outcome of one attempt at one job."""

    job_id: str
    status: str
    attempt: int = 1
    elapsed_s: float = 0.0
    record: Optional[dict] = None  # asdict(TransferRecord) when status == done
    error: str = ""

    @property
    def completed(self) -> bool:
        return self.status == STATUS_DONE

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "JobResult":
        return cls(
            job_id=payload["job_id"],
            status=payload["status"],
            attempt=payload.get("attempt", 1),
            elapsed_s=payload.get("elapsed_s", 0.0),
            record=payload.get("record"),
            error=payload.get("error", ""),
        )


class RunStore:
    """Directory-backed, append-only record of a campaign run."""

    PLAN_FILE = "plan.json"
    RECORDS_FILE = "records.jsonl"
    CACHE_FILE = "solver_cache.jsonl"
    EVENTS_DIR = "events"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    @property
    def plan_path(self) -> Path:
        return self.directory / self.PLAN_FILE

    @property
    def records_path(self) -> Path:
        return self.directory / self.RECORDS_FILE

    @property
    def cache_path(self) -> Path:
        return self.directory / self.CACHE_FILE

    @property
    def events_dir(self) -> Path:
        return self.directory / self.EVENTS_DIR

    def events_path(self, job_id: str) -> Path:
        return self.events_dir / f"{job_id}.jsonl"

    # -- lifecycle -------------------------------------------------------------------

    def initialise(self, plan: CampaignPlan, fresh: bool = False) -> None:
        """Create the store (or attach to an existing one) for ``plan``.

        ``fresh`` discards previous attempt records and adopts ``plan`` even
        if the store was created for a different one — but keeps the solver
        cache, which stays valid across runs of any plan — so the campaign
        restarts from zero completed jobs with a warm cache.  Without
        ``fresh``, attaching to a store built for a different plan is an
        error (its records cannot be resumed into this plan).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if not fresh and self.plan_path.exists():
            existing = self.load_plan()
            if set(existing.job_ids()) != set(plan.job_ids()):
                raise StoreError(
                    f"store {self.directory} was created for plan "
                    f"{existing.name!r} with different jobs; "
                    "re-run with --fresh to replace it or use a new directory"
                )
        if fresh and self.records_path.exists():
            self.records_path.unlink()
        if fresh and self.events_dir.exists():
            shutil.rmtree(self.events_dir, ignore_errors=True)
        self.plan_path.write_text(json.dumps(plan.to_dict(), indent=2))

    def clear(self) -> None:
        """Remove the whole store directory (records, plan, and cache)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    def load_plan(self) -> CampaignPlan:
        try:
            payload = json.loads(self.plan_path.read_text())
        except FileNotFoundError:
            raise StoreError(f"store {self.directory} has no plan") from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"store {self.directory} has a corrupt plan: {exc}") from None
        return CampaignPlan.from_dict(payload)

    # -- records ---------------------------------------------------------------------

    def append(self, result: JobResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(result.to_dict(), separators=(",", ":"))
        with open(self.records_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def attempts(self) -> Iterator[JobResult]:
        """Every recorded attempt, in append order.

        A torn line (the writer killed mid-append) is skipped with a
        warning rather than raised: the interrupted attempt has no
        completion record, so its job simply re-runs on resume.
        """
        try:
            text = self.records_path.read_text()
        except FileNotFoundError:
            return
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"skipping torn record at {self.records_path}:{number} "
                    "(writer interrupted mid-append); the attempt will re-run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            yield JobResult.from_dict(payload)

    def results(self) -> dict[str, JobResult]:
        """Latest attempt per job, preferring a completed one."""
        latest: dict[str, JobResult] = {}
        for result in self.attempts():
            current = latest.get(result.job_id)
            if current is not None and current.completed and not result.completed:
                continue
            latest[result.job_id] = result
        return latest

    def completed_ids(self) -> set[str]:
        return {job_id for job_id, result in self.results().items() if result.completed}

    # -- per-job event streams ---------------------------------------------------------

    def write_events(self, job_id: str, events: list[dict]) -> Path:
        """Persist a job's serialized event stream (one JSON dict per line).

        Overwrites any earlier attempt's stream — the events on disk always
        describe the same attempt as the latest record for the job.
        """
        path = self.events_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            "".join(json.dumps(event, separators=(",", ":")) + "\n" for event in events)
        )
        return path

    def load_event_dicts(self, job_id: str) -> list[dict]:
        """The stored event stream for ``job_id`` ([] when none was persisted)."""
        try:
            text = self.events_path(job_id).read_text()
        except FileNotFoundError:
            return []
        events = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn write from an interrupted run
        return events

    # -- reporting -------------------------------------------------------------------

    def merge_into_database(self, plan: Optional[CampaignPlan] = None) -> ResultsDatabase:
        """Collect completed records into a :class:`ResultsDatabase` in plan order."""
        if plan is None:
            plan = self.load_plan()
        results = self.results()
        database = ResultsDatabase()
        for job in plan.jobs:
            result = results.get(job.job_id)
            if result is None or not result.completed or result.record is None:
                continue
            database.records.append(TransferRecord(**result.record))
        return database
