"""Shared attempt/retry/outbox machinery for campaign execution engines.

Two engines schedule campaign jobs: the single-host multiprocess
:class:`~repro.campaign.scheduler.CampaignScheduler` (one process per job
attempt) and the coordinator/worker-node :mod:`repro.dist` subsystem
(long-lived emulated nodes claiming jobs off a consistent-hash ring).  Both
share the same ground rules, and this module is where those rules live:

* **Result transport** — the *payload* (the transfer record, arbitrarily
  large) is written to a per-attempt file in the store's ``outbox/``
  directory via atomic rename, and only a small fixed-size *doorbell*
  message travels over a queue.  A worker killed mid-send can therefore
  never leave a torn pickle frame that poisons the queue, and the outbox
  file — not the doorbell — is the ground truth for a worker that exited
  cleanly.
* **Attempt budgets** — a job gets ``1 + retries`` attempts per engine run
  (:class:`AttemptLedger`); crashes, timeouts, runner exceptions, and
  unreadable payloads all consume an attempt, and *every* attempt is
  appended to the store so a resumed run sees the full history.
* **Accounting** — completed records fold their solver/stage counters into
  the shared :class:`~repro.campaign.scheduler.CampaignReport`
  (:func:`account_completed`), and per-class rates count skipped
  (already-done) jobs from their stored records so a resumed campaign
  reports the same rates as an uninterrupted one (:func:`account_skipped`,
  :class:`ClassAccountant`).
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Mapping, Optional

#: Scratch directory (relative to the run-store directory) holding
#: per-attempt result payload files.
OUTBOX_DIR = "outbox"


# -- outbox payload transport ------------------------------------------------------------


def outbox_path(store) -> Path:
    """The store's outbox scratch directory (not created)."""
    return store.directory / OUTBOX_DIR


def reset_outbox(store) -> Path:
    """Wipe and recreate the outbox.

    Payload files surviving from a killed run are unreadable-by-design
    remnants whose doorbell never fired; their jobs re-run anyway.
    """
    outbox = outbox_path(store)
    shutil.rmtree(outbox, ignore_errors=True)
    outbox.mkdir(parents=True, exist_ok=True)
    return outbox


def remove_outbox(store) -> None:
    shutil.rmtree(outbox_path(store), ignore_errors=True)


def outbox_file(outbox: Path, job_id: str, attempt: int) -> Path:
    return Path(outbox) / f"{job_id}.{attempt}.json"


def write_payload(outbox: Path, job_id: str, attempt: int, result: Mapping) -> Path:
    """Atomically publish one attempt's result payload (write + rename)."""
    target = outbox_file(outbox, job_id, attempt)
    scratch = target.with_suffix(".tmp")
    scratch.write_text(json.dumps(result))
    os.replace(scratch, target)  # atomic: readers never see a torn payload
    return target


def read_payload(outbox: Path, job_id: str, attempt: int) -> dict:
    """Load one attempt's payload; raises ``OSError``/``JSONDecodeError``."""
    return json.loads(outbox_file(outbox, job_id, attempt).read_text())


def discard_payload(outbox: Path, job_id: str, attempt: int) -> None:
    outbox_file(outbox, job_id, attempt).unlink(missing_ok=True)


def payload_exists(outbox: Path, job_id: str, attempt: int) -> bool:
    return outbox_file(outbox, job_id, attempt).exists()


# -- attempt budgets ---------------------------------------------------------------------


class AttemptLedger:
    """Per-run attempt counters: a job gets ``1 + retries`` attempts."""

    def __init__(self, retries: int) -> None:
        self.budget = 1 + max(0, retries)
        self._attempts: dict[str, int] = {}

    def begin(self, job_id: str) -> int:
        """Start the next attempt for ``job_id``; returns its 1-based number."""
        attempt = self._attempts.get(job_id, 0) + 1
        self._attempts[job_id] = attempt
        return attempt

    def count(self, job_id: str) -> int:
        return self._attempts.get(job_id, 0)

    def exhausted(self, job_id: str) -> bool:
        """True when the job has no attempts left in this run's budget."""
        return self._attempts.get(job_id, 0) >= self.budget


# -- report accounting -------------------------------------------------------------------


class ClassAccountant:
    """Folds settled jobs into a report's per-class transfer stats.

    ``job_class`` maps a job to its reporting class(es): either a callable
    over :class:`~repro.campaign.plan.JobSpec` or a mapping keyed by case
    id.  A job may belong to several classes at once (the scenario matrix
    reports each case under its :class:`~repro.lang.trace.ErrorKind` *and*
    its hardness dimension) — the mapped value is one class name or an
    iterable of them.  ``None`` disables class accounting entirely.
    """

    def __init__(self, job_class: Optional[object]) -> None:
        if job_class is None or callable(job_class):
            self._job_class = job_class
        else:
            self._job_class = lambda job: job_class.get(job.case_id)

    @property
    def enabled(self) -> bool:
        return self._job_class is not None

    def account(self, report, job, completed: bool, success: bool = False) -> None:
        """Fold one settled (or skipped-as-done) job into the class stats."""
        if self._job_class is None:
            return
        names = self._job_class(job)
        if names is None:
            return
        if isinstance(names, str):
            names = (names,)
        for name in names:
            counters = report.class_stats.setdefault(
                name, {"jobs": 0, "completed": 0, "validated": 0, "failed": 0}
            )
            counters["jobs"] += 1
            if completed:
                counters["completed"] += 1
                if success:
                    counters["validated"] += 1
            else:
                counters["failed"] += 1


def account_completed(report, result) -> None:
    """Fold one completed attempt's record into the report aggregates."""
    from ..solver.backends import merge_snapshots

    record = result.record or {}
    report.solver_queries += record.get("solver_queries", 0)
    report.solver_cache_hits += record.get("solver_cache_hits", 0)
    report.persistent_cache_hits += record.get("solver_persistent_hits", 0)
    report.expensive_queries += record.get("solver_expensive_queries", 0)
    report.batch_hits += record.get("solver_batch_hits", 0)
    merge_snapshots(report.backend_stats, record.get("solver_backend_stats") or {})
    for stage, elapsed in (record.get("stage_timings") or {}).items():
        report.stage_timings[stage] = report.stage_timings.get(stage, 0.0) + elapsed


def account_skipped(report, plan, stored: Mapping, accountant: ClassAccountant) -> None:
    """Count already-completed jobs toward the per-class rates.

    Skipped jobs contribute their stored record's verdict, so a resumed
    campaign reports the same per-class rates as an uninterrupted one.
    """
    if not accountant.enabled:
        return
    for job in plan.jobs:
        result = stored.get(job.job_id)
        if result is not None and result.completed:
            record = result.record or {}
            accountant.account(
                report, job, completed=True, success=bool(record.get("success"))
            )
