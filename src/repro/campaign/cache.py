"""Persistent, cross-process solver query cache.

The paper's second solver optimisation (§3.3) caches all equivalence queries;
:class:`repro.solver.equivalence.QueryCache` implements it in memory, scoped
to one :class:`EquivalenceChecker` — i.e. one transfer.  A campaign runs many
transfers, and the same donor checks are rewritten against overlapping
recipient vocabularies over and over (three PNG recipients share the same
three donors, for example), so at campaign scale the cache must outlive both
the checker and the worker process.

:class:`PersistentSolverCache` is that extension: an append-only JSONL file
mapping a canonical query key to the serialised verdict payload.  Properties:

* **append-only** — entries are one JSON object per line, written under an
  advisory ``flock`` so concurrent campaign workers never interleave bytes;
* **incrementally shared** — a reader that misses re-checks the file for
  lines appended by sibling processes since its last load before declaring
  the miss, so workers running in parallel benefit from each other;
* **crash-safe** — a torn trailing line (a writer killed mid-append) is left
  unread by readers and sealed off with a newline by the next writer, so it
  can never merge with a later entry; duplicate keys are idempotent (last
  wins, verdicts are deterministic for a given key).

The cache is deliberately solver-agnostic: it stores opaque JSON payloads
keyed by strings, and :mod:`repro.solver.equivalence` owns the
(de)serialisation and the key namespaces.  Two key kinds share the file
(since ``CACHE_SCHEMA_VERSION`` 3): equivalence verdicts under the sorted
digest-pair of :func:`query_key`, and satisfiability verdicts under a
``##sat##``-tagged single digest.  Namespaces fold in the schema version
and every verdict-affecting option; proved verdicts live in a
backend-neutral namespace shared by all solver backends, while
budget-limited verdicts are quarantined under a backend-qualified one
(see ``docs/SOLVER.md``).  Keys are built from the
structural *digests* of the *simplified* query pair
(:attr:`repro.symbolic.expr.Expr.digest`): content hashes computed bottom-up
over the hash-consed expression DAG.  Digests are deterministic across
processes and runs (interning order and object ids are not), injective
modulo SHA-1 collisions — unlike the paper-notation rendering, which omits
e.g. ``Constant`` widths and would let distinct queries collide on one
cached verdict — and constant-length, so cache lines stay small even for
checks whose ``repr`` runs to hundreds of kilobytes.  They are also O(1) to
obtain for any node the process has already digested, where the previous
``repr``-derived keys re-rendered the whole tree on every query.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

try:  # pragma: no cover - always available on the Linux CI substrate
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..obs import metrics as obs_metrics
from ..symbolic.expr import Expr


def query_key(left: Expr, right: Expr) -> str:
    """Canonical, order-insensitive key for an equivalence query pair.

    The in-memory cache probes ``(left, right)`` then ``(right, left)``; the
    persistent key gets the same symmetry by sorting the two digests.
    """
    first, second = sorted((left.digest, right.digest))
    return f"{first}||{second}"


class PersistentSolverCache:
    """Append-only JSONL store of solver verdicts shared across processes."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        self._offset = 0
        self.refresh()

    # -- reading ---------------------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """Look up a verdict payload, picking up sibling writers' appends."""
        payload = self._entries.get(key)
        if payload is not None:
            return payload
        if self._file_grew():
            self.refresh()
            return self._entries.get(key)
        return None

    def refresh(self) -> None:
        """Load any complete lines appended since the last load."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            return
        end = data.rfind(b"\n")
        if end < 0:
            return  # nothing new, or a torn line still being written
        for line in data[: end + 1].splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a crashed process; skip the line
            key = entry.get("k")
            payload = entry.get("v")
            if isinstance(key, str) and isinstance(payload, dict):
                self._entries[key] = payload
        self._offset += end + 1

    def _file_grew(self) -> bool:
        try:
            return self.path.stat().st_size > self._offset
        except FileNotFoundError:
            return False

    # -- writing ---------------------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Record a verdict; no-op if this process already holds the key."""
        if key in self._entries:
            return
        self._entries[key] = payload
        line = json.dumps({"k": key, "v": payload}, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                # Heal a torn trailing line left by a crashed writer: close it
                # with a newline so this entry starts a fresh line instead of
                # merging with (and corrupting) the partial one.
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    if handle.read(1) != b"\n":
                        handle.write(b"\n")
                handle.write((line + "\n").encode("utf-8"))
                handle.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


# -- partitioned key-space ---------------------------------------------------------------


class ShardedSolverCache:
    """A partitioned verdict key-space: one JSONL shard per ring partition.

    Distributed campaigns split the cache into ``partitions`` shard files
    (``shard-XXX-of-YYY.jsonl``) under one directory; a key's home shard
    is fixed by consistent hashing over partition labels
    (:func:`repro.dist.ring.shard_of`), so every node finds the lines
    every other node writes.  Each shard file is a plain
    :class:`PersistentSolverCache` — same locking, healing, and
    incremental-sharing rules.

    Locality: a node opens the space with its own ring partition as
    ``local_partition``.  A process-wide *overlay* dict caches every key
    this process has seen regardless of home shard, so a warm node mostly
    answers from memory; only overlay misses touch shard files, and a
    touch on a non-local shard is counted as a **hop**
    (``dist.cache_hops``) in the metrics registry, alongside
    ``dist.cache_local_hits`` / ``dist.cache_remote_hits`` /
    ``dist.cache_misses``.
    """

    def __init__(
        self,
        directory: str | Path,
        partitions: int,
        local_partition: Optional[int] = None,
    ) -> None:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.directory = Path(directory)
        self.partitions = partitions
        self.local_partition = local_partition
        self._shards: dict[int, PersistentSolverCache] = {}
        self._overlay: dict[str, dict] = {}

    def shard_index(self, key: str) -> int:
        """The home partition of ``key`` (stable across nodes and runs)."""
        from ..dist.ring import shard_of  # lazy: campaign <-> dist layering

        return shard_of(key, self.partitions)

    def shard_path(self, index: int) -> Path:
        return self.directory / (
            f"shard-{index:03d}-of-{self.partitions:03d}.jsonl"
        )

    def _shard(self, index: int) -> PersistentSolverCache:
        shard = self._shards.get(index)
        if shard is None:
            shard = PersistentSolverCache(self.shard_path(index))
            self._shards[index] = shard
        return shard

    def _count_touch(self, index: int) -> None:
        if self.local_partition is not None and index != self.local_partition:
            obs_metrics.inc("dist.cache_hops")

    def get(self, key: str) -> Optional[dict]:
        payload = self._overlay.get(key)
        if payload is not None:
            obs_metrics.inc("dist.cache_local_hits")
            return payload
        index = self.shard_index(key)
        self._count_touch(index)
        payload = self._shard(index).get(key)
        if payload is not None:
            self._overlay[key] = payload
            if self.local_partition is None or index == self.local_partition:
                obs_metrics.inc("dist.cache_local_hits")
            else:
                obs_metrics.inc("dist.cache_remote_hits")
        else:
            obs_metrics.inc("dist.cache_misses")
        return payload

    def put(self, key: str, payload: dict) -> None:
        if key in self._overlay:
            return
        self._overlay[key] = payload
        index = self.shard_index(key)
        self._count_touch(index)
        self._shard(index).put(key, payload)

    def refresh(self) -> None:
        for shard in self._shards.values():
            shard.refresh()

    def __len__(self) -> int:
        keys = set(self._overlay)
        for shard in self._shards.values():
            keys.update(shard._entries)
        return len(keys)

    def __contains__(self, key: str) -> bool:
        # Metric-free: membership probes must not skew hop accounting.
        if key in self._overlay:
            return True
        return key in self._shard(self.shard_index(key))


#: Spec separator for sharded cache paths: ``<dir>::shards=<P>::local=<k>``.
_SPEC_SEP = "::"

#: Sharded spaces memoized per spec so a long-lived node keeps one warm
#: overlay across every job it executes (plain paths are not memoized —
#: the flat cache is cheap to reopen and tests rely on fresh instances).
_OPEN_SHARDED: dict[str, ShardedSolverCache] = {}


def sharded_cache_spec(
    directory: str | Path, partitions: int, local_partition: Optional[int] = None
) -> str:
    """Build the string spec a coordinator hands to a node's runner."""
    spec = f"{directory}{_SPEC_SEP}shards={partitions}"
    if local_partition is not None:
        spec += f"{_SPEC_SEP}local={local_partition}"
    return spec


def open_solver_cache(spec: str | Path):
    """Open a cache from a path-or-spec string.

    A plain path opens the classic single-file
    :class:`PersistentSolverCache`.  A ``::shards=``-tagged spec (built
    by :func:`sharded_cache_spec`) opens a :class:`ShardedSolverCache`,
    memoized per spec so every checker in one node process shares one
    overlay.  Keeping the spec a string keeps it trivially picklable
    through worker process boundaries.
    """
    text = str(spec)
    if _SPEC_SEP not in text:
        return PersistentSolverCache(text)
    cached = _OPEN_SHARDED.get(text)
    if cached is not None:
        return cached
    parts = text.split(_SPEC_SEP)
    directory = parts[0]
    partitions = 1
    local: Optional[int] = None
    for part in parts[1:]:
        name, _, value = part.partition("=")
        if name == "shards":
            partitions = int(value)
        elif name == "local":
            local = int(value)
        else:
            raise ValueError(f"unknown cache spec field {part!r} in {text!r}")
    opened = ShardedSolverCache(directory, partitions, local_partition=local)
    _OPEN_SHARDED[text] = opened
    return opened
