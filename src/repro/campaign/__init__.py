"""Campaign engine: parallel, resumable multi-transfer orchestration.

The paper's evaluation is a batch workload — 18 recipient/target/donor
combinations, each an independent transfer.  This package turns that batch
into a first-class *campaign*:

* :mod:`repro.campaign.plan` — expand any subset/cross-product of
  ``ERROR_CASES x donors x option variants`` into deterministic, content-
  addressed jobs;
* :mod:`repro.campaign.scheduler` — run the jobs over a multiprocess worker
  pool with per-job timeouts and retry-on-crash;
* :mod:`repro.campaign.store` — append-only JSONL run store so an
  interrupted campaign resumes where it left off;
* :mod:`repro.campaign.cache` — a persistent, cross-process solver query
  cache that extends the paper's §3.3 query-caching optimisation from one
  transfer to the whole campaign, and its partitioned key-space variant
  for distributed runs;
* :mod:`repro.campaign.execution` — the attempt/retry/outbox machinery
  shared with the coordinator/worker-node engine in :mod:`repro.dist`.
"""

from .cache import (
    PersistentSolverCache,
    ShardedSolverCache,
    open_solver_cache,
    query_key,
    sharded_cache_spec,
)
from .plan import (
    CampaignPlan,
    JobSpec,
    PlanError,
    expand_plan,
    figure8_plan,
    matrix_plan,
)
from .scheduler import (
    CampaignReport,
    CampaignScheduler,
    SchedulerOptions,
    default_job_runner,
)
from .store import (
    STATUS_CRASHED,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    JobResult,
    RunStore,
    StoreError,
)

__all__ = [
    "CampaignPlan",
    "CampaignReport",
    "CampaignScheduler",
    "JobResult",
    "JobSpec",
    "PersistentSolverCache",
    "PlanError",
    "RunStore",
    "SchedulerOptions",
    "ShardedSolverCache",
    "StoreError",
    "STATUS_CRASHED",
    "STATUS_DONE",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "default_job_runner",
    "expand_plan",
    "figure8_plan",
    "matrix_plan",
    "open_solver_cache",
    "query_key",
    "sharded_cache_spec",
]
