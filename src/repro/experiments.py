"""The paper's evaluation: the 19 donor/recipient transfers of Figure 8.

Each :class:`ErrorCase` describes one error in a recipient application: the
input format, the seed-input field values, and the error-triggering field
values.  The error-triggering values reproduce what the paper's error
discovery produced — DIODE for the integer overflows, fuzzing for the
out-of-bounds accesses, and the CVE proof-of-concept for the divide-by-zero —
and :func:`discover_error_input` shows that the in-repo DIODE/fuzzer find
equivalent inputs from scratch.

``FIGURE8_ROWS`` lists every recipient/target/donor combination of the table.
The benchmark harness (``benchmarks/bench_figure8_table.py``) iterates over it
and regenerates the table's columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .api import RepairRequest, RepairSession
from .apps import get_application
from .apps.registry import Application, ErrorTarget
from .core.pipeline import CodePhage, CodePhageOptions, TransferOutcome
from .discovery.diode import Diode, DiodeOptions
from .discovery.fuzzer import FieldFuzzer, FuzzerOptions
from .formats.registry import get_format
from .lang.trace import ErrorKind


@dataclass(frozen=True)
class ErrorCase:
    """One error in a recipient application, with its seed/error inputs."""

    case_id: str
    recipient: str
    target_id: str
    format_name: str
    seed_values: dict = field(default_factory=dict)
    error_values: dict = field(default_factory=dict)
    discovered_by: str = "diode"
    donors: tuple[str, ...] = ()

    def application(self) -> Application:
        return get_application(self.recipient)

    def target(self) -> ErrorTarget:
        return self.application().target(self.target_id)

    def seed_input(self) -> bytes:
        spec = get_format(self.format_name)
        return spec.build(self.seed_values) if self.seed_values else spec.build()

    def error_input(self) -> bytes:
        spec = get_format(self.format_name)
        base = self.seed_input()
        return spec.with_values(base, **self.error_values)


#: The ten errors of the evaluation (§4), keyed by a short case id.
ERROR_CASES: dict[str, ErrorCase] = {
    case.case_id: case
    for case in (
        ErrorCase(
            case_id="cwebp-jpegdec",
            recipient="cwebp",
            target_id="jpegdec.c:248",
            format_name="jpeg",
            error_values={
                "/start_frame/content/height": 62848,
                "/start_frame/content/width": 23200,
            },
            discovered_by="diode",
            donors=("feh", "mtpaint", "viewnior"),
        ),
        ErrorCase(
            case_id="dillo-png",
            recipient="dillo",
            target_id="png.c:203",
            format_name="png",
            error_values={"/ihdr/width": 65536, "/ihdr/height": 65536},
            discovered_by="diode",
            donors=("mtpaint", "feh", "viewnior"),
        ),
        ErrorCase(
            case_id="dillo-fltk",
            recipient="dillo",
            target_id="fltkimagebuf.cc:39",
            format_name="png",
            seed_values={"/ihdr/color_type": 6},
            error_values={
                "/ihdr/color_type": 6,
                "/ihdr/width": 46000,
                "/ihdr/height": 46000,
            },
            discovered_by="diode",
            donors=("mtpaint", "feh", "viewnior"),
        ),
        ErrorCase(
            case_id="display-xwindow",
            recipient="display",
            target_id="xwindow.c:5619",
            format_name="tiff",
            error_values={"/ifd/width": 40000, "/ifd/height": 40000},
            discovered_by="diode",
            donors=("viewnior", "feh"),
        ),
        ErrorCase(
            case_id="display-resize",
            recipient="display",
            target_id="display.c:4393",
            format_name="tiff",
            error_values={"/ifd/width": 33000, "/ifd/height": 33000},
            discovered_by="diode",
            donors=("viewnior", "feh"),
        ),
        ErrorCase(
            case_id="swfplay-rgb",
            recipient="swfplay",
            target_id="jpeg_rgb_decoder.c:253",
            format_name="swf",
            error_values={"/jpeg/width": 40000, "/jpeg/height": 30000},
            discovered_by="diode",
            donors=("gnash",),
        ),
        ErrorCase(
            case_id="swfplay-jpeg",
            recipient="swfplay",
            target_id="jpeg.c:192",
            format_name="swf",
            error_values={"/jpeg/width": 60000, "/jpeg/h_samp": 200, "/jpeg/v_samp": 200},
            discovered_by="diode",
            donors=("gnash",),
        ),
        ErrorCase(
            case_id="jasper-tiles",
            recipient="jasper",
            target_id="jpc_dec.c:492",
            format_name="jp2",
            error_values={"/sot/tileno": 4},
            discovered_by="fuzzing",
            donors=("openjpeg",),
        ),
        ErrorCase(
            case_id="gif2tiff-lzw",
            recipient="gif2tiff",
            target_id="gif2tiff.c:355",
            format_name="gif",
            error_values={"/image/code_size": 16},
            discovered_by="fuzzing",
            donors=("display-6.5.2-9",),
        ),
        ErrorCase(
            case_id="wireshark-dcp",
            recipient="wireshark-1.4.14",
            target_id="packet-dcp-etsi.c:258",
            format_name="dcp",
            error_values={"/dcp/plen": 0},
            discovered_by="cve",
            donors=("wireshark-1.8.6",),
        ),
    )
}


@dataclass(frozen=True)
class Figure8Row:
    """One row of Figure 8: an error case paired with one donor."""

    case_id: str
    donor: str

    @property
    def case(self) -> ErrorCase:
        return ERROR_CASES[self.case_id]


#: All 18 rows of Figure 8, in the paper's order.
FIGURE8_ROWS: tuple[Figure8Row, ...] = tuple(
    Figure8Row(case_id=case_id, donor=donor)
    for case_id in (
        "cwebp-jpegdec",
        "dillo-png",
        "dillo-fltk",
        "display-xwindow",
        "display-resize",
        "swfplay-rgb",
        "swfplay-jpeg",
        "jasper-tiles",
        "gif2tiff-lzw",
        "wireshark-dcp",
    )
    for donor in ERROR_CASES[case_id].donors
)


def run_row(
    row: Figure8Row,
    options: Optional[CodePhageOptions] = None,
    phage: Optional[CodePhage] = None,
    session: Optional[RepairSession] = None,
) -> TransferOutcome:
    """Run one Figure 8 row through the :mod:`repro.api` facade.

    This is the campaign worker entry point: the scheduler's workers call it
    (via :func:`execute_job`) with a pre-configured session, and standalone
    callers get a fresh default session per row.  ``phage`` is accepted for
    backward compatibility and contributes its session.
    """
    case = row.case
    if session is None:
        if phage is not None:
            if options is not None:
                raise ValueError(
                    "pass either options or a pre-configured phage, not both: "
                    "a given phage runs under its own options"
                )
            session = phage.session
        else:
            session = RepairSession(options=options)
    elif phage is not None or options is not None:
        raise ValueError(
            "pass exactly one of options, phage, or session: a given session "
            "runs under its own options"
        )
    report = session.run(
        RepairRequest.for_case(case, donor=get_application(row.donor))
    )
    return report.outcome


def execute_job_report(job, persistent_cache_path: Optional[str] = None):
    """Run one campaign job and return the full :class:`~repro.api.RepairReport`.

    The report carries the typed event stream alongside the outcome, which
    campaign workers serialize into their result payload so the run store can
    persist it (for ``codephage trace``/``bundle``).  ``job`` is duck-typed
    (``case_id``/``donor``/``build_options``) to keep this module free of a
    circular import on :mod:`repro.campaign`.
    """
    row = Figure8Row(case_id=job.case_id, donor=job.donor)
    session = RepairSession(options=job.build_options(persistent_cache_path))
    return session.run(
        RepairRequest.for_case(row.case, donor=get_application(row.donor))
    )


def execute_job(job, persistent_cache_path: Optional[str] = None) -> TransferOutcome:
    """Run one campaign job (a :class:`repro.campaign.plan.JobSpec`)."""
    return execute_job_report(job, persistent_cache_path=persistent_cache_path).outcome


def run_case_with_all_donors(
    case_id: str,
    options: Optional[CodePhageOptions] = None,
    session: Optional[RepairSession] = None,
) -> list[TransferOutcome]:
    """Run one error case against every donor listed for it.

    All donors run through one shared session — one solver checker, one
    cache, one incremental backend — exactly like :meth:`CodePhage.repair`'s
    donor loop, so the per-donor solver/cache statistics are comparable
    across the two paths.  Each outcome's metrics carry the per-backend
    counter deltas (``solver_backend_stats``) and query-batch hits for its
    donor, the same fields campaign workers persist and
    :class:`~repro.campaign.scheduler.CampaignReport` aggregates; later
    donors benefit from earlier donors' learned clauses and deduped queries,
    which is visible in those deltas.
    """
    case = ERROR_CASES[case_id]
    session = session or RepairSession(options=options)
    return [
        run_row(Figure8Row(case_id=case_id, donor=donor), session=session)
        for donor in case.donors
    ]


def discover_error_input(case_id: str) -> Optional[bytes]:
    """Re-discover an error-triggering input with the in-repo tools.

    Integer-overflow cases use the DIODE reproduction; the out-of-bounds and
    divide-by-zero cases use the field fuzzer.  Returns the discovered input
    (or None if the search fails), demonstrating that the evaluation does not
    depend on the hand-specified error values.
    """
    case = ERROR_CASES[case_id]
    application = case.application()
    format_spec = get_format(case.format_name)
    seed = case.seed_input()
    target = case.target()

    if target.error_kind is ErrorKind.INTEGER_OVERFLOW:
        diode = Diode(application.program(), format_spec, options=DiodeOptions())
        findings = diode.discover(seed, site_function=target.site_function)
        return findings[0].error_input if findings else None

    fuzzer = FieldFuzzer(
        application.program(),
        format_spec,
        FuzzerOptions(iterations=400, stop_after=1),
    )
    findings = fuzzer.campaign(seed, application=application.full_name)
    return findings[0].error_input if findings else None
