"""Code Phage (CP) reproduction.

Automatic error elimination by horizontal code transfer across multiple
applications (Sidiroglou-Douskos, Lahtinen, Long, Rinard -- PLDI 2015).

The top-level package exposes the subpackages of the reproduction; see
``README.md`` for a quickstart and ``DESIGN.md`` for the full system map.

Subpackages
-----------
``repro.symbolic``
    Application-independent bitvector expression IR, simplifier, printers.
``repro.solver``
    SMT-lite equivalence/satisfiability engine (CDCL SAT + bit-blasting).
``repro.formats``
    Hachoir-style input field trees and the simplified binary formats.
``repro.lang``
    MicroC: the application substrate (parser, compiler, taint/symbolic VM).
``repro.apps``
    The donor and recipient applications used in the paper's evaluation.
``repro.discovery``
    DIODE-style integer-overflow discovery and a mutational fuzzer.
``repro.core``
    The Code Phage pipeline itself (the paper's contribution): the
    stage-graph engine, the event stream, and the per-stage algorithms.
``repro.api``
    The public repair surface: ``RepairRequest`` -> ``RepairReport``.
``repro.campaign``
    Parallel, resumable batch campaigns over the evaluation space.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
