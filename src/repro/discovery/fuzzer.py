"""Mutational field fuzzer.

The paper's out-of-bounds and divide-by-zero benchmark errors come from
"standard fuzzing techniques" and CVE proof-of-concept inputs.  This fuzzer
plays that role: it mutates the named fields of a seed input with boundary and
random values, runs the application on every mutant, and reports the inputs
that make it crash (deduplicated by error site).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..formats.fields import FormatSpec
from ..formats.generator import InputGenerator
from ..lang.checker import Program
from ..lang.trace import RunResult
from ..lang.vm import VM, VMConfig
from .errors import DiscoveredError, same_error


@dataclass
class FuzzerOptions:
    """Fuzzing campaign configuration."""

    iterations: int = 300
    seed: int = 0xF0552
    fields: Optional[Sequence[str]] = None  # None = mutate every field
    stop_after: Optional[int] = None        # stop after this many distinct errors


class FieldFuzzer:
    """Single-field mutational fuzzer over format fields."""

    def __init__(
        self,
        program: Program,
        format_spec: FormatSpec,
        options: Optional[FuzzerOptions] = None,
    ) -> None:
        self.program = program
        self.format = format_spec
        self.options = options or FuzzerOptions()
        self.generator = InputGenerator(format_spec, seed=self.options.seed)
        self._random = random.Random(self.options.seed)
        self.executions = 0

    def run_once(self, data: bytes) -> RunResult:
        self.executions += 1
        vm = VM(self.program, config=VMConfig(track_symbolic=False))
        return vm.run(data, field_map=self.format.field_map(data))

    def campaign(self, seed_input: Optional[bytes] = None, application: str = "") -> list[DiscoveredError]:
        """Run a fuzzing campaign and return the distinct errors discovered."""
        seed = seed_input if seed_input is not None else self.generator.seed_input()
        baseline = self.run_once(seed)
        if baseline.crashed:
            raise ValueError("the seed input already triggers an error; fuzzing needs a clean seed")

        discovered: list[DiscoveredError] = []
        mutants = self.generator.random_field_mutations(
            seed, self.options.iterations, paths=self.options.fields
        )
        for mutant in mutants:
            result = self.run_once(mutant)
            if not result.crashed or result.error is None:
                continue
            if any(same_error(result.error, previous.report) for previous in discovered):
                continue
            discovered.append(
                DiscoveredError(
                    application=application or self.program.name,
                    format_name=self.format.name,
                    seed_input=seed,
                    error_input=mutant,
                    report=result.error,
                    discovered_by="fuzzer",
                )
            )
            if self.options.stop_after and len(discovered) >= self.options.stop_after:
                break
        return discovered


def fuzz_for_error(
    program: Program,
    format_spec: FormatSpec,
    seed_input: Optional[bytes] = None,
    iterations: int = 300,
    application: str = "",
) -> Optional[DiscoveredError]:
    """Convenience wrapper: return the first error a short campaign discovers."""
    fuzzer = FieldFuzzer(
        program, format_spec, FuzzerOptions(iterations=iterations, stop_after=1)
    )
    findings = fuzzer.campaign(seed_input, application=application)
    return findings[0] if findings else None
