"""DIODE-style integer-overflow discovery.

DIODE (ASPLOS 2015) "performs a directed search on the input space to discover
inputs that trigger integer overflow errors at memory allocation sites".  The
reproduction follows the same structure:

1. run the application, instrumented, on a seed input and record every
   allocation site together with the symbolic expression of its size in terms
   of input fields;
2. for a target site, search the values of exactly those fields for an
   assignment that makes the size computation overflow — using the symbolic
   overflow condition (via the SMT-lite engine) to propose witnesses and a
   structured schedule of boundary values to cover the cases the sampler
   misses;
3. confirm every proposed input by concretely re-running the application: an
   input is only reported when the run actually fails with an integer
   overflow (or the out-of-bounds write it causes) at the targeted site.

The same machinery is reused by patch validation ("CP runs the patched version
of the application through the DIODE error discovery tool to determine if
DIODE can generate new error-triggering inputs", §2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..formats.fields import FormatSpec
from ..lang.checker import Program
from ..lang.trace import AllocationRecord, ErrorKind, RunResult
from ..lang.vm import VM, VMConfig
from ..solver.equivalence import EquivalenceChecker
from ..solver.overflow import overflow_witness


@dataclass(frozen=True)
class OverflowFinding:
    """An error-triggering input for one allocation site."""

    error_input: bytes
    field_values: dict
    allocation_site: int
    site_function: str
    site_line: int
    result: RunResult


@dataclass
class DiodeOptions:
    """Search configuration."""

    #: Per-field candidate values tried by the structured schedule, expressed
    #: as fractions of the field's maximum plus explicit landmarks.
    max_candidates_per_field: int = 12
    #: Upper bound on the number of concrete executions per site.
    max_trials: int = 400
    #: Restrict the search to allocation sites in these functions (None = all).
    functions: Optional[frozenset[str]] = None


class Diode:
    """Goal-directed integer-overflow discovery at memory allocation sites."""

    def __init__(
        self,
        program: Program,
        format_spec: FormatSpec,
        options: Optional[DiodeOptions] = None,
        checker: Optional[EquivalenceChecker] = None,
    ) -> None:
        self.program = program
        self.format = format_spec
        self.options = options or DiodeOptions()
        self.checker = checker or EquivalenceChecker()
        self.trials = 0

    # -- public API ---------------------------------------------------------------

    def allocation_sites(self, seed: bytes) -> list[AllocationRecord]:
        """Allocation records observed on the seed input (one per execution)."""
        result = self._run(seed)
        records = result.allocations
        if self.options.functions is not None:
            records = [r for r in records if r.function in self.options.functions]
        return records

    def discover(self, seed: bytes, site_function: Optional[str] = None) -> list[OverflowFinding]:
        """Find error-triggering inputs for allocation sites reachable from ``seed``.

        ``site_function`` restricts the search to sites inside one function
        (used when validating a patch for a specific target).
        """
        findings: list[OverflowFinding] = []
        seen_sites: set[int] = set()
        for record in self.allocation_sites(seed):
            if site_function is not None and record.function != site_function:
                continue
            if record.site_id in seen_sites:
                continue
            seen_sites.add(record.site_id)
            finding = self.attack_site(seed, record)
            if finding is not None:
                findings.append(finding)
        return findings

    def attack_site(self, seed: bytes, record: AllocationRecord) -> Optional[OverflowFinding]:
        """Search for an input that overflows one allocation site.

        The trial budget applies per site (``self.trials`` accumulates the
        total across sites as a statistic only).
        """
        if record.symbolic is None:
            return None
        fields = sorted(record.symbolic.fields())
        if not fields:
            return None
        field_map = self.format.field_map(seed)
        fields = [path for path in fields if field_map.has_field(path)]
        if not fields:
            return None

        site_trials = 0
        for assignment in self._candidate_assignments(record, fields, field_map):
            if site_trials >= self.options.max_trials:
                break
            site_trials += 1
            self.trials += 1
            candidate = self.format.with_values(seed, **assignment)
            result = self._run(candidate, track_symbolic=False)
            if self._hits_site(result, record):
                return OverflowFinding(
                    error_input=candidate,
                    field_values=dict(assignment),
                    allocation_site=record.site_id,
                    site_function=record.function,
                    site_line=record.line,
                    result=result,
                )
        return None

    # -- candidate generation -------------------------------------------------------

    def _candidate_assignments(
        self, record: AllocationRecord, fields: Sequence[str], field_map
    ) -> Iterable[dict]:
        """Assignments to try, most promising first."""
        # First: a witness from the symbolic overflow condition, if one exists.
        witness = overflow_witness(self.checker, record.symbolic)
        if witness is not None:
            filtered = {path: value for path, value in witness.items() if path in fields}
            if filtered:
                yield filtered

        # Then: a structured schedule over per-field landmark values.
        per_field_values = []
        for path in fields:
            width = field_map.field(path).width
            maximum = (1 << width) - 1
            landmarks = [
                maximum,
                maximum - 1,
                1 << (width - 1),
                (1 << (width - 1)) + 1,
                1 << (width // 2),
                (1 << (width // 2)) + 1,
                maximum // 3,
                maximum // 2,
                46341,  # ceil(sqrt(2^31)): the classic 32-bit product boundary
                65536,
                40000,
                33000,
                16385,
                255,
            ]
            values = []
            for value in landmarks:
                value &= maximum
                if value not in values and value > 0:
                    values.append(value)
            per_field_values.append(values[: self.options.max_candidates_per_field])

        for combination in itertools.product(*per_field_values):
            yield dict(zip(fields, combination))

    # -- execution helpers --------------------------------------------------------------

    def _run(self, data: bytes, track_symbolic: bool = True) -> RunResult:
        config = VMConfig(track_symbolic=track_symbolic)
        vm = VM(self.program, config=config)
        return vm.run(data, field_map=self.format.field_map(data))

    def _hits_site(self, result: RunResult, record: AllocationRecord) -> bool:
        """Whether the run failed with an overflow (or resulting OOB) at the site."""
        if not result.crashed or result.error is None:
            return False
        error = result.error
        if error.kind not in (ErrorKind.INTEGER_OVERFLOW, ErrorKind.OUT_OF_BOUNDS_WRITE):
            return False
        return error.function == record.function


def diode_rescan(
    program: Program,
    format_spec: FormatSpec,
    seed: bytes,
    site_function: Optional[str] = None,
    options: Optional[DiodeOptions] = None,
) -> list[OverflowFinding]:
    """Run a fresh DIODE pass (used by patch validation and the benchmarks)."""
    diode = Diode(program, format_spec, options=options)
    return diode.discover(seed, site_function=site_function)
