"""Error-case descriptions shared by the discovery tools and the CP pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.trace import ErrorKind, ErrorReport


@dataclass(frozen=True)
class DiscoveredError:
    """A concrete error found by DIODE or the fuzzer.

    ``seed_input`` processes cleanly; ``error_input`` triggers the error whose
    report is attached.  This is exactly the input pair CP starts from.
    """

    application: str
    format_name: str
    seed_input: bytes
    error_input: bytes
    report: ErrorReport
    discovered_by: str = "diode"
    allocation_site: Optional[int] = None

    @property
    def kind(self) -> ErrorKind:
        return self.report.kind

    def describe(self) -> str:
        return (
            f"{self.report.kind.value} in {self.application} "
            f"({self.report.function}@{self.report.line}), found by {self.discovered_by}"
        )


def same_error(first: ErrorReport, second: ErrorReport) -> bool:
    """Whether two reports refer to the same error site."""
    return (
        first.kind == second.kind
        and first.function == second.function
        and first.line == second.line
    )
