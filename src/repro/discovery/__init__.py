"""Automatic error discovery: DIODE-style overflow search and a field fuzzer."""

from .diode import Diode, DiodeOptions, OverflowFinding, diode_rescan
from .errors import DiscoveredError, same_error
from .fuzzer import FieldFuzzer, FuzzerOptions, fuzz_for_error

__all__ = [
    "Diode",
    "DiodeOptions",
    "DiscoveredError",
    "FieldFuzzer",
    "FuzzerOptions",
    "OverflowFinding",
    "diode_rescan",
    "fuzz_for_error",
    "same_error",
]
