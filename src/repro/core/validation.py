"""Patch validation (§3.4).

A candidate patch must pass four checks before CP accepts it:

1. the patched recipient recompiles;
2. the error-triggering input no longer triggers the error (rejecting it with
   the inserted ``exit(-1)`` is the intended behaviour);
3. a regression suite of benign inputs produces exactly the same observable
   behaviour (emitted values and exit status) as the unpatched recipient;
4. re-running the DIODE error-discovery tool on the patched recipient finds no
   new error-triggering inputs (for integer-overflow errors).

As an additional, overflow-specific step (§1.1), the validator can ask the
SMT layer whether *any* input that passes the transferred check can still
overflow the targeted allocation-size expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..discovery.diode import Diode, DiodeOptions, OverflowFinding
from ..formats.fields import FormatSpec
from ..lang.checker import Program
from ..lang.patcher import PatchedProgram
from ..lang.trace import ErrorKind, RunStatus
from ..lang.vm import VM, VMConfig
from ..solver.equivalence import EquivalenceChecker
from ..solver.overflow import check_blocks_overflow
from ..symbolic.expr import Expr


@dataclass
class ValidationOutcome:
    """Result of validating one candidate patch."""

    ok: bool
    error_eliminated: bool = False
    regression_passed: bool = False
    residual_findings: list[OverflowFinding] = field(default_factory=list)
    overflow_proof: Optional[bool] = None
    failure_reason: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


@dataclass
class ValidationOptions:
    """What the validator checks and how hard it looks for residual errors."""

    run_regression: bool = True
    diode_rescan: bool = True
    #: "function" restricts the rescan to allocation sites in the function
    #: containing the patched error (the per-row Figure 8 experiments);
    #: "program" rescans every reachable site (the continuous-improvement and
    #: residual-error experiments); "none" disables the rescan.
    diode_scope: str = "function"
    symbolic_overflow_check: bool = False
    diode_options: Optional[DiodeOptions] = None


def _behaviour(program: Program, format_spec: FormatSpec, data: bytes) -> tuple:
    vm = VM(program, config=VMConfig(track_symbolic=False))
    return vm.run(data, field_map=format_spec.field_map(data)).behaviour()


def _run(program: Program, format_spec: FormatSpec, data: bytes):
    vm = VM(program, config=VMConfig(track_symbolic=False))
    return vm.run(data, field_map=format_spec.field_map(data))


def validate_patch(
    original: Program,
    patched: PatchedProgram,
    format_spec: FormatSpec,
    seed: bytes,
    error_input: bytes,
    regression_corpus: Sequence[bytes] = (),
    target_function: Optional[str] = None,
    options: Optional[ValidationOptions] = None,
    donor_guard: Optional[Expr] = None,
    overflow_size_expr: Optional[Expr] = None,
    checker: Optional[EquivalenceChecker] = None,
) -> ValidationOutcome:
    """Validate a recompiled candidate patch."""
    options = options or ValidationOptions()
    outcome = ValidationOutcome(ok=False)

    # Step 2: the error-triggering input must no longer trigger the error.
    error_result = _run(patched.program, format_spec, error_input)
    if error_result.status is RunStatus.ERROR:
        outcome.failure_reason = (
            f"error still triggered: {error_result.error.kind.value} in "
            f"{error_result.error.function}"
        )
        return outcome
    outcome.error_eliminated = True

    # The seed input must still be processed (the patch must not reject it).
    seed_result = _run(patched.program, format_spec, seed)
    if not seed_result.accepted:
        outcome.failure_reason = "patched application rejects the seed input"
        return outcome

    # Step 3: regression suite behaviour must be preserved.
    if options.run_regression:
        for index, data in enumerate(regression_corpus):
            if _behaviour(original, format_spec, data) != _behaviour(
                patched.program, format_spec, data
            ):
                outcome.failure_reason = f"regression input {index} behaviour changed"
                return outcome
    outcome.regression_passed = True

    # Step 4: DIODE rescan for residual errors.  The rescan shares the
    # session's solver checker: its overflow-witness queries are identical
    # across candidate patches (the patch never changes the allocation-size
    # expression), so every rescan after the first answers them from the
    # session's query batch instead of re-running the decision ladder.
    if options.diode_rescan and options.diode_scope != "none":
        scope_function = target_function if options.diode_scope == "function" else None
        diode = Diode(
            patched.program,
            format_spec,
            options=options.diode_options or DiodeOptions(),
            checker=checker,
        )
        outcome.residual_findings = diode.discover(seed, site_function=scope_function)

    # Optional overflow-specific symbolic validation (§1.1).
    if options.symbolic_overflow_check and donor_guard is not None and overflow_size_expr is not None:
        verdict = check_blocks_overflow(
            checker or EquivalenceChecker(), donor_guard, overflow_size_expr
        )
        outcome.overflow_proof = verdict.eliminated

    outcome.ok = True
    return outcome
