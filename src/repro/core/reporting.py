"""Result recording and Figure 8-style table rendering.

The original CP includes Python "code that manages the database of relevant
experimental results" (§3); this module plays that role for the reproduction:
transfer outcomes are stored as JSON-serialisable records and rendered as the
paper's results table.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from .pipeline import TransferOutcome


@dataclass
class TransferRecord:
    """One row of the results table."""

    recipient: str
    target: str
    donor: str
    success: bool
    generation_time_s: float
    relevant_branches: int
    flipped_branches: str
    used_checks: int
    insertion_points: str
    check_size: str
    patch_preview: str = ""
    failure_reason: str = ""
    # Solver accounting (not part of the rendered Figure 8 table; campaigns
    # aggregate these to report persistent-cache effectiveness and
    # per-backend solver behaviour).
    solver_queries: int = 0
    solver_cache_hits: int = 0
    solver_persistent_hits: int = 0
    solver_expensive_queries: int = 0
    solver_batch_hits: int = 0
    solver_backend_stats: dict[str, dict] = field(default_factory=dict)
    # Per-stage wall-time breakdown, from the pipeline event stream; the
    # campaign store persists it with every attempt record.
    stage_timings: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_outcome(cls, outcome: TransferOutcome) -> "TransferRecord":
        metrics = outcome.metrics
        insertion = "; ".join(str(entry) for entry in metrics.insertion_accounting) or "-"
        preview = outcome.checks[-1].patch.render() if outcome.checks else ""
        return cls(
            recipient=outcome.recipient,
            target=outcome.target,
            donor=outcome.donor,
            success=outcome.success,
            generation_time_s=round(metrics.generation_time_s, 2),
            relevant_branches=metrics.relevant_branches,
            flipped_branches=metrics.flipped_display(),
            used_checks=metrics.used_checks,
            insertion_points=insertion,
            check_size=metrics.sizes_display(),
            patch_preview=preview,
            failure_reason=outcome.failure_reason,
            solver_queries=metrics.solver_queries,
            solver_cache_hits=metrics.solver_cache_hits,
            solver_persistent_hits=metrics.solver_persistent_hits,
            solver_expensive_queries=metrics.solver_expensive_queries,
            solver_batch_hits=metrics.solver_batch_hits,
            solver_backend_stats=dict(metrics.solver_backend_stats),
            stage_timings={
                stage: round(elapsed, 4)
                for stage, elapsed in metrics.stage_timings.items()
            },
        )


@dataclass
class ResultsDatabase:
    """A collection of transfer records with persistence helpers."""

    records: list[TransferRecord] = field(default_factory=list)

    def add(self, outcome: TransferOutcome) -> TransferRecord:
        record = TransferRecord.from_outcome(outcome)
        self.records.append(record)
        return record

    def extend(self, outcomes: Iterable[TransferOutcome]) -> None:
        for outcome in outcomes:
            self.add(outcome)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = [asdict(record) for record in self.records]
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "ResultsDatabase":
        payload = json.loads(Path(path).read_text())
        return cls(records=[TransferRecord(**entry) for entry in payload])

    # -- rendering --------------------------------------------------------------------

    def to_table(self, title: Optional[str] = None) -> str:
        """Render the records as a Figure 8-style markdown table."""
        header = (
            "| Recipient | Target | Donor | Time (s) | Relevant | Flipped | Checks "
            "| Insertion Pts | Check Size |"
        )
        separator = "|" + "---|" * 9
        lines = []
        if title:
            lines.append(f"### {title}")
            lines.append("")
        lines.append(header)
        lines.append(separator)
        for record in self.records:
            lines.append(
                f"| {record.recipient} | {record.target} | {record.donor} "
                f"| {record.generation_time_s} | {record.relevant_branches} "
                f"| {record.flipped_branches} | {record.used_checks} "
                f"| {record.insertion_points} | {record.check_size} |"
            )
        return "\n".join(lines)

    def class_summary(
        self, classifier: Callable[[TransferRecord], Optional[str]]
    ) -> dict[str, dict]:
        """Per-class success statistics over the stored records.

        ``classifier`` maps a record to its class name (the scenario matrix
        classifies by the recipient's seeded :class:`ErrorKind`); records it
        returns ``None`` for are left out.  Unlike the scheduler's per-run
        ``class_stats``, this aggregates whatever the database holds — e.g. a
        store merged across several resumed runs.
        """
        grouped: dict[str, dict] = {}
        for record in self.records:
            name = classifier(record)
            if name is None:
                continue
            counters = grouped.setdefault(
                name, {"transfers": 0, "successful": 0, "success_rate": 0.0}
            )
            counters["transfers"] += 1
            counters["successful"] += 1 if record.success else 0
        for counters in grouped.values():
            counters["success_rate"] = counters["successful"] / counters["transfers"]
        return grouped

    def summary(self) -> dict:
        """Aggregate statistics (used by EXPERIMENTS.md and tests)."""
        total = len(self.records)
        successes = sum(1 for record in self.records if record.success)
        reductions = []
        for record in self.records:
            for piece in record.check_size.replace("[", "").replace("]", "").split(","):
                if "->" in piece:
                    before, after = piece.split("->")
                    try:
                        reductions.append(int(before.strip()) / max(int(after.strip()), 1))
                    except ValueError:
                        continue
        return {
            "transfers": total,
            "successful": successes,
            "success_rate": successes / total if total else 0.0,
            "mean_check_size_reduction": (
                sum(reductions) / len(reductions) if reductions else 0.0
            ),
        }
