"""Patch construction: from a translated check to recipient source.

CP "transforms the constructed bitvector condition into a C expression as the
if condition (appropriately generating any casts, shifts, and masks required
to preserve the semantics of the transferred check).  If the condition is
satisfied, the patch exits the application with an exit(-1)." (§3.3)

The reproduction's recipients are MicroC programs, so the renderer here emits
MicroC (``u32``/``u64`` casts instead of ``unsigned int``/``unsigned long
long``); :func:`repro.symbolic.printer.to_c_string` provides the C-flavoured
rendering used for reports.  The alternate divide-by-zero strategy of §4.5
(return 0 instead of exiting) is selected with :class:`PatchStrategy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..lang.patcher import PatchAction, SourcePatch
from ..symbolic import metrics
from ..symbolic.expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    Unary,
)
from ..symbolic.printer import to_c_string
from .insertion import InsertionPoint


class PatchStrategy(enum.Enum):
    """What the generated patch does when the transferred check fires."""

    EXIT = "exit"            # exit(-1) before the error can occur (default)
    RETURN_ZERO = "return0"  # §4.5: return 0 and continue executing


@dataclass(frozen=True)
class GeneratedPatch:
    """A candidate patch for one insertion point."""

    guard: Expr                      # fires (true) exactly when the input must be rejected
    condition_source: str            # MicroC rendering of the guard
    c_source: str                    # C-flavoured rendering (for reports)
    insertion_point: InsertionPoint
    strategy: PatchStrategy
    excised_size: int
    translated_size: int

    @property
    def check_size(self) -> metrics.CheckSize:
        return metrics.CheckSize(self.excised_size, self.translated_size)

    def source_patch(self) -> SourcePatch:
        action = PatchAction.EXIT if self.strategy is PatchStrategy.EXIT else PatchAction.RETURN_ZERO
        return SourcePatch(
            insertion_statement_id=self.insertion_point.statement_id,
            condition_source=self.condition_source,
            action=action,
            description=f"transferred check at {self.insertion_point.function}",
        )

    def render(self) -> str:
        body = "exit(-1);" if self.strategy is PatchStrategy.EXIT else "return 0;"
        return f"if ({self.condition_source}) {{ {body} }}"


# ---------------------------------------------------------------------------
# MicroC rendering of translated expressions
# ---------------------------------------------------------------------------

_MICROC_BINARY = {
    Kind.ADD: "+",
    Kind.SUB: "-",
    Kind.MUL: "*",
    Kind.UDIV: "/",
    Kind.SDIV: "/",
    Kind.UREM: "%",
    Kind.SREM: "%",
    Kind.AND: "&",
    Kind.OR: "|",
    Kind.XOR: "^",
    Kind.SHL: "<<",
    Kind.LSHR: ">>",
    Kind.ASHR: ">>",
    Kind.EQ: "==",
    Kind.NE: "!=",
    Kind.ULT: "<",
    Kind.ULE: "<=",
    Kind.UGT: ">",
    Kind.UGE: ">=",
    Kind.SLT: "<",
    Kind.SLE: "<=",
    Kind.SGT: ">",
    Kind.SGE: ">=",
    Kind.BOOL_AND: "&&",
    Kind.BOOL_OR: "||",
}


def _microc_type(width: int, signed: bool = False) -> str:
    for candidate in (8, 16, 32, 64):
        if width <= candidate:
            return f"{'i' if signed else 'u'}{candidate}"
    return "u64"


def render_microc(expression: Expr) -> str:
    """Render a translated check as a MicroC expression.

    Leaves are :class:`InputField` nodes whose paths are already recipient
    expressions, so they are emitted verbatim.  Extensions and truncations
    become explicit casts; unsigned/signed comparisons force the intended
    signedness with casts on both operands.
    """
    if isinstance(expression, Constant):
        return str(expression.value)

    if isinstance(expression, InputField):
        return expression.path

    if isinstance(expression, Unary):
        operand = render_microc(expression.operand)
        if expression.op is Kind.NEG:
            return f"(-{operand})"
        if expression.op is Kind.NOT:
            return f"(~{operand})"
        return f"(!{operand})"

    if isinstance(expression, Extend):
        inner = render_microc(expression.operand)
        # Force zero- or sign-extension regardless of the operand's own type
        # by casting to the matching signedness at the narrow width first.
        narrow = _microc_type(expression.operand.width, expression.signed)
        wide = _microc_type(expression.width, expression.signed)
        return f"(({wide}) (({narrow}) {inner}))"

    if isinstance(expression, Extract):
        inner = render_microc(expression.operand)
        cast = _microc_type(expression.width)
        if expression.lo == 0:
            return f"(({cast}) {inner})"
        mask = (1 << expression.width) - 1
        return f"(({cast}) (({inner} >> {expression.lo}) & {mask}))"

    if isinstance(expression, Concat):
        pieces = []
        shift = expression.width
        wide = _microc_type(expression.width)
        for part in expression.parts:
            shift -= part.width
            rendered = f"(({wide}) (({_microc_type(part.width)}) {render_microc(part)}))"
            pieces.append(f"({rendered} << {shift})" if shift else rendered)
        return "(" + " | ".join(pieces) + ")"

    if isinstance(expression, Ite):
        # MicroC has no ternary operator; encode arithmetically when needed.
        cond = render_microc(expression.cond)
        then = render_microc(expression.then)
        otherwise = render_microc(expression.otherwise)
        wide = _microc_type(expression.width)
        return f"((({wide}) ({cond}) * {then}) + (({wide}) (1 - ({cond})) * {otherwise}))"

    if isinstance(expression, Binary):
        op = expression.op
        left, right = expression.left, expression.right
        if op.is_boolean:
            return f"({render_microc(left)} {_MICROC_BINARY[op]} {render_microc(right)})"
        operand_width = left.width
        signed = op.is_signed
        cast = _microc_type(operand_width, signed)
        left_src = f"(({cast}) {render_microc(left)})"
        right_src = f"(({cast}) {render_microc(right)})"
        return f"({left_src} {_MICROC_BINARY[op]} {right_src})"

    raise TypeError(f"cannot render {type(expression).__name__}")


def build_patch(
    guard: Expr,
    excised_condition: Expr,
    insertion_point: InsertionPoint,
    strategy: PatchStrategy = PatchStrategy.EXIT,
) -> GeneratedPatch:
    """Assemble a :class:`GeneratedPatch` from a translated guard expression."""
    return GeneratedPatch(
        guard=guard,
        condition_source=render_microc(guard),
        c_source=to_c_string(guard),
        insertion_point=insertion_point,
        strategy=strategy,
        excised_size=metrics.operation_count(excised_condition),
        translated_size=metrics.operation_count(guard),
    )
