"""Candidate insertion point identification and unstable-point filtering (§3.3).

CP runs an instrumented version of the recipient on the seed input.  A
statement is a *candidate insertion point* when, at some execution of that
statement, the enclosing function has read all of the input fields that the
excised check needs.  Because multipurpose code can execute the same point
with different values on different executions, CP filters out *unstable*
points — points whose reachable relevant values differ across executions — so
that the inserted check "performs the check only when it is relevant to the
error".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..formats.fields import FieldMap
from ..lang.checker import Program
from ..lang.trace import RunResult
from ..lang.vm import VM, VMConfig
from .traversal import RecipientName, names_at_statement


@dataclass(frozen=True)
class InsertionPoint:
    """A stable candidate insertion point with its reachable relevant values."""

    statement_id: int
    function: str
    line: int
    names: tuple[RecipientName, ...]


@dataclass
class InsertionReport:
    """Outcome of the insertion-point analysis for one recipient/check pair.

    The Figure 8 accounting ``X - Y - Z = W`` reads: ``X`` candidate points,
    minus ``Y`` unstable points, minus ``Z`` points where translation fails,
    leaves ``W`` usable points.  ``Z`` and ``W`` are filled in later by the
    rewrite stage; this report provides ``X`` and ``Y`` and the stable points.
    """

    required_fields: frozenset[str]
    candidate_count: int
    unstable_count: int
    stable_points: list[InsertionPoint] = field(default_factory=list)
    unstable_points: list[InsertionPoint] = field(default_factory=list)
    run_result: Optional[RunResult] = None

    @property
    def stable_count(self) -> int:
        return self.candidate_count - self.unstable_count


class _InsertionHooks:
    """VM hooks that snapshot reachable names at qualifying program points."""

    def __init__(self, program: Program, required_fields: frozenset[str]) -> None:
        self.program = program
        self.required_fields = required_fields
        # statement id -> list of snapshots (one per qualifying execution)
        self.snapshots: dict[int, list[tuple[RecipientName, ...]]] = {}
        self.locations: dict[int, tuple[str, int]] = {}

    # Hook protocol -----------------------------------------------------------

    def on_statement(self, vm, frame, statement) -> None:
        if not self.required_fields:
            return
        if not self.required_fields.issubset(frame.fields_accessed):
            return
        if not self.program.debug_info.has(statement.node_id):
            return
        names = names_at_statement(
            frame.locals, vm.globals, self.program.debug_info, statement.node_id
        )
        relevant = tuple(
            name for name in names if name.expression.fields() & self.required_fields
        )
        self.snapshots.setdefault(statement.node_id, []).append(relevant)
        self.locations[statement.node_id] = (frame.function, statement.line)

    def on_branch(self, vm, frame, record) -> None:
        return None

    def on_allocation(self, vm, frame, record) -> None:
        return None

    def on_call(self, vm, frame) -> None:
        return None

    def on_return(self, vm, frame) -> None:
        return None


def find_insertion_points(
    program: Program,
    seed_input: bytes,
    field_map: FieldMap,
    required_fields: frozenset[str],
) -> InsertionReport:
    """Run the recipient on the seed input and identify insertion points."""
    hooks = _InsertionHooks(program, required_fields)
    vm = VM(program, config=VMConfig(track_symbolic=True))
    result = vm.run(seed_input, field_map=field_map, hooks=hooks)

    report = InsertionReport(
        required_fields=required_fields,
        candidate_count=len(hooks.snapshots),
        unstable_count=0,
        run_result=result,
    )
    for statement_id, snapshots in sorted(hooks.snapshots.items()):
        function, line = hooks.locations[statement_id]
        point = InsertionPoint(
            statement_id=statement_id,
            function=function,
            line=line,
            names=snapshots[0],
        )
        if _is_unstable(snapshots):
            report.unstable_count += 1
            report.unstable_points.append(point)
            continue
        report.stable_points.append(point)
    return report


def _is_unstable(snapshots: list[tuple[RecipientName, ...]]) -> bool:
    """A point is unstable when different executions see different values."""
    if len(snapshots) <= 1:
        return False
    first = snapshots[0]
    return any(snapshot != first for snapshot in snapshots[1:])
