"""Candidate insertion point identification and unstable-point filtering (§3.3).

CP runs an instrumented version of the recipient on the seed input.  A
statement is a *candidate insertion point* when, at some execution of that
statement, the enclosing function has read all of the input fields that the
excised check needs.  Because multipurpose code can execute the same point
with different values on different executions, CP filters out *unstable*
points — points whose reachable relevant values differ across executions — so
that the inserted check "performs the check only when it is relevant to the
error".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..formats.fields import FieldMap
from ..lang.checker import Program
from ..lang.trace import RunResult
from ..lang.vm import VM, VMConfig
from .traversal import RecipientName, names_at_statement


@dataclass(frozen=True)
class InsertionPoint:
    """A stable candidate insertion point with its reachable relevant values."""

    statement_id: int
    function: str
    line: int
    names: tuple[RecipientName, ...]


@dataclass
class InsertionReport:
    """Outcome of the insertion-point analysis for one recipient/check pair.

    The Figure 8 accounting ``X - Y - Z = W`` reads: ``X`` candidate points,
    minus ``Y`` unstable points, minus ``Z`` points where translation fails,
    leaves ``W`` usable points.  ``Z`` and ``W`` are filled in later by the
    rewrite stage; this report provides ``X`` and ``Y`` and the stable points.
    """

    required_fields: frozenset[str]
    candidate_count: int
    unstable_count: int
    stable_points: list[InsertionPoint] = field(default_factory=list)
    unstable_points: list[InsertionPoint] = field(default_factory=list)
    run_result: Optional[RunResult] = None

    @property
    def stable_count(self) -> int:
        return self.candidate_count - self.unstable_count


class _InsertionHooks:
    """VM hooks that snapshot reachable names at qualifying program points."""

    def __init__(self, program: Program, required_fields: frozenset[str]) -> None:
        self.program = program
        self.required_fields = required_fields
        # statement id -> list of snapshots (one per qualifying execution)
        self.snapshots: dict[int, list[tuple[RecipientName, ...]]] = {}
        self.locations: dict[int, tuple[str, int]] = {}

    # Hook protocol -----------------------------------------------------------

    def on_statement(self, vm, frame, statement) -> None:
        if not self.required_fields:
            return
        if not self.required_fields.issubset(frame.fields_accessed):
            return
        if not self.program.debug_info.has(statement.node_id):
            return
        names = names_at_statement(
            frame.locals, vm.globals, self.program.debug_info, statement.node_id
        )
        relevant = tuple(
            name for name in names if name.expression.fields() & self.required_fields
        )
        self.snapshots.setdefault(statement.node_id, []).append(relevant)
        self.locations[statement.node_id] = (frame.function, statement.line)

    def on_branch(self, vm, frame, record) -> None:
        return None

    def on_allocation(self, vm, frame, record) -> None:
        return None

    def on_call(self, vm, frame) -> None:
        return None

    def on_return(self, vm, frame) -> None:
        return None


class _SlotLocals:
    """Read-only name -> Cell view of a compiled activation's local slots.

    ``collect_names`` only calls ``.get`` and reads ``cell.value``.  Boxed
    and dynamic slots hold real :class:`Cell` objects; simple slots hold raw
    runtime values and are wrapped in a fresh Cell here (safe because a
    simple slot is by construction never address-taken, so cell identity is
    not observable).  A ``None`` slot means the declaration has not executed
    yet on this path — absent, exactly like the interpreter's flat locals
    before the ``VarDecl`` runs.

    Wrapper cells are kept alive in ``wrapper_cache`` (keyed by slot, reused
    while the slot still holds the same value object): the traversal dedupes
    reachable cells by ``id()``, so letting a transient wrapper be freed
    would let the next one reuse its address and be wrongly pruned — and
    loop-heavy programs snapshot the same unchanged slots hundreds of times.
    """

    __slots__ = ("L", "slot_map", "wrapper_cache")

    def __init__(self, L: list, slot_map: dict, wrapper_cache: dict) -> None:
        self.L = L
        self.slot_map = slot_map
        self.wrapper_cache = wrapper_cache

    def get(self, name: str, default=None):
        entry = self.slot_map.get(name)
        if entry is None:
            return default
        slot, kind, ctype = entry
        value = self.L[slot]
        if value is None:
            return default
        if kind == 0:  # _SIMPLE slot: raw runtime value
            cached = self.wrapper_cache.get(slot)
            if cached is not None and cached.value is value:
                return cached
            cell = _RootCell(ctype, value)
            self.wrapper_cache[slot] = cell
            return cell
        return value  # _BOXED/_DYN slots hold the Cell itself


class _RootCell:
    """Minimal cell stand-in for simple-slot values handed to the traversal
    (which reads only ``value`` and dedupes by object identity)."""

    __slots__ = ("declared_type", "value")

    def __init__(self, declared_type, value) -> None:
        self.declared_type = declared_type
        self.value = value


class _CompiledCollector:
    """Observed-tier counterpart of :class:`_InsertionHooks`.

    Invoked at every post-statement ``OP_OBS`` point of the compiled
    observed artifact with the activation's accumulated field reads
    (``rt.frame_fields``) standing in for ``Frame.fields_accessed``.
    """

    __slots__ = (
        "vm",
        "debug_info",
        "required_fields",
        "snapshots",
        "locations",
        "_wrapper_caches",
    )

    def __init__(
        self, vm: VM, program: Program, required_fields: frozenset[str]
    ) -> None:
        self.vm = vm
        self.debug_info = program.debug_info
        self.required_fields = required_fields
        self.snapshots: dict[int, list[tuple[RecipientName, ...]]] = {}
        self.locations: dict[int, tuple[str, int]] = {}
        # One wrapper cache per compiled function (slot maps are per-function
        # and live as long as the compiled program, so their ids are stable).
        self._wrapper_caches: dict[int, dict] = {}

    def __call__(self, rt, marker, slot_map, L) -> None:
        required = self.required_fields
        if not required.issubset(rt.frame_fields):
            return
        statement_id = marker[1]
        if not self.debug_info.has(statement_id):
            return
        caches = self._wrapper_caches
        key = id(slot_map)
        cache = caches.get(key)
        if cache is None:
            cache = caches[key] = {}
        names = names_at_statement(
            _SlotLocals(L, slot_map, cache),
            self.vm.globals,
            self.debug_info,
            statement_id,
        )
        relevant = tuple(
            name for name in names if name.expression.fields() & required
        )
        self.snapshots.setdefault(statement_id, []).append(relevant)
        self.locations[statement_id] = (marker[0], marker[2])


def find_insertion_points(
    program: Program,
    seed_input: bytes,
    field_map: FieldMap,
    required_fields: frozenset[str],
) -> InsertionReport:
    """Run the recipient on the seed input and identify insertion points."""
    vm = VM(program, config=VMConfig(track_symbolic=True))
    if vm.config.use_compiled:
        from ..lang.compile import run_compiled

        if required_fields:
            collector = _CompiledCollector(vm, program, required_fields)
            result = run_compiled(
                vm, seed_input, field_map=field_map, observer=collector
            )
            snapshots, locations = collector.snapshots, collector.locations
        else:
            # No required fields: no statement can ever qualify, so a plain
            # compiled run (no observed artifact) produces the same report.
            result = run_compiled(vm, seed_input, field_map=field_map)
            snapshots, locations = {}, {}
    else:
        hooks = _InsertionHooks(program, required_fields)
        result = vm.run(seed_input, field_map=field_map, hooks=hooks)
        snapshots, locations = hooks.snapshots, hooks.locations

    report = InsertionReport(
        required_fields=required_fields,
        candidate_count=len(snapshots),
        unstable_count=0,
        run_result=result,
    )
    for statement_id, executions in sorted(snapshots.items()):
        function, line = locations[statement_id]
        point = InsertionPoint(
            statement_id=statement_id,
            function=function,
            line=line,
            names=executions[0],
        )
        if _is_unstable(executions):
            report.unstable_count += 1
            report.unstable_points.append(point)
            continue
        report.stable_points.append(point)
    return report


def _is_unstable(snapshots: list[tuple[RecipientName, ...]]) -> bool:
    """A point is unstable when different executions see different values."""
    if len(snapshots) <= 1:
        return False
    first = snapshots[0]
    return any(snapshot != first for snapshot in snapshots[1:])
