"""The Code Phage transfer data model, plus the legacy ``CodePhage`` facade.

The stage sequencing that used to live here (paper Figure 4: donor selection,
candidate check discovery, check excision, insertion-point identification,
rewrite, patch generation, validation with retry over checks, points, and
donors) now lives in the stage-graph engine (:mod:`repro.core.stages`) behind
the public :mod:`repro.api` facade.  This module keeps the result types —
:class:`TransferMetrics` captures exactly the columns of the paper's Figure 8
plus the solver and per-stage timing accounting — and :class:`CodePhage`, a
thin compatibility shim whose ``transfer``/``repair`` delegate to the facade
(a parity test pins the shim and the facade to identical outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..apps.registry import Application, ErrorTarget
from ..solver.equivalence import EquivalenceOptions
from ..symbolic.simplify import SimplifyOptions
from .excision import ExcisedCheck
from .patch import GeneratedPatch, PatchStrategy
from .validation import ValidationOptions, ValidationOutcome


@dataclass
class CodePhageOptions:
    """Pipeline configuration."""

    patch_strategy: PatchStrategy = PatchStrategy.EXIT
    simplify_options: SimplifyOptions = field(default_factory=SimplifyOptions)
    equivalence_options: EquivalenceOptions = field(default_factory=EquivalenceOptions)
    validation: ValidationOptions = field(default_factory=ValidationOptions)
    regression_inputs: int = 6
    max_candidate_checks: int = 8
    max_recursive_patches: int = 4
    filter_unstable_points: bool = True
    #: Which search policy drives the candidate/donor retry loops; one of
    #: :data:`repro.core.stages.POLICIES` ("first-validated", "smallest-patch",
    #: "all-donors").
    search_policy: str = "first-validated"


@dataclass
class InsertionAccounting:
    """The Figure 8 ``X - Y - Z = W`` bookkeeping for one transferred check."""

    candidate_points: int
    unstable_points: int
    untranslatable_points: int
    usable_points: int

    def __str__(self) -> str:
        return (
            f"{self.candidate_points} - {self.unstable_points} - "
            f"{self.untranslatable_points} = {self.usable_points}"
        )


@dataclass
class TransferredCheck:
    """One successfully transferred and validated check."""

    donor: str
    patch: GeneratedPatch
    excised: ExcisedCheck
    accounting: InsertionAccounting
    validation: ValidationOutcome
    patched_source: str

    @property
    def check_size(self) -> str:
        return f"{self.patch.excised_size} -> {self.patch.translated_size}"


@dataclass
class TransferMetrics:
    """Per-row metrics matching the columns of Figure 8."""

    recipient: str = ""
    target: str = ""
    donor: str = ""
    generation_time_s: float = 0.0
    relevant_branches: int = 0
    flipped_branches: list[int] = field(default_factory=list)
    used_checks: int = 0
    insertion_accounting: list[InsertionAccounting] = field(default_factory=list)
    check_sizes: list[tuple[int, int]] = field(default_factory=list)
    # Solver accounting for this transfer (deltas over the shared checker),
    # surfaced so campaign runs can report cache effectiveness per job.
    solver_queries: int = 0
    solver_cache_hits: int = 0
    solver_persistent_hits: int = 0
    solver_expensive_queries: int = 0
    #: Structurally identical blasted/satisfiability queries answered by the
    #: session's :class:`~repro.solver.engine.QueryBatch` during this transfer.
    solver_batch_hits: int = 0
    #: Per-backend counter deltas (queries, sat/unsat/unknown, conflicts,
    #: learned clauses, time) for this transfer, keyed by backend name; the
    #: campaign scheduler aggregates these into ``CampaignReport.backend_stats``.
    solver_backend_stats: dict[str, dict] = field(default_factory=dict)
    #: Cumulative wall time per pipeline stage, populated solely from the
    #: ``StageFinished`` event stream (see :mod:`repro.core.events`).
    stage_timings: dict[str, float] = field(default_factory=dict)

    def flipped_display(self) -> str:
        if len(self.flipped_branches) == 1:
            return str(self.flipped_branches[0])
        return "[" + ",".join(str(value) for value in self.flipped_branches) + "]"

    def sizes_display(self) -> str:
        parts = [f"{before} -> {after}" for before, after in self.check_sizes]
        if len(parts) == 1:
            return parts[0]
        return "[" + ", ".join(parts) + "]"


@dataclass
class TransferOutcome:
    """Result of one CP repair attempt for a recipient error."""

    success: bool
    recipient: str
    target: str
    donor: str
    checks: list[TransferredCheck] = field(default_factory=list)
    metrics: TransferMetrics = field(default_factory=TransferMetrics)
    failure_reason: str = ""

    @property
    def patched_source(self) -> Optional[str]:
        if not self.checks:
            return None
        return self.checks[-1].patched_source


class CodePhage:
    """The horizontal code transfer system (legacy compatibility facade).

    New code should use :mod:`repro.api` (``RepairRequest`` ->
    ``RepairReport``); this class remains for existing callers and delegates
    to a :class:`repro.api.RepairSession` that owns the stage-graph engine
    and the shared :class:`~repro.solver.equivalence.EquivalenceChecker`.
    """

    def __init__(self, options: Optional[CodePhageOptions] = None) -> None:
        from ..api.facade import RepairSession  # deferred: api wraps core

        self.session = RepairSession(options=options)
        self.options = self.session.options
        self.checker = self.session.checker

    def transfer(
        self,
        recipient: Application,
        target: ErrorTarget,
        donor: Application,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
    ) -> TransferOutcome:
        """Transfer a check from ``donor`` to eliminate ``target`` in ``recipient``."""
        return self.session.transfer(recipient, target, donor, seed, error_input, format_name)

    def repair(
        self,
        recipient: Application,
        target: ErrorTarget,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
        donors: Optional[Sequence[Application]] = None,
    ) -> TransferOutcome:
        """Full pipeline including donor selection: try donors until one validates."""
        return self.session.repair(recipient, target, seed, error_input, format_name, donors)
