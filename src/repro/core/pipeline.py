"""The Code Phage pipeline (paper Figure 4).

:class:`CodePhage` wires the stages together: donor selection, candidate check
discovery, check excision, insertion-point identification, data-structure
traversal and rewrite, patch generation, and patch validation with retry over
candidate checks, insertion points, and donors.  When validation's DIODE
rescan discovers residual errors, the pipeline recursively transfers further
checks until no error remains (the multi-patch rows of Figure 8).

The per-transfer :class:`TransferMetrics` capture exactly the columns of the
paper's Figure 8 so the benchmark harness can regenerate the table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..apps.registry import Application, ErrorTarget
from ..formats.fields import FormatSpec
from ..formats.generator import InputGenerator
from ..formats.registry import get_format
from ..lang.checker import Program, compile_program
from ..lang.patcher import PatchError, PatchedProgram, apply_patch
from ..lang.trace import ErrorKind
from ..solver.equivalence import EquivalenceChecker, EquivalenceOptions
from ..symbolic.simplify import SimplifyOptions
from .check_discovery import DiscoveryResult, discover_candidate_checks, relevant_fields
from .donor_selection import select_donors
from .excision import ExcisedCheck, excise_check
from .insertion import InsertionReport, find_insertion_points
from .patch import GeneratedPatch, PatchStrategy, build_patch
from .rewrite import Rewriter
from .validation import ValidationOptions, ValidationOutcome, validate_patch


@dataclass
class CodePhageOptions:
    """Pipeline configuration."""

    patch_strategy: PatchStrategy = PatchStrategy.EXIT
    simplify_options: SimplifyOptions = field(default_factory=SimplifyOptions)
    equivalence_options: EquivalenceOptions = field(default_factory=EquivalenceOptions)
    validation: ValidationOptions = field(default_factory=ValidationOptions)
    regression_inputs: int = 6
    max_candidate_checks: int = 8
    max_recursive_patches: int = 4
    filter_unstable_points: bool = True


@dataclass
class InsertionAccounting:
    """The Figure 8 ``X - Y - Z = W`` bookkeeping for one transferred check."""

    candidate_points: int
    unstable_points: int
    untranslatable_points: int
    usable_points: int

    def __str__(self) -> str:
        return (
            f"{self.candidate_points} - {self.unstable_points} - "
            f"{self.untranslatable_points} = {self.usable_points}"
        )


@dataclass
class TransferredCheck:
    """One successfully transferred and validated check."""

    donor: str
    patch: GeneratedPatch
    excised: ExcisedCheck
    accounting: InsertionAccounting
    validation: ValidationOutcome
    patched_source: str

    @property
    def check_size(self) -> str:
        return f"{self.patch.excised_size} -> {self.patch.translated_size}"


@dataclass
class TransferMetrics:
    """Per-row metrics matching the columns of Figure 8."""

    recipient: str = ""
    target: str = ""
    donor: str = ""
    generation_time_s: float = 0.0
    relevant_branches: int = 0
    flipped_branches: list[int] = field(default_factory=list)
    used_checks: int = 0
    insertion_accounting: list[InsertionAccounting] = field(default_factory=list)
    check_sizes: list[tuple[int, int]] = field(default_factory=list)
    # Solver accounting for this transfer (deltas over the shared checker),
    # surfaced so campaign runs can report cache effectiveness per job.
    solver_queries: int = 0
    solver_cache_hits: int = 0
    solver_persistent_hits: int = 0
    solver_expensive_queries: int = 0

    def flipped_display(self) -> str:
        if len(self.flipped_branches) == 1:
            return str(self.flipped_branches[0])
        return "[" + ",".join(str(value) for value in self.flipped_branches) + "]"

    def sizes_display(self) -> str:
        parts = [f"{before} -> {after}" for before, after in self.check_sizes]
        if len(parts) == 1:
            return parts[0]
        return "[" + ", ".join(parts) + "]"


@dataclass
class TransferOutcome:
    """Result of one CP repair attempt for a recipient error."""

    success: bool
    recipient: str
    target: str
    donor: str
    checks: list[TransferredCheck] = field(default_factory=list)
    metrics: TransferMetrics = field(default_factory=TransferMetrics)
    failure_reason: str = ""

    @property
    def patched_source(self) -> Optional[str]:
        if not self.checks:
            return None
        return self.checks[-1].patched_source


class CodePhage:
    """The horizontal code transfer system."""

    def __init__(self, options: Optional[CodePhageOptions] = None) -> None:
        self.options = options or CodePhageOptions()
        self.checker = EquivalenceChecker(
            options=self.options.equivalence_options,
            simplify_options=self.options.simplify_options,
        )

    # -- public API ------------------------------------------------------------------

    def transfer(
        self,
        recipient: Application,
        target: ErrorTarget,
        donor: Application,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
    ) -> TransferOutcome:
        """Transfer a check from ``donor`` to eliminate ``target`` in ``recipient``."""
        start = time.perf_counter()
        format_name = format_name or recipient.formats[0]
        format_spec = get_format(format_name)
        metrics = TransferMetrics(
            recipient=recipient.full_name, target=target.target_id, donor=donor.full_name
        )
        outcome = TransferOutcome(
            success=False,
            recipient=recipient.full_name,
            target=target.target_id,
            donor=donor.full_name,
            metrics=metrics,
        )

        regression = InputGenerator(format_spec).regression_corpus(
            self.options.regression_inputs
        )
        current_source = recipient.source
        current_error: Optional[bytes] = error_input

        stats = self.checker.statistics
        base_queries = stats.queries
        base_cache_hits = stats.cache_hits
        base_persistent_hits = stats.persistent_cache_hits
        base_expensive = stats.solver_invocations

        try:
            for round_index in range(self.options.max_recursive_patches):
                if current_error is None:
                    break
                transferred = self._transfer_once(
                    current_source,
                    recipient,
                    target,
                    donor,
                    seed,
                    current_error,
                    format_spec,
                    regression,
                    metrics,
                )
                if transferred is None:
                    if round_index == 0:
                        outcome.failure_reason = "no validated patch found"
                        return outcome
                    break
                outcome.checks.append(transferred)
                metrics.used_checks += 1
                metrics.insertion_accounting.append(transferred.accounting)
                metrics.check_sizes.append(
                    (transferred.patch.excised_size, transferred.patch.translated_size)
                )
                current_source = transferred.patched_source

                # Residual errors discovered by the DIODE rescan drive recursion.
                residual = transferred.validation.residual_findings
                if residual:
                    current_error = residual[0].error_input
                else:
                    current_error = None

            outcome.success = bool(outcome.checks) and current_error is None
            if not outcome.success and not outcome.failure_reason:
                outcome.failure_reason = "residual errors remain after recursive patching"
            return outcome
        finally:
            metrics.generation_time_s = time.perf_counter() - start
            metrics.solver_queries = stats.queries - base_queries
            metrics.solver_cache_hits = stats.cache_hits - base_cache_hits
            metrics.solver_persistent_hits = (
                stats.persistent_cache_hits - base_persistent_hits
            )
            metrics.solver_expensive_queries = stats.solver_invocations - base_expensive

    def repair(
        self,
        recipient: Application,
        target: ErrorTarget,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
        donors: Optional[Sequence[Application]] = None,
    ) -> TransferOutcome:
        """Full pipeline including donor selection: try donors until one validates."""
        format_name = format_name or recipient.formats[0]
        if donors is None:
            selection = select_donors(format_name, seed, error_input, recipient=recipient)
            donors = selection.donors
        last: Optional[TransferOutcome] = None
        for donor in donors:
            outcome = self.transfer(recipient, target, donor, seed, error_input, format_name)
            if outcome.success:
                return outcome
            last = outcome
        if last is not None:
            return last
        return TransferOutcome(
            success=False,
            recipient=recipient.full_name,
            target=target.target_id,
            donor="<none>",
            failure_reason="no viable donor found",
        )

    # -- single-check transfer -----------------------------------------------------------

    def _transfer_once(
        self,
        recipient_source: str,
        recipient: Application,
        target: ErrorTarget,
        donor: Application,
        seed: bytes,
        error_input: bytes,
        format_spec: FormatSpec,
        regression: Sequence[bytes],
        metrics: TransferMetrics,
    ) -> Optional[TransferredCheck]:
        recipient_program = compile_program(recipient_source, name=recipient.full_name)

        relevant = relevant_fields(format_spec, seed, error_input)
        discovery = discover_candidate_checks(
            donor.program(),
            format_spec,
            seed,
            error_input,
            relevant=relevant,
            simplify_options=self.options.simplify_options,
        )
        metrics.relevant_branches = max(metrics.relevant_branches, discovery.relevant_branches)
        metrics.flipped_branches.append(discovery.flipped_branches)

        for candidate in discovery.candidates[: self.options.max_candidate_checks]:
            excised = excise_check(
                donor.program(),
                format_spec,
                error_input,
                candidate,
                simplify_options=self.options.simplify_options,
                donor_name=donor.full_name,
            )
            transferred = self._try_candidate(
                recipient_source,
                recipient_program,
                excised,
                format_spec,
                seed,
                error_input,
                regression,
                target,
            )
            if transferred is not None:
                return transferred
        return None

    def _try_candidate(
        self,
        recipient_source: str,
        recipient_program: Program,
        excised: ExcisedCheck,
        format_spec: FormatSpec,
        seed: bytes,
        error_input: bytes,
        regression: Sequence[bytes],
        target: ErrorTarget,
    ) -> Optional[TransferredCheck]:
        required = excised.fields
        report = find_insertion_points(
            recipient_program, seed, format_spec.field_map(seed), required
        )
        if self.options.filter_unstable_points:
            points = report.stable_points
        else:
            # Without the filter every candidate point is considered (used by
            # the unstable-point ablation benchmark).
            points = report.stable_points + report.unstable_points

        untranslatable = 0
        patches: list[GeneratedPatch] = []
        for point in points:
            rewriter = Rewriter(point.names, checker=self.checker)
            result = rewriter.rewrite(excised.guard)
            if result is None:
                untranslatable += 1
                continue
            patches.append(
                build_patch(
                    guard=result.expression,
                    excised_condition=excised.condition,
                    insertion_point=point,
                    strategy=self.options.patch_strategy,
                )
            )

        accounting = InsertionAccounting(
            candidate_points=report.candidate_count,
            unstable_points=report.unstable_count,
            untranslatable_points=untranslatable,
            usable_points=len(patches),
        )

        # "CP then sorts the remaining generated patches by size and attempts
        # to validate the patches in that order."
        patches.sort(key=lambda patch: patch.translated_size)

        overflow_expr = None
        if target.error_kind is ErrorKind.INTEGER_OVERFLOW:
            overflow_expr = self._allocation_expression(recipient_program, format_spec, seed, target)

        for patch in patches:
            try:
                patched = apply_patch(recipient_source, patch.source_patch(), recipient_program.name)
            except PatchError:
                continue
            validation = validate_patch(
                recipient_program,
                patched,
                format_spec,
                seed,
                error_input,
                regression_corpus=regression,
                target_function=target.site_function,
                options=self.options.validation,
                donor_guard=excised.guard,
                overflow_size_expr=overflow_expr,
                checker=self.checker,
            )
            if validation.ok:
                return TransferredCheck(
                    donor=excised.donor,
                    patch=patch,
                    excised=excised,
                    accounting=accounting,
                    validation=validation,
                    patched_source=patched.source,
                )
        return None

    def _allocation_expression(
        self,
        recipient_program: Program,
        format_spec: FormatSpec,
        seed: bytes,
        target: ErrorTarget,
    ):
        """The symbolic allocation-size expression at the target site (seed run)."""
        from .check_discovery import run_instrumented

        result = run_instrumented(
            recipient_program, format_spec, seed, self.options.simplify_options
        )
        for record in result.allocations:
            if record.function == target.site_function and record.symbolic is not None:
                return record.symbolic
        return None
