"""Recipient data-structure traversal (paper Figure 6).

Starting from the local and global variables in scope at a candidate insertion
point (obtained from the debug information), the traversal follows pointers
and struct fields to every reachable value, recording for each one

* a *path*: a MicroC expression, in the recipient's name space, that evaluates
  to the value (``dinfo.output_width``, ``png_ptr->width``, ``(*p)``), and
* the symbolic expression describing how the recipient computed that value
  from the input fields (taken from the VM's shadow state).

These ⟨path, expression⟩ pairs are the ``Names`` consumed by the Rewrite
algorithm (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..lang.debuginfo import DebugInfo, ScopeVariable
from ..lang.memory import Buffer, Cell, Pointer, StructInstance, TaintedValue
from ..symbolic.expr import Expr


@dataclass(frozen=True)
class RecipientName:
    """One reachable relevant value in the recipient (a Figure 6 ⟨p, E⟩ pair)."""

    path: str
    expression: Expr
    width: int
    signed: bool

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{self.path} ≡ {self.expression}"


def traverse_cell(path: str, cell: Cell, visited: set[int]) -> list[RecipientName]:
    """Figure 6's ``Traverse`` for a single root cell."""
    names: list[RecipientName] = []
    if id(cell) in visited:
        return names
    visited.add(id(cell))
    value = cell.value

    if isinstance(value, TaintedValue):
        if value.symbolic is not None:
            names.append(
                RecipientName(
                    path=path,
                    expression=value.symbolic,
                    width=value.width,
                    signed=value.signed,
                )
            )
        return names

    if isinstance(value, StructInstance):
        for field_name, field_cell in value.cells.items():
            names.extend(traverse_cell(f"{path}.{field_name}", field_cell, visited))
        return names

    if isinstance(value, Pointer):
        if value.is_null or isinstance(value.target, Buffer):
            return names
        target = value.target
        if isinstance(target.value, StructInstance):
            # Render pointer-to-struct accesses with the arrow operator so the
            # generated patch reads like the paper's (png_ptr->width ...).
            for field_name, field_cell in target.value.cells.items():
                names.extend(traverse_cell(f"{path}->{field_name}", field_cell, visited))
            return names
        return traverse_cell(f"(*{path})", target, visited)

    return names


def collect_names(
    locals_: Mapping[str, Cell],
    globals_: Mapping[str, Cell],
    scope: Iterable[ScopeVariable],
) -> list[RecipientName]:
    """Names reachable from every variable in scope at a program point."""
    visited: set[int] = set()
    names: list[RecipientName] = []
    for variable in scope:
        cell: Optional[Cell] = None
        if variable.kind in ("local", "param"):
            cell = locals_.get(variable.name)
        if cell is None:
            cell = globals_.get(variable.name)
        if cell is None:
            continue
        names.extend(traverse_cell(variable.name, cell, visited))
    return names


def names_at_statement(
    frame_locals: Mapping[str, Cell],
    globals_: Mapping[str, Cell],
    debug_info: DebugInfo,
    statement_id: int,
) -> list[RecipientName]:
    """Names available immediately after ``statement_id`` given live frame state."""
    scope = debug_info.scope_at(statement_id)
    return collect_names(frame_locals, globals_, scope)
