"""The stage-graph engine: Figure 4 as composable pipeline stages.

The paper presents CP as a sequence of named stages — donor selection,
candidate check discovery, check excision, insertion-point identification,
rewrite, patch generation, and validation.  Here each stage is a
:class:`Stage` object with a declared input/output contract over a shared
:class:`TransferContext`, and :class:`TransferEngine` drives the retry loops
(candidate checks x insertion points x donors x recursive multi-patch
rounds) through a pluggable :class:`SearchPolicy` instead of nested ``for``
loops.

Contracts are data, not convention: a stage's ``requires`` keys must be
present in ``ctx.state`` before it runs and its ``provides`` keys must be
present after, or the engine raises :class:`ContractError`.  Every stage
execution is bracketed by ``StageStarted``/``StageFinished`` events on the
engine's :class:`~repro.core.events.EventBus`, which is how timing,
progress rendering, and campaign observability happen without any stage
knowing about reporting.

The engine is not the public API — :mod:`repro.api` wraps it in the
``RepairRequest`` -> ``RepairReport`` facade that the CLI, the experiment
drivers, and the campaign workers all route through.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..apps.registry import Application, ErrorTarget
from ..formats.fields import FormatSpec
from ..formats.generator import InputGenerator
from ..formats.registry import get_format
from ..lang.checker import Program, compile_program
from ..lang.patcher import PatchError, apply_patch
from ..lang.trace import ErrorKind
from ..lang.vm import VM, VMConfig
from ..solver.backends import diff_snapshots
from ..solver.equivalence import EquivalenceChecker
from .check_discovery import discover_candidate_checks, relevant_fields, run_instrumented
from .donor_selection import select_donors
from .events import (
    CandidateRejected,
    DonorAttempted,
    EventBus,
    PatchValidated,
    ResidualErrorFound,
    StageFinished,
    StageStarted,
    StageTimingObserver,
)
from .excision import excise_check
from .insertion import find_insertion_points
from .patch import build_patch
from .pipeline import (
    CodePhageOptions,
    InsertionAccounting,
    TransferMetrics,
    TransferOutcome,
    TransferredCheck,
)
from .rewrite import Rewriter
from .validation import validate_patch


class ContractError(RuntimeError):
    """A stage ran without its declared inputs, or broke its output promise."""


@dataclass
class TransferContext:
    """The shared state one transfer's stages operate on.

    The fixed fields are the transfer inputs (applications, inputs, format,
    options, shared solver checker, event bus, metrics); ``current_source``
    and ``current_error`` evolve across recursive rounds; ``state`` is the
    contract surface — the keys stages declare in ``requires``/``provides``.
    """

    recipient: Application
    target: ErrorTarget
    seed: bytes
    error_input: bytes
    format_spec: FormatSpec
    options: CodePhageOptions
    checker: EquivalenceChecker
    events: EventBus
    metrics: TransferMetrics
    donor: Optional[Application] = None
    regression: Sequence[bytes] = ()
    current_source: str = ""
    current_error: Optional[bytes] = None
    round_index: int = 0
    state: dict = field(default_factory=dict)

    def require(self, key: str):
        try:
            return self.state[key]
        except KeyError:
            raise ContractError(f"stage input {key!r} missing from the context") from None


class Stage:
    """One pipeline stage with a declared input/output contract."""

    name: str = ""
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()

    def run(self, ctx: TransferContext) -> None:
        raise NotImplementedError


class DonorSelectionStage(Stage):
    """§3.1: applications that process both inputs are potential donors."""

    name = "donor-selection"
    provides = ("donor_pool",)

    def run(self, ctx: TransferContext) -> None:
        selection = select_donors(
            ctx.format_spec.name, ctx.seed, ctx.error_input, recipient=ctx.recipient
        )
        ctx.state["donor_pool"] = tuple(selection.donors)


class CheckDiscoveryStage(Stage):
    """§3.2: branches that flip between the donor's seed and error runs."""

    name = "check-discovery"
    requires = ("recipient_program",)  # seeded by the engine per round
    provides = ("discovery", "candidates")

    def run(self, ctx: TransferContext) -> None:
        relevant = relevant_fields(ctx.format_spec, ctx.seed, ctx.current_error)
        discovery = discover_candidate_checks(
            ctx.donor.program(),
            ctx.format_spec,
            ctx.seed,
            ctx.current_error,
            relevant=relevant,
            simplify_options=ctx.options.simplify_options,
        )
        ctx.metrics.relevant_branches = max(
            ctx.metrics.relevant_branches, discovery.relevant_branches
        )
        ctx.metrics.flipped_branches.append(discovery.flipped_branches)
        ctx.state["discovery"] = discovery
        ctx.state["candidates"] = tuple(
            discovery.candidates[: ctx.options.max_candidate_checks]
        )


class ExcisionStage(Stage):
    """§3.2: re-run the donor and excise the check into the symbolic IR."""

    name = "excision"
    requires = ("candidate",)
    provides = ("excised",)

    def run(self, ctx: TransferContext) -> None:
        ctx.state["excised"] = excise_check(
            ctx.donor.program(),
            ctx.format_spec,
            ctx.current_error,
            ctx.require("candidate"),
            simplify_options=ctx.options.simplify_options,
            donor_name=ctx.donor.full_name,
        )


class InsertionStage(Stage):
    """§3.3: candidate insertion points, with the unstable-point filter."""

    name = "insertion"
    requires = ("excised", "recipient_program")
    provides = ("insertion_report", "points")

    def run(self, ctx: TransferContext) -> None:
        excised = ctx.require("excised")
        report = find_insertion_points(
            ctx.require("recipient_program"),
            ctx.seed,
            ctx.format_spec.field_map(ctx.seed),
            excised.fields,
        )
        if ctx.options.filter_unstable_points:
            points = list(report.stable_points)
        else:
            # Without the filter every candidate point is considered (used by
            # the unstable-point ablation benchmark).
            points = report.stable_points + report.unstable_points
        ctx.state["insertion_report"] = report
        ctx.state["points"] = tuple(points)


class RewriteStage(Stage):
    """§3.3 / Figure 7: translate the check into the recipient's vocabulary."""

    name = "rewrite"
    requires = ("excised", "points")
    provides = ("translations", "untranslatable")

    def run(self, ctx: TransferContext) -> None:
        excised = ctx.require("excised")
        translations = []
        untranslatable = 0
        for point in ctx.require("points"):
            rewriter = Rewriter(point.names, checker=ctx.checker)
            result = rewriter.rewrite(excised.guard)
            if result is None:
                untranslatable += 1
                ctx.events.emit(
                    CandidateRejected(
                        kind="insertion-point",
                        function=point.function,
                        line=point.line,
                        reason="check not translatable into the names reachable here",
                    )
                )
                continue
            translations.append((point, result))
        ctx.state["translations"] = tuple(translations)
        ctx.state["untranslatable"] = untranslatable


class PatchGenerationStage(Stage):
    """Generate patches for every translation and sort them by size."""

    name = "patch-generation"
    requires = ("excised", "translations", "insertion_report", "untranslatable")
    provides = ("patches", "accounting")

    def run(self, ctx: TransferContext) -> None:
        excised = ctx.require("excised")
        report = ctx.require("insertion_report")
        patches = [
            build_patch(
                guard=result.expression,
                excised_condition=excised.condition,
                insertion_point=point,
                strategy=ctx.options.patch_strategy,
            )
            for point, result in ctx.require("translations")
        ]
        ctx.state["accounting"] = InsertionAccounting(
            candidate_points=report.candidate_count,
            unstable_points=report.unstable_count,
            untranslatable_points=ctx.require("untranslatable"),
            usable_points=len(patches),
        )
        # "CP then sorts the remaining generated patches by size and attempts
        # to validate the patches in that order."
        patches.sort(key=lambda patch: patch.translated_size)
        ctx.state["patches"] = tuple(patches)


class ValidationStage(Stage):
    """§3.4: accept the first patch in size order that validates."""

    name = "validation"
    requires = ("excised", "patches", "accounting", "recipient_program")
    provides = ("transferred",)

    def run(self, ctx: TransferContext) -> None:
        excised = ctx.require("excised")
        accounting = ctx.require("accounting")
        recipient_program = ctx.require("recipient_program")
        patches = ctx.require("patches")

        overflow_expr = None
        if patches and ctx.target.error_kind is ErrorKind.INTEGER_OVERFLOW:
            overflow_expr = _allocation_expression(
                recipient_program, ctx.format_spec, ctx.seed, ctx.target, ctx.options
            )

        transferred = None
        for patch in patches:
            point = patch.insertion_point
            try:
                patched = apply_patch(
                    ctx.current_source, patch.source_patch(), recipient_program.name
                )
            except PatchError as exc:
                ctx.events.emit(
                    CandidateRejected(
                        kind="patch",
                        function=point.function,
                        line=point.line,
                        reason=f"patch does not apply: {exc}",
                    )
                )
                continue
            validation = validate_patch(
                recipient_program,
                patched,
                ctx.format_spec,
                ctx.seed,
                ctx.current_error,
                regression_corpus=ctx.regression,
                target_function=ctx.target.site_function,
                options=ctx.options.validation,
                donor_guard=excised.guard,
                overflow_size_expr=overflow_expr,
                checker=ctx.checker,
            )
            if validation.ok:
                transferred = TransferredCheck(
                    donor=excised.donor,
                    patch=patch,
                    excised=excised,
                    accounting=accounting,
                    validation=validation,
                    patched_source=patched.source,
                )
                ctx.events.emit(
                    PatchValidated(
                        donor=excised.donor,
                        function=point.function,
                        line=point.line,
                        excised_size=patch.excised_size,
                        translated_size=patch.translated_size,
                        round_index=ctx.round_index,
                    )
                )
                break
            ctx.events.emit(
                CandidateRejected(
                    kind="patch",
                    function=point.function,
                    line=point.line,
                    reason=validation.failure_reason,
                )
            )
        ctx.state["transferred"] = transferred


def _allocation_expression(
    recipient_program: Program,
    format_spec: FormatSpec,
    seed: bytes,
    target: ErrorTarget,
    options: CodePhageOptions,
):
    """The symbolic allocation-size expression at the target site (seed run)."""
    result = run_instrumented(recipient_program, format_spec, seed, options.simplify_options)
    for record in result.allocations:
        if record.function == target.site_function and record.symbolic is not None:
            return record.symbolic
    return None


# -- search policies -------------------------------------------------------------------


class SearchPolicy:
    """How the engine explores the candidate-check and donor search spaces.

    ``select_check`` drives the candidate-check loop of one recursive round;
    ``choose_outcome`` picks the final result among the per-donor outcomes
    of ``repair``; ``stop_on_first_donor`` short-circuits the donor loop.
    """

    name: str = ""
    stop_on_first_donor: bool = True

    def select_check(
        self, engine: "TransferEngine", ctx: TransferContext
    ) -> Optional[TransferredCheck]:
        raise NotImplementedError

    def choose_outcome(
        self, outcomes: Sequence[TransferOutcome]
    ) -> Optional[TransferOutcome]:
        for outcome in outcomes:
            if outcome.success:
                return outcome
        return outcomes[-1] if outcomes else None


class FirstValidatedPolicy(SearchPolicy):
    """The paper's behaviour: accept the first candidate check that validates."""

    name = "first-validated"

    def select_check(self, engine, ctx):
        for candidate in ctx.require("candidates"):
            transferred = engine.attempt_candidate(ctx, candidate)
            if transferred is not None:
                return transferred
            ctx.events.emit(
                CandidateRejected(
                    kind="check",
                    function=candidate.function,
                    line=candidate.line,
                    reason="no patch for this check validated",
                )
            )
        return None


class SmallestPatchPolicy(SearchPolicy):
    """Exhaust every candidate check and keep the smallest validated patch."""

    name = "smallest-patch"

    def select_check(self, engine, ctx):
        validated: list[TransferredCheck] = []
        for candidate in ctx.require("candidates"):
            transferred = engine.attempt_candidate(ctx, candidate)
            if transferred is None:
                ctx.events.emit(
                    CandidateRejected(
                        kind="check",
                        function=candidate.function,
                        line=candidate.line,
                        reason="no patch for this check validated",
                    )
                )
                continue
            validated.append(transferred)
        if not validated:
            return None
        best = min(validated, key=lambda check: check.patch.translated_size)
        # Keep the event stream consistent with the outcome: every validated
        # check announced a PatchValidated, but only one survives.
        for check in validated:
            if check is best:
                continue
            point = check.patch.insertion_point
            ctx.events.emit(
                CandidateRejected(
                    kind="check",
                    function=point.function,
                    line=point.line,
                    reason="validated, but superseded by a smaller patch",
                )
            )
        return best


class AllDonorsPolicy(FirstValidatedPolicy):
    """Try every donor and keep the success with the smallest total patch.

    Within each donor the candidate search is first-validated; across donors
    the repair does not stop at the first success, and ties go to the donor
    tried first.
    """

    name = "all-donors"
    stop_on_first_donor = False

    def choose_outcome(self, outcomes):
        successes = [outcome for outcome in outcomes if outcome.success]
        if not successes:
            return outcomes[-1] if outcomes else None
        return min(
            successes,
            key=lambda outcome: sum(
                check.patch.translated_size for check in outcome.checks
            ),
        )


#: Registry of the built-in search policies, keyed by their public names.
POLICIES: dict[str, type[SearchPolicy]] = {
    policy.name: policy
    for policy in (FirstValidatedPolicy, SmallestPatchPolicy, AllDonorsPolicy)
}


def get_policy(policy: Union[str, SearchPolicy, None]) -> SearchPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, SearchPolicy):
        return policy
    name = policy or "first-validated"
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown search policy {name!r}; expected one of {sorted(POLICIES)}"
        ) from None


# -- the engine ------------------------------------------------------------------------


@dataclass
class RepairResult:
    """One ``repair``: the chosen outcome plus every per-donor attempt."""

    outcome: TransferOutcome
    attempts: tuple[TransferOutcome, ...] = ()


class TransferEngine:
    """Drives the stage graph: rounds x candidate checks x points x donors."""

    #: The per-candidate sub-graph, in Figure 4 order.
    CANDIDATE_STAGES: tuple[Stage, ...] = (
        ExcisionStage(),
        InsertionStage(),
        RewriteStage(),
        PatchGenerationStage(),
        ValidationStage(),
    )
    #: Keys cleared between candidate attempts: the candidate itself plus
    #: everything the sub-graph provides (derived, so a new stage's outputs
    #: can never leak into the next candidate's contract checks).
    _CANDIDATE_KEYS = ("candidate",) + tuple(
        key for stage in CANDIDATE_STAGES for key in stage.provides
    )

    def __init__(
        self,
        options: Optional[CodePhageOptions] = None,
        checker: Optional[EquivalenceChecker] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self.options = options or CodePhageOptions()
        self.checker = checker or EquivalenceChecker(
            options=self.options.equivalence_options,
            simplify_options=self.options.simplify_options,
        )
        self.events = events or EventBus()
        self.discovery_stage = CheckDiscoveryStage()
        self.donor_stage = DonorSelectionStage()

    # -- stage driver ------------------------------------------------------------------

    def run_stage(self, stage: Stage, ctx: TransferContext, detail: str = "") -> None:
        """Run one stage under its contract, bracketed by timing events."""
        for key in stage.requires:
            if key not in ctx.state:
                raise ContractError(
                    f"stage {stage.name!r} requires {key!r}, which no earlier "
                    "stage provided"
                )
        self.events.emit(
            StageStarted(stage=stage.name, round_index=ctx.round_index, detail=detail)
        )
        started = time.perf_counter()
        stage.run(ctx)
        elapsed = time.perf_counter() - started
        self.events.emit(
            StageFinished(
                stage=stage.name,
                elapsed_s=elapsed,
                round_index=ctx.round_index,
                detail=detail,
            )
        )
        for key in stage.provides:
            if key not in ctx.state:
                raise ContractError(f"stage {stage.name!r} did not provide {key!r}")

    def attempt_candidate(self, ctx: TransferContext, candidate) -> Optional[TransferredCheck]:
        """Run the per-candidate sub-graph for one candidate check."""
        for key in self._CANDIDATE_KEYS:
            ctx.state.pop(key, None)
        ctx.state["candidate"] = candidate
        detail = f"{candidate.function}:{candidate.line}"
        for stage in self.CANDIDATE_STAGES:
            self.run_stage(stage, ctx, detail=detail)
        return ctx.state["transferred"]

    # -- transfer (one donor) ----------------------------------------------------------

    def transfer(
        self,
        recipient: Application,
        target: ErrorTarget,
        donor: Application,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
        policy: Union[str, SearchPolicy, None] = None,
        probe_inputs: Sequence[bytes] = (),
    ) -> TransferOutcome:
        """Transfer a check from ``donor`` to eliminate ``target`` in ``recipient``.

        ``probe_inputs`` are additional known error triggers (multi-defect
        recipients declare one per defect); after every validated patch each
        probe is re-run against the patched program and any still-crashing
        probe becomes a residual error driving another recursive round, in
        declaration order, ahead of DIODE rescan findings.
        """
        policy = get_policy(policy or self.options.search_policy)
        start = time.perf_counter()
        format_spec = get_format(format_name or recipient.formats[0])
        metrics = TransferMetrics(
            recipient=recipient.full_name, target=target.target_id, donor=donor.full_name
        )
        outcome = TransferOutcome(
            success=False,
            recipient=recipient.full_name,
            target=target.target_id,
            donor=donor.full_name,
            metrics=metrics,
        )
        ctx = TransferContext(
            recipient=recipient,
            target=target,
            seed=seed,
            error_input=error_input,
            format_spec=format_spec,
            options=self.options,
            checker=self.checker,
            events=self.events,
            metrics=metrics,
            donor=donor,
            regression=InputGenerator(format_spec).regression_corpus(
                self.options.regression_inputs
            ),
            current_source=recipient.source,
            current_error=error_input,
        )

        stats = self.checker.statistics
        base_queries = stats.queries
        base_cache_hits = stats.cache_hits
        base_persistent_hits = stats.persistent_cache_hits
        base_expensive = stats.solver_invocations
        base_batch_hits = self.checker.query_batch.hits
        base_backends = self.checker.backend_statistics()

        timer = self.events.subscribe(StageTimingObserver())
        try:
            for round_index in range(self.options.max_recursive_patches):
                if ctx.current_error is None:
                    break
                ctx.round_index = round_index
                transferred = self._run_round(ctx, policy)
                if transferred is None:
                    if round_index == 0:
                        outcome.failure_reason = "no validated patch found"
                        return outcome
                    break
                outcome.checks.append(transferred)
                metrics.used_checks += 1
                metrics.insertion_accounting.append(transferred.accounting)
                metrics.check_sizes.append(
                    (transferred.patch.excised_size, transferred.patch.translated_size)
                )
                ctx.current_source = transferred.patched_source

                # Residual errors drive recursion: declared probe inputs that
                # still crash the patched program (in declaration order) come
                # first, then anything the DIODE rescan discovered.
                probe_failures = self._probe_residuals(ctx, probe_inputs)
                residual = transferred.validation.residual_findings
                if probe_failures or residual:
                    ordered = [data for data, _ in probe_failures]
                    kinds = [kind.value for _, kind in probe_failures]
                    for finding in residual:
                        ordered.append(finding.error_input)
                        if finding.result.error is not None:
                            kinds.append(finding.result.error.kind.value)
                    self.events.emit(
                        ResidualErrorFound(
                            count=len(ordered),
                            round_index=round_index,
                            kinds=tuple(dict.fromkeys(kinds)),
                        )
                    )
                    ctx.current_error = ordered[0]
                else:
                    ctx.current_error = None

            outcome.success = bool(outcome.checks) and ctx.current_error is None
            if not outcome.success and not outcome.failure_reason:
                outcome.failure_reason = "residual errors remain after recursive patching"
            return outcome
        finally:
            self.events.unsubscribe(timer)
            metrics.stage_timings = dict(timer.totals)
            metrics.generation_time_s = time.perf_counter() - start
            metrics.solver_queries = stats.queries - base_queries
            metrics.solver_cache_hits = stats.cache_hits - base_cache_hits
            metrics.solver_persistent_hits = (
                stats.persistent_cache_hits - base_persistent_hits
            )
            metrics.solver_expensive_queries = stats.solver_invocations - base_expensive
            metrics.solver_batch_hits = self.checker.query_batch.hits - base_batch_hits
            metrics.solver_backend_stats = diff_snapshots(
                base_backends, self.checker.backend_statistics()
            )

    def _run_round(
        self, ctx: TransferContext, policy: SearchPolicy
    ) -> Optional[TransferredCheck]:
        """One recursive round: discovery, then the policy's candidate search."""
        ctx.state.clear()
        ctx.state["recipient_program"] = compile_program(
            ctx.current_source, name=ctx.recipient.full_name
        )
        self.run_stage(self.discovery_stage, ctx, detail=ctx.donor.full_name)
        return policy.select_check(self, ctx)

    def _probe_residuals(
        self, ctx: TransferContext, probe_inputs: Sequence[bytes]
    ) -> list[tuple[bytes, ErrorKind]]:
        """Probe inputs that still crash ``ctx.current_source``, with their kinds.

        The just-repaired error input is among the probes by construction and
        drops out here (it no longer crashes), so the surviving list is exactly
        the recipient's *remaining* defects in declaration order.
        """
        failures: list[tuple[bytes, ErrorKind]] = []
        if not probe_inputs:
            return failures
        program = compile_program(ctx.current_source, name=ctx.recipient.full_name)
        for data in probe_inputs:
            vm = VM(program, config=VMConfig(track_symbolic=False))
            result = vm.run(data, field_map=ctx.format_spec.field_map(data))
            if result.error is not None:
                failures.append((data, result.error.kind))
        return failures

    # -- repair (donor loop) -----------------------------------------------------------

    def repair(
        self,
        recipient: Application,
        target: ErrorTarget,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
        donors: Optional[Sequence[Application]] = None,
        policy: Union[str, SearchPolicy, None] = None,
        probe_inputs: Sequence[bytes] = (),
    ) -> RepairResult:
        """Full pipeline including donor selection, driven by the policy."""
        policy = get_policy(policy or self.options.search_policy)
        format_spec = get_format(format_name or recipient.formats[0])
        repair_metrics = TransferMetrics(
            recipient=recipient.full_name, target=target.target_id, donor="<none>"
        )
        selection_timer = StageTimingObserver()
        if donors is None:
            ctx = TransferContext(
                recipient=recipient,
                target=target,
                seed=seed,
                error_input=error_input,
                format_spec=format_spec,
                options=self.options,
                checker=self.checker,
                events=self.events,
                metrics=repair_metrics,
            )
            self.events.subscribe(selection_timer)
            try:
                self.run_stage(self.donor_stage, ctx)
            finally:
                self.events.unsubscribe(selection_timer)
            donors = ctx.state["donor_pool"]

        donors = list(donors)
        outcomes: list[TransferOutcome] = []
        for index, donor in enumerate(donors):
            self.events.emit(
                DonorAttempted(donor=donor.full_name, index=index, total=len(donors))
            )
            outcome = self.transfer(
                recipient,
                target,
                donor,
                seed,
                error_input,
                format_spec.name,
                policy=policy,
                probe_inputs=probe_inputs,
            )
            outcomes.append(outcome)
            if outcome.success and policy.stop_on_first_donor:
                break

        chosen = policy.choose_outcome(outcomes)
        if chosen is None:
            # No donor at all: report the attempt with fully populated metrics
            # (recipient/target/selection timing) so reporting never emits a
            # blank row.
            repair_metrics.stage_timings = dict(selection_timer.totals)
            chosen = TransferOutcome(
                success=False,
                recipient=recipient.full_name,
                target=target.target_id,
                donor="<none>",
                metrics=repair_metrics,
                failure_reason="no viable donor found",
            )
        else:
            for stage_name, elapsed in selection_timer.totals.items():
                chosen.metrics.stage_timings[stage_name] = (
                    chosen.metrics.stage_timings.get(stage_name, 0.0) + elapsed
                )
        return RepairResult(outcome=chosen, attempts=tuple(outcomes))
