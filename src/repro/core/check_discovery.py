"""Candidate check discovery (§3.2).

CP runs the instrumented donor twice — on the seed input and on the
error-triggering input — and compares the executed conditional branches.
Branches whose conditions depend on the *relevant* input fields (the fields
that differ between the two inputs) and that take different directions in the
two runs are the candidate checks, considered in execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..formats.fields import FormatSpec
from ..lang.checker import Program
from ..lang.trace import BranchRecord, RunResult
from ..lang.vm import VM, VMConfig
from ..symbolic.expr import Expr
from ..symbolic.simplify import SimplifyOptions


@dataclass(frozen=True)
class CandidateCheck:
    """A flipped branch in the donor: a potential check to transfer."""

    branch_id: int
    function: str
    line: int
    condition: Expr                 # symbolic condition (application independent)
    error_direction: bool           # direction the error-triggering input takes
    seed_direction: bool
    sequence: int                   # execution order of the first divergence
    fields: frozenset[str]

    @property
    def guard(self) -> Expr:
        """The condition under which an input should be *rejected*.

        If the error-triggering input takes the true direction, the guard is
        the condition itself; otherwise its negation (the transferred patch
        fires exactly when the input behaves like the error-triggering one).
        """
        from ..symbolic import builder

        return self.condition if self.error_direction else builder.logical_not(self.condition)


@dataclass
class DiscoveryResult:
    """Outcome of candidate check discovery for one donor / error pair."""

    relevant_fields: frozenset[str]
    relevant_branches: int
    candidates: list[CandidateCheck] = field(default_factory=list)
    seed_run: Optional[RunResult] = None
    error_run: Optional[RunResult] = None

    @property
    def flipped_branches(self) -> int:
        return len(self.candidates)


def relevant_fields(format_spec: FormatSpec, seed: bytes, error_input: bytes) -> frozenset[str]:
    """The input fields that differ between the seed and error-triggering inputs.

    "In our experiments, CP identifies the relevant bytes as those input fields
    that differ between the seed and error-triggering inputs." (§3.2)
    """
    field_map = format_spec.field_map(seed)
    return frozenset(field_map.differing_fields(seed, error_input))


def run_instrumented(
    program: Program,
    format_spec: FormatSpec,
    data: bytes,
    simplify_options: Optional[SimplifyOptions] = None,
) -> RunResult:
    """One instrumented (taint + symbolic) execution."""
    config = VMConfig(track_symbolic=True)
    if simplify_options is not None:
        config.simplify_options = simplify_options
    vm = VM(program, config=config)
    return vm.run(data, field_map=format_spec.field_map(data))


def discover_candidate_checks(
    donor_program: Program,
    format_spec: FormatSpec,
    seed: bytes,
    error_input: bytes,
    relevant: Optional[frozenset[str]] = None,
    simplify_options: Optional[SimplifyOptions] = None,
) -> DiscoveryResult:
    """Compare donor executions on the seed and error inputs (Figure 4 stages 2-3)."""
    if relevant is None:
        relevant = relevant_fields(format_spec, seed, error_input)

    seed_run = run_instrumented(donor_program, format_spec, seed, simplify_options)
    error_run = run_instrumented(donor_program, format_spec, error_input, simplify_options)

    seed_by_site = _group_by_site(seed_run.branches)
    error_by_site = _group_by_site(error_run.branches)

    relevant_sites = set()
    for site, records in {**seed_by_site, **error_by_site}.items():
        sample = seed_by_site.get(site, []) + error_by_site.get(site, [])
        if any(record.fields() & relevant for record in sample):
            relevant_sites.add(site)

    candidates: list[CandidateCheck] = []
    for site in relevant_sites:
        seed_records = seed_by_site.get(site)
        error_records = error_by_site.get(site)
        if not seed_records or not error_records:
            continue  # only branches executed in both runs can flip
        divergence = _first_divergence(seed_records, error_records)
        if divergence is None:
            continue
        seed_record, error_record = divergence
        condition = error_record.symbolic if error_record.symbolic is not None else seed_record.symbolic
        if condition is None:
            continue
        candidates.append(
            CandidateCheck(
                branch_id=site,
                function=error_record.function,
                line=error_record.line,
                condition=condition,
                error_direction=error_record.taken,
                seed_direction=seed_record.taken,
                sequence=error_record.sequence,
                fields=condition.fields(),
            )
        )

    # "Starting with the first (in the program execution order) candidate
    # branch, CP attempts to transfer each check in turn."
    candidates.sort(key=lambda candidate: candidate.sequence)

    return DiscoveryResult(
        relevant_fields=relevant,
        relevant_branches=len(relevant_sites),
        candidates=candidates,
        seed_run=seed_run,
        error_run=error_run,
    )


def _group_by_site(records: list[BranchRecord]) -> dict[int, list[BranchRecord]]:
    grouped: dict[int, list[BranchRecord]] = {}
    for record in records:
        grouped.setdefault(record.branch_id, []).append(record)
    return grouped


def _first_divergence(
    seed_records: list[BranchRecord], error_records: list[BranchRecord]
) -> Optional[tuple[BranchRecord, BranchRecord]]:
    """The first execution at which the two runs take different directions."""
    for seed_record, error_record in zip(seed_records, error_records):
        if seed_record.taken != error_record.taken:
            return seed_record, error_record
    # One run executed the site more often; a direction "appears" at the first
    # extra execution only if the branch also flips there — treat unequal
    # lengths without a direction change as not flipped.
    return None
