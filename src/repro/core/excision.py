"""Check excision (§3.2's "Check Excision" stage).

Excision turns a candidate donor check into its application-independent form:
a symbolic expression over named input fields capturing every computation the
donor performed to produce the branch condition — endianness conversions,
casts, shifts, masks, and all.  In this reproduction the instrumented VM
already reconstructs that expression during execution; excision re-runs the
donor on the error-triggering input with the requested simplification options
(the rewrite-rule ablation disables the Figure 5 rules here) and extracts the
condition of the chosen branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..formats.fields import FormatSpec
from ..lang.checker import Program
from ..symbolic import builder, metrics
from ..symbolic.expr import Expr
from ..symbolic.simplify import SimplifyOptions
from .check_discovery import CandidateCheck, run_instrumented


@dataclass(frozen=True)
class ExcisedCheck:
    """The application-independent form of a donor check."""

    candidate: CandidateCheck
    condition: Expr       # the branch condition over input fields
    guard: Expr           # condition under which the input must be rejected
    donor: str = ""

    @property
    def fields(self) -> frozenset[str]:
        return self.condition.fields()

    @property
    def operation_count(self) -> int:
        return metrics.operation_count(self.condition)


def excise_check(
    donor_program: Program,
    format_spec: FormatSpec,
    error_input: bytes,
    candidate: CandidateCheck,
    simplify_options: Optional[SimplifyOptions] = None,
    donor_name: str = "",
) -> ExcisedCheck:
    """Re-execute the donor on the error-triggering input and excise the check.

    When ``simplify_options`` is None the condition recorded during candidate
    discovery is reused; otherwise the donor is re-run with those options so
    that the excised expression reflects them (used by the Figure 5 ablation).
    """
    condition = candidate.condition
    if simplify_options is not None:
        error_run = run_instrumented(donor_program, format_spec, error_input, simplify_options)
        for record in error_run.branches:
            if record.branch_id == candidate.branch_id and record.symbolic is not None:
                condition = record.symbolic
                break

    guard = condition if candidate.error_direction else builder.logical_not(condition)
    return ExcisedCheck(
        candidate=candidate, condition=condition, guard=guard, donor=donor_name
    )
