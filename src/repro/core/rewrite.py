"""Check translation: the Rewrite algorithm (paper Figure 7).

The excised check is an expression over *input fields*; the recipient stores
(possibly transformed copies of) those fields in its own variables and data
structures.  Rewrite walks the excised expression top-down: at each node it
first asks the SMT layer whether some recipient name always evaluates to the
same value (in which case the whole subtree collapses to that name — this is
what turns the paper's 57-operation excised CWebP check into a 4-operation
patch); otherwise it decomposes the node and rewrites the children.  Constants
translate directly.  The two failure modes of §3.3 (bits not available
contiguously, values overwritten before the insertion point) surface here as a
``None`` result for the affected subtree.

The rewritten expression reuses :class:`repro.symbolic.expr.InputField` leaves
whose *path* is a recipient expression (e.g. ``dinfo.output_width``); the
patch generator renders those leaves verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..solver.equivalence import EquivalenceChecker
from ..symbolic import builder
from ..symbolic.expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    Unary,
)
from .traversal import RecipientName


@dataclass
class RewriteStatistics:
    """Counters for the solver-optimisation ablation."""

    nodes_visited: int = 0
    solver_queries: int = 0
    name_matches: int = 0
    failures: int = 0


@dataclass
class RewriteResult:
    """A successfully translated expression plus bookkeeping."""

    expression: Expr
    matched_names: tuple[str, ...]
    statistics: RewriteStatistics


class Rewriter:
    """Implements Figure 7's ``Rewrite(E, Names)``."""

    def __init__(
        self,
        names: Sequence[RecipientName],
        checker: Optional[EquivalenceChecker] = None,
    ) -> None:
        self.names = list(names)
        self.checker = checker or EquivalenceChecker()
        self.statistics = RewriteStatistics()
        self._matched: list[str] = []

    # -- public API -----------------------------------------------------------------

    def rewrite(self, expression: Expr) -> Optional[RewriteResult]:
        """Rewrite ``expression`` into recipient names, or None on failure."""
        self._matched = []
        rewritten = self._rewrite(expression)
        if rewritten is None:
            return None
        return RewriteResult(
            expression=rewritten,
            matched_names=tuple(dict.fromkeys(self._matched)),
            statistics=self.statistics,
        )

    # -- recursion -------------------------------------------------------------------

    def _rewrite(self, expression: Expr) -> Optional[Expr]:
        self.statistics.nodes_visited += 1

        # Constants translate directly (Figure 7 line 20).
        if isinstance(expression, Constant):
            return expression

        # First try to find a single recipient value equivalent to the whole
        # subtree (Figure 7 lines 11-12).
        match = self._match_name(expression)
        if match is not None:
            return match

        # Otherwise decompose (Figure 7 lines 13-19, extended to the richer
        # node set of this reproduction's expression IR).
        if isinstance(expression, Unary):
            operand = self._rewrite(expression.operand)
            if operand is None:
                return self._fail()
            return Unary(width=expression.width, op=expression.op, operand=operand)

        if isinstance(expression, Binary):
            left = self._rewrite(expression.left)
            right = self._rewrite(expression.right)
            if left is None or right is None:
                return self._fail()
            return Binary(width=expression.width, op=expression.op, left=left, right=right)

        if isinstance(expression, Extend):
            operand = self._rewrite(expression.operand)
            if operand is None:
                return self._fail()
            return Extend(width=expression.width, operand=operand, signed=expression.signed)

        if isinstance(expression, Extract):
            operand = self._rewrite(expression.operand)
            if operand is None:
                return self._fail()
            return Extract(
                width=expression.width, operand=operand, hi=expression.hi, lo=expression.lo
            )

        if isinstance(expression, Concat):
            parts = []
            for part in expression.parts:
                rewritten = self._rewrite(part)
                if rewritten is None:
                    return self._fail()
                parts.append(rewritten)
            return Concat(width=expression.width, parts=tuple(parts))

        if isinstance(expression, Ite):
            cond = self._rewrite(expression.cond)
            then = self._rewrite(expression.then)
            otherwise = self._rewrite(expression.otherwise)
            if cond is None or then is None or otherwise is None:
                return self._fail()
            return Ite(width=expression.width, cond=cond, then=then, otherwise=otherwise)

        # An InputField leaf that did not match any recipient name: the value
        # is not available in the recipient at this point (failure mode 2).
        return self._fail()

    def _fail(self) -> None:
        self.statistics.failures += 1
        return None

    # -- name matching ------------------------------------------------------------------

    def _match_name(self, expression: Expr) -> Optional[Expr]:
        """Find a recipient name whose value always equals ``expression``.

        Widths may differ between the excised subtree and a recipient value
        (a 16-bit input field is typically held in a 32-bit recipient
        variable); the query then compares against the width-adapted name —
        which is exactly the cast the generated patch will contain.
        """
        if not expression.fields():
            # Pure-constant subtrees are better folded than matched to names.
            return None
        for name in self.names:
            adapted = self._adapt_name_expression(name, expression.width)
            if adapted is None:
                continue
            self.statistics.solver_queries += 1
            verdict = self.checker.equivalent(expression, adapted)
            if verdict.verdict.accepts:
                self.statistics.name_matches += 1
                self._matched.append(name.path)
                return self._leaf_for(name, expression.width)
        return None

    def _adapt_name_expression(self, name: RecipientName, width: int) -> Optional[Expr]:
        """The recipient value's defining expression adapted to ``width``."""
        expression = name.expression
        if width == name.width:
            return expression
        if width < name.width:
            return builder.shrink(expression, width)
        return builder.sext(expression, width) if name.signed else builder.zext(expression, width)

    def _leaf_for(self, name: RecipientName, width: int) -> Expr:
        """A leaf referencing the recipient path, adapted to the needed width."""
        leaf: Expr = InputField(width=name.width, path=name.path)
        if width > name.width:
            leaf = builder.sext(leaf, width) if name.signed else builder.zext(leaf, width)
        elif width < name.width:
            leaf = builder.shrink(leaf, width)
        return leaf
