"""Donor selection (§3.1, §4.1).

For each input format CP works with a database of applications that can read
that format.  Given the seed and error-triggering inputs, the applications
that process *both* without error are potential donors.  Following the paper's
methodology, donors that parse the input with the same underlying library (and
version) as an already-selected donor are filtered out, and the recipient
itself (same application, same version) is never its own donor — although a
*different version* of the recipient is allowed, which is exactly the
Wireshark multiversion scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..apps.registry import Application, donors_for_format
from ..formats.fields import FormatSpec
from ..formats.registry import get_format
from ..lang.vm import VM, VMConfig


@dataclass
class DonorCandidate:
    """One donor that survives both inputs."""

    application: Application
    seed_ok: bool
    error_ok: bool

    @property
    def viable(self) -> bool:
        return self.seed_ok and self.error_ok


@dataclass
class DonorSelection:
    """Result of donor selection for one error."""

    format_name: str
    candidates: list[DonorCandidate] = field(default_factory=list)

    @property
    def donors(self) -> list[Application]:
        return [candidate.application for candidate in self.candidates if candidate.viable]


def _processes(application: Application, format_spec: FormatSpec, data: bytes) -> bool:
    """Whether the application processes ``data`` without a detected error."""
    vm = VM(application.program(), config=VMConfig(track_symbolic=False))
    result = vm.run(data, field_map=format_spec.field_map(data))
    return result.ok


def select_donors(
    format_name: str,
    seed: bytes,
    error_input: bytes,
    recipient: Optional[Application] = None,
    applications: Optional[Iterable[Application]] = None,
    filter_same_library: bool = True,
) -> DonorSelection:
    """Select donor applications for an error in the given format."""
    format_spec = get_format(format_name)
    pool = list(applications) if applications is not None else donors_for_format(format_name)
    selection = DonorSelection(format_name=format_name)
    seen_libraries: set[str] = set()

    for application in pool:
        if recipient is not None and application.name == recipient.name:
            continue
        if not application.reads_format(format_name):
            continue
        if filter_same_library and application.library and application.library in seen_libraries:
            continue
        candidate = DonorCandidate(
            application=application,
            seed_ok=_processes(application, format_spec, seed),
            error_ok=_processes(application, format_spec, error_input),
        )
        selection.candidates.append(candidate)
        if candidate.viable and application.library:
            seen_libraries.add(application.library)

    return selection
