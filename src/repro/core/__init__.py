"""The Code Phage pipeline — the paper's primary contribution."""

from .check_discovery import (
    CandidateCheck,
    DiscoveryResult,
    discover_candidate_checks,
    relevant_fields,
    run_instrumented,
)
from .donor_selection import DonorCandidate, DonorSelection, select_donors
from .excision import ExcisedCheck, excise_check
from .insertion import InsertionPoint, InsertionReport, find_insertion_points
from .patch import GeneratedPatch, PatchStrategy, build_patch, render_microc
from .pipeline import (
    CodePhage,
    CodePhageOptions,
    InsertionAccounting,
    TransferMetrics,
    TransferOutcome,
    TransferredCheck,
)
from .reporting import ResultsDatabase, TransferRecord
from .rewrite import RewriteResult, RewriteStatistics, Rewriter
from .traversal import RecipientName, collect_names, names_at_statement, traverse_cell
from .validation import ValidationOptions, ValidationOutcome, validate_patch

__all__ = [
    "CandidateCheck",
    "CodePhage",
    "CodePhageOptions",
    "DiscoveryResult",
    "DonorCandidate",
    "DonorSelection",
    "ExcisedCheck",
    "GeneratedPatch",
    "InsertionAccounting",
    "InsertionPoint",
    "InsertionReport",
    "PatchStrategy",
    "RecipientName",
    "ResultsDatabase",
    "RewriteResult",
    "RewriteStatistics",
    "Rewriter",
    "TransferMetrics",
    "TransferOutcome",
    "TransferRecord",
    "TransferredCheck",
    "ValidationOptions",
    "ValidationOutcome",
    "build_patch",
    "collect_names",
    "discover_candidate_checks",
    "excise_check",
    "find_insertion_points",
    "names_at_statement",
    "relevant_fields",
    "render_microc",
    "run_instrumented",
    "select_donors",
    "traverse_cell",
    "validate_patch",
]
