"""The Code Phage pipeline — the paper's primary contribution."""

from .check_discovery import (
    CandidateCheck,
    DiscoveryResult,
    discover_candidate_checks,
    relevant_fields,
    run_instrumented,
)
from .donor_selection import DonorCandidate, DonorSelection, select_donors
from .events import (
    CandidateRejected,
    DonorAttempted,
    EventBus,
    EventLog,
    PatchValidated,
    PipelineEvent,
    ResidualErrorFound,
    StageFinished,
    StageStarted,
    StageTimingObserver,
)
from .excision import ExcisedCheck, excise_check
from .insertion import InsertionPoint, InsertionReport, find_insertion_points
from .patch import GeneratedPatch, PatchStrategy, build_patch, render_microc
from .pipeline import (
    CodePhage,
    CodePhageOptions,
    InsertionAccounting,
    TransferMetrics,
    TransferOutcome,
    TransferredCheck,
)
from .reporting import ResultsDatabase, TransferRecord
from .rewrite import RewriteResult, RewriteStatistics, Rewriter
from .stages import (
    POLICIES,
    ContractError,
    RepairResult,
    SearchPolicy,
    Stage,
    TransferContext,
    TransferEngine,
    get_policy,
)
from .traversal import RecipientName, collect_names, names_at_statement, traverse_cell
from .validation import ValidationOptions, ValidationOutcome, validate_patch

__all__ = [
    "CandidateCheck",
    "CandidateRejected",
    "CodePhage",
    "CodePhageOptions",
    "ContractError",
    "DiscoveryResult",
    "DonorAttempted",
    "DonorCandidate",
    "DonorSelection",
    "EventBus",
    "EventLog",
    "ExcisedCheck",
    "GeneratedPatch",
    "InsertionAccounting",
    "InsertionPoint",
    "InsertionReport",
    "POLICIES",
    "PatchStrategy",
    "PatchValidated",
    "PipelineEvent",
    "RecipientName",
    "RepairResult",
    "ResidualErrorFound",
    "ResultsDatabase",
    "RewriteResult",
    "RewriteStatistics",
    "Rewriter",
    "SearchPolicy",
    "Stage",
    "StageFinished",
    "StageStarted",
    "StageTimingObserver",
    "TransferContext",
    "TransferEngine",
    "TransferMetrics",
    "TransferOutcome",
    "TransferRecord",
    "TransferredCheck",
    "ValidationOptions",
    "ValidationOutcome",
    "get_policy",
    "build_patch",
    "collect_names",
    "discover_candidate_checks",
    "excise_check",
    "find_insertion_points",
    "names_at_statement",
    "relevant_fields",
    "render_microc",
    "run_instrumented",
    "select_donors",
    "traverse_cell",
    "validate_patch",
]
