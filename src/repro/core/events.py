"""The typed pipeline event stream (stage-graph observability).

Every stage execution and every notable pipeline decision is reported as a
:class:`PipelineEvent` on an :class:`EventBus`.  Stages never know who is
listening: the CLI renders live progress from the same stream the campaign
store persists per-stage timings from, and :class:`StageTimingObserver`
folds ``StageFinished`` events into the per-transfer
:attr:`~repro.core.pipeline.TransferMetrics.stage_timings` breakdown.

Observers are plain callables invoked synchronously, in subscription order,
on the engine's thread.  An observer that raises aborts the transfer — the
stream is part of the pipeline, not a best-effort side channel — so
observers should be cheap and total.

Event taxonomy
--------------

=======================  ========================================================
Event                    Emitted when
=======================  ========================================================
``StageStarted``         a stage begins (name, round, free-form detail)
``StageFinished``        a stage completes, with its wall-clock ``elapsed_s``
``DonorAttempted``       ``repair`` starts the stage graph against one donor
``CandidateRejected``    a check / insertion point / patch is dropped, with why
``PatchValidated``       validation accepts a patch (sizes and location)
``ResidualErrorFound``   the validation rescan found errors; another round runs
=======================  ========================================================
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Callable, Iterable, Optional, Sequence

Observer = Callable[["PipelineEvent"], None]


@dataclass(frozen=True)
class PipelineEvent:
    """Base class of everything the transfer engine emits."""


@dataclass(frozen=True)
class StageStarted(PipelineEvent):
    stage: str
    round_index: int = 0
    detail: str = ""


@dataclass(frozen=True)
class StageFinished(PipelineEvent):
    stage: str
    elapsed_s: float
    round_index: int = 0
    detail: str = ""


@dataclass(frozen=True)
class DonorAttempted(PipelineEvent):
    """``repair`` is about to run the full stage graph against one donor."""

    donor: str
    index: int
    total: int


@dataclass(frozen=True)
class CandidateRejected(PipelineEvent):
    """A candidate was dropped; ``kind`` says at which level of the search.

    ``kind`` is ``"check"`` (a candidate check yielded no validated patch),
    ``"insertion-point"`` (the check could not be translated into the names
    reachable at the point), or ``"patch"`` (the generated patch failed to
    apply or to validate).
    """

    kind: str
    function: str
    line: int
    reason: str


@dataclass(frozen=True)
class PatchValidated(PipelineEvent):
    donor: str
    function: str
    line: int
    excised_size: int
    translated_size: int
    round_index: int = 0


@dataclass(frozen=True)
class ResidualErrorFound(PipelineEvent):
    """The post-patch rescan found residual errors; a recursive round follows.

    ``kinds`` lists the error kinds still reproducible on the patched
    program, in repair order: probe-input failures first (the order the
    recipient's defects were declared in), then DIODE rescan findings.
    """

    count: int
    round_index: int
    kinds: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # JSON round-trips deliver lists; normalise so restored events
        # compare equal to the originals.
        if not isinstance(self.kinds, tuple):
            object.__setattr__(self, "kinds", tuple(self.kinds))


# -- serialization ---------------------------------------------------------------------
#
# Events cross process and disk boundaries: campaign workers ship their event
# stream back through the run store, evidence bundles embed it, and the trace
# exporter replays it.  The registry is *explicit* — a new event class must be
# added here, and ``tests/core/test_event_serialization.py`` fails if the
# registry and the set of PipelineEvent subclasses ever drift apart.

#: Every concrete event type, keyed by its serialized name.
EVENT_TYPES: dict[str, type["PipelineEvent"]] = {}


def _register_event_types() -> None:
    for cls in (
        StageStarted,
        StageFinished,
        DonorAttempted,
        CandidateRejected,
        PatchValidated,
        ResidualErrorFound,
    ):
        EVENT_TYPES[cls.__name__] = cls


_register_event_types()


def event_to_dict(event: "PipelineEvent") -> dict:
    """One event as a JSON-ready dict with an ``event`` type tag."""
    name = type(event).__name__
    if name not in EVENT_TYPES:
        raise ValueError(f"unregistered event type {name!r}; add it to EVENT_TYPES")
    return {"event": name, **asdict(event)}


def event_from_dict(payload: dict) -> "PipelineEvent":
    """Rebuild an event from :func:`event_to_dict` output.

    Unknown *fields* are dropped (a newer writer may have added one); an
    unknown *event type* raises — silently swallowing a whole event class
    would defeat the taxonomy-drift tests.
    """
    name = payload.get("event", "")
    try:
        cls = EVENT_TYPES[name]
    except KeyError:
        raise ValueError(f"unknown event type {name!r} in payload") from None
    known = {f.name for f in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in known})


def events_to_jsonl(events: Iterable["PipelineEvent"]) -> str:
    """The event stream as JSON Lines (one event per line, append-friendly)."""
    return "".join(
        json.dumps(event_to_dict(event), separators=(",", ":")) + "\n"
        for event in events
    )


def events_from_jsonl(text: str) -> list["PipelineEvent"]:
    """Parse :func:`events_to_jsonl` output (blank lines skipped)."""
    return [
        event_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def events_as_dicts(events: Sequence["PipelineEvent"]) -> list[dict]:
    """The event stream as a list of dicts (payload transport)."""
    return [event_to_dict(event) for event in events]


# -- SSE wire framing --------------------------------------------------------------------
#
# The repair service (:mod:`repro.service`) streams live events to HTTP
# clients as Server-Sent Events.  The framing lives here, next to the JSON
# serializers it wraps, so the wire format is covered by the same
# exhaustiveness tests that guard the registry: a new event type that
# round-trips through JSONL round-trips through SSE by construction.
#
# One event per frame::
#
#     id: 7
#     event: StageFinished
#     data: {"event":"StageFinished","stage":"excision",...}
#
# The ``event`` field carries the registry tag and the ``data`` JSON embeds
# the same tag, so a frame is self-describing even for SSE clients that only
# surface the data payload.


def event_to_sse(event: "PipelineEvent", event_id: Optional[int] = None) -> str:
    """One event as a complete SSE frame (terminated by a blank line)."""
    payload = event_to_dict(event)
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {payload['event']}")
    # Per the SSE spec a payload may span several data: lines (re-joined
    # with newlines on receipt); compact JSON never contains one, but the
    # parser below handles the general form, so stay symmetric.
    for chunk in json.dumps(payload, separators=(",", ":")).split("\n"):
        lines.append(f"data: {chunk}")
    return "\n".join(lines) + "\n\n"


def event_from_sse(frame: str) -> "PipelineEvent":
    """Rebuild an event from one :func:`event_to_sse` frame.

    Raises ``ValueError`` on frames without a data payload, on unknown event
    types, and on frames whose ``event`` field disagrees with the tag inside
    the data JSON — a disagreement means the frame was assembled by
    something other than :func:`event_to_sse` and must not be trusted.
    """
    name: Optional[str] = None
    data_chunks: list[str] = []
    for line in frame.split("\n"):
        if not line or line.startswith(":"):
            continue  # blank terminator / keep-alive comment
        field_name, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field_name == "event":
            name = value
        elif field_name == "data":
            data_chunks.append(value)
    if not data_chunks:
        raise ValueError("SSE frame has no data payload")
    payload = json.loads("\n".join(data_chunks))
    if name is not None and payload.get("event") != name:
        raise ValueError(
            f"SSE frame event field {name!r} disagrees with data tag "
            f"{payload.get('event')!r}"
        )
    return event_from_dict(payload)


def events_to_sse(events: Iterable["PipelineEvent"], start_id: int = 0) -> str:
    """A whole event stream as consecutive SSE frames with sequential ids."""
    return "".join(
        event_to_sse(event, event_id=start_id + index)
        for index, event in enumerate(events)
    )


def events_from_sse(text: str) -> list["PipelineEvent"]:
    """Parse every *pipeline-event* frame out of an SSE stream.

    Frames carrying non-pipeline event names (the service's ``status`` /
    ``end`` control frames, keep-alive comments) are skipped; a frame that
    *claims* a registered event type but fails to parse raises.
    """
    events = []
    for frame in text.split("\n\n"):
        if not frame.strip():
            continue
        name = None
        for line in frame.split("\n"):
            if line.startswith("event:"):
                name = line.partition(":")[2].strip()
                break
        if name in EVENT_TYPES:
            events.append(event_from_sse(frame))
    return events


class EventBus:
    """Synchronous fan-out of pipeline events to registered observers."""

    def __init__(self) -> None:
        self._observers: list[Observer] = []

    def subscribe(self, observer: Observer) -> Observer:
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Observer) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def emit(self, event: PipelineEvent) -> None:
        for observer in list(self._observers):
            observer(event)


class EventLog:
    """An observer that records every event (reports and tests)."""

    def __init__(self) -> None:
        self.events: list[PipelineEvent] = []

    def __call__(self, event: PipelineEvent) -> None:
        self.events.append(event)


class StageTimingObserver:
    """Accumulates ``StageFinished`` durations into per-stage totals.

    This is the *only* source of the ``TransferMetrics.stage_timings``
    breakdown: the engine subscribes one per transfer and copies its totals
    into the metrics when the transfer ends, so no stage ever reports its
    own timing.
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}

    def __call__(self, event: PipelineEvent) -> None:
        if isinstance(event, StageFinished):
            self.totals[event.stage] = self.totals.get(event.stage, 0.0) + event.elapsed_s
