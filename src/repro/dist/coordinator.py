"""The campaign coordinator: places jobs on a node ring, settles results.

The coordinator is the distributed counterpart of
:class:`~repro.campaign.scheduler.CampaignScheduler` and shares its
ground rules through :mod:`repro.campaign.execution`: attempt budgets
(``1 + retries`` per run), outbox payload transport with doorbell
queues, resume as skip-by-completed-id, and the invariant that exactly
one process — the coordinator — ever writes ``records.jsonl``.

Placement and stealing live in :class:`JobBoard`, a pure in-memory
structure (unit-testable without processes): every pending job is
queued under the ring owner of its content-addressed id, an idle node
claims from its own partition first and otherwise *steals* from the
most-loaded peer, and when a node dies its unclaimed jobs are re-rung
onto the surviving members.

Failure model
-------------

* A node process that **exits** (crash or kill) forfeits its current
  attempt — unless its outbox payload already landed, in which case the
  payload is the ground truth and the job completes.  The dead node is
  removed from the ring, its queued jobs are re-rung, and the campaign
  finishes on the surviving nodes; a node is only respawned when *no*
  live node remains (each death consumes an attempt, so this is
  bounded).  Completed jobs are never re-run and never duplicated: the
  attempt ledger plus the single-writer store make settlement
  idempotent.
* A node whose attempt exceeds ``timeout_s`` is terminated (nodes are
  long-lived, so the whole process must go) and replaced by a fresh
  node on the same cache partition.
* A full campaign restart resumes from the store exactly like the
  single-host scheduler: completed job ids are skipped up front.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..campaign.cache import sharded_cache_spec
from ..campaign.execution import (
    AttemptLedger,
    ClassAccountant,
    account_completed,
    account_skipped,
    discard_payload,
    payload_exists,
    read_payload,
    remove_outbox,
    reset_outbox,
)
from ..campaign.plan import CampaignPlan, JobSpec
from ..campaign.scheduler import CampaignReport, Runner, default_job_runner
from ..campaign.store import (
    STATUS_CRASHED,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    JobResult,
    RunStore,
)
from ..obs import metrics as obs_metrics
from ..obs.tracing import Tracer
from . import protocol
from .ring import HashRing
from .worker import node_main

#: Spans recorded by the coordinator (one per settled attempt, in the
#: category of the node that ran it) land here inside the store.
SPANS_FILE = "dist_spans.jsonl"


@dataclass
class DistOptions:
    """Control-plane knobs for a distributed campaign run."""

    nodes: int = 2
    retries: int = 1                    # extra attempts after crash/timeout/error
    timeout_s: Optional[float] = None   # per-attempt wall-clock limit
    poll_interval_s: float = 0.01
    start_method: Optional[str] = None  # default: fork when available
    use_persistent_cache: bool = True
    #: Cache shards; defaults to the node count so each node starts with
    #: exactly one local partition.  Fixed for the life of the store.
    cache_partitions: Optional[int] = None
    vnodes: int = 64
    wait_delay_s: float = 0.02          # backoff sent to nodes with nothing to claim


class JobBoard:
    """Ring-partitioned pending queues with work-stealing and re-ringing.

    Pure data structure — no processes, no I/O — so placement policy is
    testable in isolation.  Invariant: every pushed job sits in exactly
    one queue (or ``orphans`` while the ring is empty) until claimed.
    """

    def __init__(
        self, jobs, members, vnodes: int = 64
    ) -> None:
        self.ring = HashRing(members, vnodes=vnodes)
        self.queues: dict[str, deque] = {member: deque() for member in members}
        self.orphans: deque = deque()
        self.steals = 0
        self.steals_by_node: dict[str, int] = {}
        self.reassigned = 0
        for job in jobs:
            self.push(job)

    def push(self, job) -> None:
        """Queue a job under the ring owner of its id."""
        owner = self.ring.owner(job.job_id)
        if owner is None:
            self.orphans.append(job)
        else:
            self.queues[owner].append(job)

    def depth(self, member: str) -> int:
        queue = self.queues.get(member)
        return len(queue) if queue is not None else 0

    def pending(self) -> int:
        return sum(len(queue) for queue in self.queues.values()) + len(self.orphans)

    def claim(self, member: str):
        """Take the next job for ``member``: own partition first, then steal.

        Returns ``(job, stolen)``; ``(None, False)`` when nothing is
        claimable anywhere.  Steals come from the *most-loaded* peer
        (ties broken by name for determinism) — the straggler whose
        backlog most needs the help.
        """
        own = self.queues.get(member)
        if own:
            return own.popleft(), False
        if self.orphans:
            return self.orphans.popleft(), False
        victim = None
        for peer, queue in sorted(self.queues.items()):
            if peer == member or not queue:
                continue
            if victim is None or len(queue) > len(self.queues[victim]):
                victim = peer
        if victim is None:
            return None, False
        self.steals += 1
        self.steals_by_node[member] = self.steals_by_node.get(member, 0) + 1
        return self.queues[victim].popleft(), True

    def requeue(self, job) -> None:
        """Put a to-be-retried job back under its (current) ring owner."""
        self.push(job)

    def fail_node(self, member: str) -> int:
        """Remove a dead member; re-ring its unclaimed jobs.  Returns moved count."""
        self.ring.remove(member)
        stranded = list(self.queues.pop(member, ()))
        for job in stranded:
            self.push(job)
        self.reassigned += len(stranded)
        return len(stranded)

    def add_node(self, member: str) -> None:
        """Admit a (replacement) member and re-home any orphaned jobs."""
        self.ring.add(member)
        self.queues.setdefault(member, deque())
        orphans = list(self.orphans)
        self.orphans.clear()
        for job in orphans:
            self.push(job)


@dataclass
class _Node:
    """Coordinator-side view of one node process."""

    node_id: str
    process: multiprocessing.Process
    inbox: object                       # per-node command queue
    partition: int                      # home cache partition (stable on respawn)
    job: Optional[JobSpec] = None       # current claimed job, if any
    attempt: int = 0
    started_at: float = 0.0
    stolen: bool = False
    jobs_completed: int = 0
    steals_received: int = 0
    busy_s: float = 0.0
    queue_depth_peak: int = 0
    cache_hops: int = 0

    @property
    def busy(self) -> bool:
        return self.job is not None


class DistributedCoordinator:
    """Runs a campaign plan over N emulated node processes."""

    def __init__(
        self,
        plan: CampaignPlan,
        store: RunStore,
        options: Optional[DistOptions] = None,
        runner: Runner = default_job_runner,
        job_class: Optional[object] = None,
    ) -> None:
        self.plan = plan
        self.store = store
        self.options = options or DistOptions()
        if self.options.nodes < 1:
            raise ValueError("a distributed campaign needs at least one node")
        self.runner = runner
        self._accountant = ClassAccountant(job_class)

    # -- cache placement -------------------------------------------------------------

    def _cache_spec(self, partition: int) -> Optional[str]:
        if not self.options.use_persistent_cache:
            return None
        partitions = self.options.cache_partitions or max(1, self.options.nodes)
        return sharded_cache_spec(
            self.store.directory / "cache_shards", partitions, partition
        )

    # -- main loop -------------------------------------------------------------------

    def run(
        self, on_result: Optional[Callable[[JobSpec, JobResult], None]] = None
    ) -> CampaignReport:
        """Run every pending job across the node fleet; returns this run's report."""
        start = time.perf_counter()
        options = self.options
        stored = self.store.results()
        completed_before = {
            job_id for job_id, result in stored.items() if result.completed
        }
        pending = [
            job for job in self.plan.jobs if job.job_id not in completed_before
        ]
        report = CampaignReport(
            plan_name=self.plan.name,
            total_jobs=len(self.plan.jobs),
            skipped=len(self.plan.jobs) - len(pending),
            cache_enabled=options.use_persistent_cache,
        )
        if report.skipped:
            account_skipped(report, self.plan, stored, self._accountant)

        outbox = reset_outbox(self.store)
        ledger = AttemptLedger(options.retries)
        tracer = Tracer()
        jobs_by_id = {job.job_id: job for job in pending}
        unsettled = set(jobs_by_id)

        method = options.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        ctx = multiprocessing.get_context(method)
        control: multiprocessing.Queue = ctx.Queue()

        node_ids = [f"node-{index}" for index in range(options.nodes)]
        board = JobBoard(pending, node_ids, vnodes=options.vnodes)
        nodes: dict[str, _Node] = {}
        dead: set[str] = set()
        counters = {"failures": 0, "timeout_kills": 0, "respawns": 0}
        generation = [0]

        def spawn(node_id: str, partition: int) -> _Node:
            inbox = ctx.Queue()
            process = ctx.Process(
                target=node_main,
                args=(
                    node_id,
                    self.runner,
                    self._cache_spec(partition),
                    inbox,
                    control,
                    str(outbox),
                ),
                daemon=True,
            )
            process.start()
            node = _Node(node_id, process, inbox, partition)
            nodes[node_id] = node
            return node

        for index, node_id in enumerate(node_ids):
            partitions = options.cache_partitions or max(1, options.nodes)
            spawn(node_id, index % partitions)

        def respawn(partition: int) -> None:
            """Admit a fresh replacement node on the given cache partition."""
            generation[0] += 1
            node_id = f"node-r{generation[0]}"
            spawn(node_id, partition)
            board.add_node(node_id)
            counters["respawns"] += 1

        def settle(node: _Node, result: JobResult, payload: Optional[dict]) -> None:
            """Record one attempt; retry, fail, or complete its job."""
            job = node.job
            assert job is not None
            elapsed = time.perf_counter() - node.started_at
            node.busy_s += elapsed
            tracer.record(
                f"job:{job.job_id}",
                category=f"node:{node.node_id}",
                duration_s=elapsed,
                attempt=result.attempt,
                stolen=node.stolen,
                status=result.status,
            )
            node.job = None
            node.stolen = False
            self.store.append(result)
            if result.completed:
                unsettled.discard(job.job_id)
                node.jobs_completed += 1
                account_completed(report, result)
                report.completed += 1
                self._accountant.account(
                    report, job, completed=True,
                    success=bool((result.record or {}).get("success")),
                )
                if payload:
                    events = payload.get("events") or []
                    if events:
                        self.store.write_events(job.job_id, events)
                    snapshot = payload.get("metrics")
                    if snapshot:
                        node.cache_hops += int(
                            (snapshot.get("counters") or {}).get("dist.cache_hops", 0)
                        )
                        obs_metrics.merge_snapshots(report.metrics, snapshot)
            elif not ledger.exhausted(job.job_id):
                board.requeue(job)
            else:
                unsettled.discard(job.job_id)
                report.failed.append(job.job_id)
                self._accountant.account(report, job, completed=False)
            if on_result is not None:
                on_result(job, result)

        def handle(message: dict) -> None:
            kind = message.get("kind")
            node_id = message.get("node_id", "")
            node = nodes.get(node_id)
            if node is None or node_id in dead:
                # A doorbell from a node already written off: drop it (and
                # any payload) rather than double-settling its job.
                if kind == protocol.KIND_RESULT:
                    job_id = message.get("job_id", "")
                    attempt = message.get("attempt")
                    if job_id and isinstance(attempt, int):
                        discard_payload(outbox, job_id, attempt)
                return
            if kind == protocol.KIND_WORK_REQUEST:
                if node.busy:
                    # The node re-asked, so it never received (or lost) our
                    # reply: re-send its current assignment.
                    node.inbox.put(
                        protocol.job_message(node.job.to_dict(), node.attempt)
                    )
                    return
                job, stolen = board.claim(node_id)
                if job is None:
                    node.inbox.put(protocol.wait_message(options.wait_delay_s))
                    return
                node.job = job
                node.attempt = ledger.begin(job.job_id)
                node.started_at = time.perf_counter()
                node.stolen = stolen
                if stolen:
                    node.steals_received += 1
                node.inbox.put(protocol.job_message(job.to_dict(), node.attempt))
                return
            if kind != protocol.KIND_RESULT:
                return
            job_id = message.get("job_id", "")
            attempt = message.get("attempt")
            if (
                node.job is None
                or node.job.job_id != job_id
                or attempt != node.attempt
            ):
                # Stale doorbell (e.g. from before a timeout write-off).
                if job_id and isinstance(attempt, int):
                    discard_payload(outbox, job_id, attempt)
                return
            if message.get("ok"):
                try:
                    payload = read_payload(outbox, job_id, attempt)
                except (OSError, json.JSONDecodeError) as exc:
                    settle(
                        node,
                        JobResult(
                            job_id=job_id,
                            status=STATUS_ERROR,
                            attempt=attempt,
                            error=f"result payload unreadable: {exc}",
                        ),
                        None,
                    )
                    return
                finally:
                    discard_payload(outbox, job_id, attempt)
                settle(
                    node,
                    JobResult(
                        job_id=job_id,
                        status=STATUS_DONE,
                        attempt=attempt,
                        elapsed_s=message.get("elapsed_s", 0.0)
                        or payload.get("elapsed_s", 0.0),
                        record=payload.get("record"),
                    ),
                    payload,
                )
            else:
                discard_payload(outbox, job_id, attempt)
                settle(
                    node,
                    JobResult(
                        job_id=job_id,
                        status=STATUS_ERROR,
                        attempt=attempt,
                        error=message.get("error", ""),
                    ),
                    None,
                )

        def drain() -> None:
            while True:
                try:
                    handle(control.get_nowait())
                except queue_module.Empty:
                    return

        def write_off(node: _Node, status: str, error: str) -> None:
            """A dead/killed node forfeits its current attempt (if any)."""
            if node.job is None:
                return
            # The outbox payload, not the doorbell, is the ground truth: a
            # node killed after publishing still completed its job.
            if payload_exists(outbox, node.job.job_id, node.attempt):
                try:
                    payload = read_payload(outbox, node.job.job_id, node.attempt)
                except (OSError, json.JSONDecodeError):
                    payload = None
                finally:
                    discard_payload(outbox, node.job.job_id, node.attempt)
                if payload is not None:
                    settle(
                        node,
                        JobResult(
                            job_id=node.job.job_id,
                            status=STATUS_DONE,
                            attempt=node.attempt,
                            elapsed_s=payload.get("elapsed_s", 0.0),
                            record=payload.get("record"),
                        ),
                        payload,
                    )
                    return
            settle(
                node,
                JobResult(
                    job_id=node.job.job_id,
                    status=status,
                    attempt=node.attempt,
                    error=error,
                ),
                None,
            )

        try:
            while unsettled:
                try:
                    handle(control.get(timeout=options.poll_interval_s))
                except queue_module.Empty:
                    pass
                drain()

                now = time.perf_counter()
                for node_id, node in list(nodes.items()):
                    if node_id in dead:
                        continue
                    node.queue_depth_peak = max(
                        node.queue_depth_peak, board.depth(node_id)
                    )
                    timed_out = (
                        options.timeout_s is not None
                        and node.busy
                        and now - node.started_at > options.timeout_s
                    )
                    if timed_out and node.process.is_alive():
                        # A doorbell may have arrived at the deadline.
                        drain()
                        if not node.busy:
                            continue
                        # Nodes are long-lived: killing the attempt kills the
                        # node, so replace it on the same cache partition.
                        node.process.terminate()
                        node.process.join(timeout=1)
                        dead.add(node_id)
                        board.fail_node(node_id)
                        counters["timeout_kills"] += 1
                        write_off(
                            node,
                            STATUS_TIMEOUT,
                            f"timed out after {options.timeout_s}s",
                        )
                        if unsettled:
                            respawn(node.partition)
                    elif not node.process.is_alive():
                        # Doorbells may still be queued from before the death.
                        drain()
                        if node_id in dead:
                            continue
                        dead.add(node_id)
                        moved = board.fail_node(node_id)
                        counters["failures"] += 1
                        write_off(
                            node,
                            STATUS_CRASHED,
                            f"node exited with code {node.process.exitcode}",
                        )
                        if moved:
                            obs_metrics.inc("dist.jobs_reassigned", moved)
                        # The campaign finishes on the survivors; only a
                        # fully-dead fleet forces a replacement (bounded:
                        # every death consumes at most one attempt).
                        if unsettled and all(
                            peer in dead for peer in nodes
                        ):
                            respawn(node.partition)
        finally:
            for node_id, node in nodes.items():
                if node_id in dead:
                    continue
                try:
                    node.inbox.put(protocol.shutdown_message())
                except (OSError, ValueError):
                    pass
            for node_id, node in nodes.items():
                node.process.join(timeout=2)
                if node.process.is_alive():
                    node.process.terminate()
                    node.process.join(timeout=1)
            control.close()
            remove_outbox(self.store)

        tracer.finish()
        tracer.write(self.store.directory / SPANS_FILE)

        report.elapsed_s = time.perf_counter() - start
        busy_total = sum(node.busy_s for node in nodes.values())
        capacity = options.nodes * report.elapsed_s
        utilization = busy_total / capacity if capacity > 0 else 0.0
        gauges = {
            "dist.nodes": options.nodes,
            "campaign.queue_depth_peak": max(
                (node.queue_depth_peak for node in nodes.values()), default=0
            ),
            "campaign.worker_utilization": round(min(utilization, 1.0), 4),
        }
        for node in nodes.values():
            prefix = f"dist.node.{node.node_id}"
            node_capacity = report.elapsed_s or 1.0
            gauges[f"{prefix}.queue_depth_peak"] = node.queue_depth_peak
            gauges[f"{prefix}.jobs_completed"] = node.jobs_completed
            gauges[f"{prefix}.steals_received"] = node.steals_received
            gauges[f"{prefix}.cache_hops"] = node.cache_hops
            gauges[f"{prefix}.utilization"] = round(
                min(node.busy_s / node_capacity, 1.0), 4
            )
        obs_metrics.merge_snapshots(
            report.metrics,
            {
                "counters": {
                    "dist.steals": board.steals,
                    "dist.jobs_reassigned": board.reassigned,
                    "dist.node_failures": counters["failures"],
                    "dist.timeout_kills": counters["timeout_kills"],
                },
                "gauges": gauges,
            },
        )
        return report
