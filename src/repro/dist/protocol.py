"""Coordinator <-> node wire messages.

Every message is a small plain dict (picklable, well under ``PIPE_BUF``)
so a node killed mid-send cannot leave a torn frame that poisons a
queue — the same doorbell discipline as the single-host scheduler.
Large result payloads never travel over a queue: nodes publish them to
the store's outbox via atomic rename (:mod:`repro.campaign.execution`)
and the doorbell only names the file.

Coordinator -> node (per-node inbox):

* ``JOB``      — one claimed job payload plus its attempt number.
* ``WAIT``     — nothing claimable right now; back off ``delay_s``.
* ``SHUTDOWN`` — drain and exit.

Node -> coordinator (shared control queue):

* ``WORK_REQUEST`` — the node is idle and wants a job.
* ``RESULT``       — doorbell for a finished attempt (payload in outbox).
"""

from __future__ import annotations

KIND_WORK_REQUEST = "work_request"
KIND_RESULT = "result"
KIND_JOB = "job"
KIND_WAIT = "wait"
KIND_SHUTDOWN = "shutdown"


def work_request(node_id: str) -> dict:
    return {"kind": KIND_WORK_REQUEST, "node_id": node_id}


def result_message(
    node_id: str,
    job_id: str,
    attempt: int,
    ok: bool,
    elapsed_s: float = 0.0,
    error: str = "",
) -> dict:
    message = {
        "kind": KIND_RESULT,
        "node_id": node_id,
        "job_id": job_id,
        "attempt": attempt,
        "ok": ok,
        "elapsed_s": elapsed_s,
    }
    if error:
        message["error"] = error[:300]
    return message


def job_message(payload: dict, attempt: int) -> dict:
    return {"kind": KIND_JOB, "payload": payload, "attempt": attempt}


def wait_message(delay_s: float) -> dict:
    return {"kind": KIND_WAIT, "delay_s": delay_s}


def shutdown_message() -> dict:
    return {"kind": KIND_SHUTDOWN}
