"""Worker-node process: a long-lived loop claiming jobs from the coordinator.

Unlike the single-host scheduler (one process per job attempt), a node
is a long-lived process: it keeps requesting work until told to shut
down, so per-node state — most importantly the locality overlay of its
sharded solver cache — is warm across every job the node executes.

The node is deliberately dumb: all placement, retry, steal, and failure
policy lives in the coordinator.  A node only (1) asks for work,
(2) runs the job through the injected runner, (3) publishes the payload
to the outbox via atomic rename, and (4) rings the result doorbell.
Runner exceptions are caught and reported as failed attempts — a node
survives a failing job; only the coordinator ever decides a node is
dead.
"""

from __future__ import annotations

import queue as queue_module
import time
from typing import Optional

from ..campaign.execution import write_payload
from . import protocol

#: A node waiting this long on an empty inbox assumes its doorbell or the
#: coordinator's reply was lost and re-requests work (self-healing; the
#: coordinator ignores duplicate requests from a busy node).
_INBOX_TIMEOUT_S = 60.0


def node_main(
    node_id: str,
    runner,
    cache_spec: Optional[str],
    inbox,
    control,
    outbox: str,
) -> None:
    """Entry point for one emulated node process.

    ``runner`` is the same picklable ``(payload, cache_path) -> result``
    callable the single-host scheduler uses; ``cache_spec`` is this
    node's sharded cache spec (``path::shards=P::local=k``) so the
    node's home shard matches its ring partition.
    """
    while True:
        control.put(protocol.work_request(node_id))
        try:
            message = inbox.get(timeout=_INBOX_TIMEOUT_S)
        except queue_module.Empty:
            continue  # lost doorbell or reply: ask again
        kind = message.get("kind")
        if kind == protocol.KIND_SHUTDOWN:
            return
        if kind == protocol.KIND_WAIT:
            time.sleep(message.get("delay_s", 0.01))
            continue
        if kind != protocol.KIND_JOB:
            continue
        payload = message["payload"]
        attempt = message["attempt"]
        job_id = payload.get("job_id", "")
        start = time.perf_counter()
        try:
            result = runner(payload, cache_spec)
            write_payload(outbox, job_id, attempt, result)
            control.put(
                protocol.result_message(
                    node_id,
                    job_id,
                    attempt,
                    ok=True,
                    elapsed_s=result.get("elapsed_s", time.perf_counter() - start),
                )
            )
        except Exception as exc:  # noqa: BLE001 - report, coordinator decides
            control.put(
                protocol.result_message(
                    node_id,
                    job_id,
                    attempt,
                    ok=False,
                    elapsed_s=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
