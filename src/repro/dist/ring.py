"""Consistent-hash ring for job and cache-key placement.

Both job ids (SHA-1 over the job's semantic fields, see
:class:`~repro.campaign.plan.JobSpec`) and solver-cache keys (digest
pairs, see :func:`~repro.campaign.cache.query_key`) are already
content-addressed, so placement is just consistent hashing: hash the
key onto a circle, walk clockwise to the first node point.  Each member
contributes ``vnodes`` points so load stays balanced and removing a
member only re-homes the keys it owned — the property the coordinator
relies on when it re-rings a dead node's unclaimed jobs.

Cache partitions use a *separate, fixed* ring over partition labels
(:func:`shard_of`): partitions never leave the ring, so a cache key's
home shard is stable across node failures and across runs.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Optional

__all__ = ["HashRing", "shard_of", "stable_hash"]


def stable_hash(value: str) -> int:
    """A process-independent 64-bit hash (first 8 bytes of SHA-1)."""
    return int.from_bytes(hashlib.sha1(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring with virtual nodes.

    ``owner(key)`` is deterministic for a given member set: the ring
    sorts ``vnodes`` points per member and binary-searches clockwise.
    Adding or removing one member re-homes only the keys on that
    member's arcs.
    """

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (hash, member)
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def members(self) -> list[str]:
        return sorted(self._members)

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for index in range(self.vnodes):
            self._points.append((stable_hash(f"{member}#{index}"), member))
        self._points.sort()

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [point for point in self._points if point[1] != member]

    def owner(self, key: str) -> Optional[str]:
        """The member owning ``key`` (first point clockwise), or ``None``."""
        if not self._points:
            return None
        index = bisect_right(self._points, (stable_hash(key), "￿"))
        if index == len(self._points):
            index = 0  # wrap past twelve o'clock
        return self._points[index][1]


#: Memoized fixed rings over partition labels, keyed by partition count.
_PARTITION_RINGS: dict[int, HashRing] = {}


def shard_of(key: str, partitions: int) -> int:
    """The home partition index for ``key`` among ``partitions`` shards.

    Uses a fixed ring over partition labels so the mapping is stable
    across processes, node failures, and runs — a cache line written by
    any node is found by every node.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    if partitions == 1:
        return 0
    ring = _PARTITION_RINGS.get(partitions)
    if ring is None:
        ring = HashRing((f"part-{index}" for index in range(partitions)), vnodes=64)
        _PARTITION_RINGS[partitions] = ring
    owner = ring.owner(key)
    assert owner is not None
    return int(owner.rsplit("-", 1)[1])
