"""Distributed campaign execution: coordinator/worker nodes over a hash ring.

N long-lived processes emulate cluster nodes.  Jobs are assigned by
consistent hashing of their content-addressed ids over a node ring
(:mod:`repro.dist.ring`), idle nodes steal work from the most-loaded
peer, and a single coordinator (:mod:`repro.dist.coordinator`) remains
the only writer of the run store.  The persistent solver verdict cache
becomes a partitioned key-space with one shard per ring partition and
locality-aware routing (see :mod:`repro.campaign.cache`).
"""

from .coordinator import DistOptions, DistributedCoordinator, JobBoard
from .ring import HashRing, shard_of, stable_hash

__all__ = [
    "DistOptions",
    "DistributedCoordinator",
    "HashRing",
    "JobBoard",
    "shard_of",
    "stable_hash",
]
