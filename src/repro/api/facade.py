"""The repair facade: ``RepairRequest`` in, ``RepairReport`` out.

This is the single entry point every driver routes through — the CLI
(``codephage transfer``), the experiment helpers (:mod:`repro.experiments`),
and the campaign workers (:func:`repro.experiments.execute_job`).  A
:class:`RepairSession` owns one configured stage-graph engine
(:class:`~repro.core.stages.TransferEngine`) and one shared
:class:`~repro.solver.equivalence.EquivalenceChecker`, so every request run
through the same session shares solver verdicts; batch drivers (all-donors
sweeps, campaign workers) construct one session and reuse it.

Thread-safety contract
----------------------

A :class:`RepairSession` is **not** thread-safe: ``run`` subscribes a
per-request :class:`~repro.core.events.EventLog` on the session's bus and
the solver checker mutates shared per-session state (learned clauses,
statistics), so two threads running requests through one session would
interleave event capture and corrupt solver accounting.  Concurrent
drivers — the :mod:`repro.service` daemon's worker threads — go through a
:class:`SessionPool` instead, which hands each thread exclusive use of one
warm session at a time while all pooled sessions still share the
process-wide compile cache, interned expression table, and (when
configured) one persistent solver-cache file, all of which *are*
thread-safe.
"""

from __future__ import annotations

import contextlib
import queue
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from ..apps import get_application
from ..apps.registry import Application, ErrorTarget
from ..core.events import EventBus, EventLog, Observer, PipelineEvent
from ..core.pipeline import CodePhageOptions, TransferMetrics, TransferOutcome
from ..core.stages import SearchPolicy, TransferEngine
from ..obs.metrics import MetricsEventObserver

ApplicationRef = Union[Application, str]


@dataclass
class RepairRequest:
    """One repair problem: a recipient error plus its seed and error inputs.

    ``recipient`` and ``donor``/``donors`` accept either registry names or
    :class:`Application` objects; ``target`` accepts a target id or an
    :class:`ErrorTarget`.  Pinning ``donor`` runs a single transfer; leaving
    it unset runs full donor selection (optionally restricted to
    ``donors``).  ``policy`` overrides the session's configured search
    policy for this request only.  ``probe_inputs`` lists additional known
    error triggers (one per defect for multi-defect recipients); any probe
    still crashing a patched program counts as a residual error and drives
    another recursive repair round.
    """

    recipient: ApplicationRef
    target: Union[ErrorTarget, str]
    seed: bytes
    error_input: bytes
    format_name: Optional[str] = None
    donor: Optional[ApplicationRef] = None
    donors: Optional[Sequence[ApplicationRef]] = None
    policy: Union[str, SearchPolicy, None] = None
    probe_inputs: Sequence[bytes] = ()

    @classmethod
    def for_case(
        cls,
        case,
        donor: Optional[ApplicationRef] = None,
        donors: Optional[Sequence[ApplicationRef]] = None,
        policy: Union[str, SearchPolicy, None] = None,
    ) -> "RepairRequest":
        """Build a request from any *case-like* object.

        ``case`` is duck-typed: anything with ``application()``, ``target()``,
        ``seed_input()``, ``error_input()``, and ``format_name`` — both the
        paper corpus (:class:`repro.experiments.ErrorCase`) and generated
        scenarios (:class:`repro.scenarios.ScenarioPair`) qualify, so every
        driver funnels through one construction path.  Cases may optionally
        expose ``probe_inputs()`` (multi-defect scenarios do) to declare one
        known trigger per defect.
        """
        probe_inputs: Sequence[bytes] = ()
        probes = getattr(case, "probe_inputs", None)
        if callable(probes):
            probe_inputs = tuple(probes())
        return cls(
            recipient=case.application(),
            target=case.target(),
            seed=case.seed_input(),
            error_input=case.error_input(),
            format_name=case.format_name,
            donor=donor,
            donors=donors,
            policy=policy,
            probe_inputs=probe_inputs,
        )


@dataclass
class RepairReport:
    """What one facade call produced: the outcome plus the event record."""

    outcome: TransferOutcome
    attempts: tuple[TransferOutcome, ...] = ()
    events: tuple[PipelineEvent, ...] = ()

    @property
    def success(self) -> bool:
        return self.outcome.success

    @property
    def patched_source(self) -> Optional[str]:
        return self.outcome.patched_source

    @property
    def metrics(self) -> TransferMetrics:
        return self.outcome.metrics


class RepairSession:
    """A configured pipeline: one options set, one shared solver checker.

    Observers passed at construction stay subscribed for the session's
    lifetime and see the events of every request; per-request event capture
    (for :attr:`RepairReport.events`) is handled internally.
    """

    def __init__(
        self,
        options: Optional[CodePhageOptions] = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        self.options = options or CodePhageOptions()
        self.events = EventBus()
        # Every session feeds the process-wide metrics registry; while the
        # registry is disabled (the default) the observer is a cheap no-op.
        self.events.subscribe(MetricsEventObserver())
        for observer in observers:
            self.events.subscribe(observer)
        self.engine = TransferEngine(options=self.options, events=self.events)
        self.checker = self.engine.checker

    def solver_statistics(self) -> dict:
        """The session's cumulative solver accounting.

        One dict with the query-level counters (queries, cache hits, batch
        dedupe) plus a ``backends`` sub-dict of per-backend counters — the
        same shape campaign reports aggregate.  Requests run through this
        session share one checker, so these numbers span every request.
        """
        stats = self.checker.statistics
        batch = self.checker.query_batch
        return {
            "queries": stats.queries,
            "satisfiability_queries": stats.satisfiability_queries,
            "cache_hits": stats.cache_hits,
            "persistent_cache_hits": stats.persistent_cache_hits,
            "batch_hits": batch.hits,
            "batch_dedupe_rate": round(batch.dedupe_rate, 4),
            "expensive_queries": stats.solver_invocations,
            "backends": self.checker.backend_statistics(),
        }

    # -- request API -------------------------------------------------------------------

    def run(self, request: RepairRequest) -> RepairReport:
        """Run one repair request through the stage graph."""
        if request.donor is not None and request.donors is not None:
            raise ValueError(
                "pass either donor (pin one transfer) or donors (restrict the "
                "repair pool), not both"
            )
        recipient = self._application(request.recipient)
        target = (
            request.target
            if isinstance(request.target, ErrorTarget)
            else recipient.target(request.target)
        )
        log = self.events.subscribe(EventLog())
        try:
            if request.donor is not None:
                outcome = self.engine.transfer(
                    recipient,
                    target,
                    self._application(request.donor),
                    request.seed,
                    request.error_input,
                    request.format_name,
                    policy=request.policy,
                    probe_inputs=request.probe_inputs,
                )
                attempts: tuple[TransferOutcome, ...] = (outcome,)
            else:
                donors = None
                if request.donors is not None:
                    donors = [self._application(donor) for donor in request.donors]
                result = self.engine.repair(
                    recipient,
                    target,
                    request.seed,
                    request.error_input,
                    request.format_name,
                    donors=donors,
                    policy=request.policy,
                    probe_inputs=request.probe_inputs,
                )
                outcome, attempts = result.outcome, result.attempts
        finally:
            self.events.unsubscribe(log)
        return RepairReport(outcome=outcome, attempts=attempts, events=tuple(log.events))

    def run_case(
        self,
        case,
        donor: Optional[ApplicationRef] = None,
        donors: Optional[Sequence[ApplicationRef]] = None,
        policy: Union[str, SearchPolicy, None] = None,
    ) -> RepairReport:
        """Run one case-like object (see :meth:`RepairRequest.for_case`)."""
        return self.run(RepairRequest.for_case(case, donor=donor, donors=donors, policy=policy))

    # -- legacy-shaped helpers (the CodePhage shim calls these) ------------------------

    def transfer(
        self,
        recipient: Application,
        target: ErrorTarget,
        donor: Application,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
    ) -> TransferOutcome:
        return self.engine.transfer(recipient, target, donor, seed, error_input, format_name)

    def repair(
        self,
        recipient: Application,
        target: ErrorTarget,
        seed: bytes,
        error_input: bytes,
        format_name: Optional[str] = None,
        donors: Optional[Sequence[Application]] = None,
    ) -> TransferOutcome:
        return self.engine.repair(
            recipient, target, seed, error_input, format_name, donors=donors
        ).outcome

    @staticmethod
    def _application(reference: ApplicationRef) -> Application:
        if isinstance(reference, Application):
            return reference
        return get_application(reference)


class SessionPool:
    """A fixed set of warm :class:`RepairSession`\\ s checked out one at a time.

    Sessions are built eagerly at construction (so the first request after
    daemon start pays no engine warm-up) and handed out through
    :meth:`checkout`, a context manager that blocks until a session is free
    and returns it to the pool on exit — including when the request raises.
    Exclusivity is the whole point: each session is single-threaded by
    contract (see the module docstring), so the pool is what makes the
    facade safe to drive from :class:`ThreadingHTTPServer` worker threads.

    All pooled sessions share one ``options`` object; callers whose request
    needs different options (per-request overrides) must build a dedicated
    session instead of checking one out.
    """

    def __init__(
        self,
        size: int,
        options: Optional[CodePhageOptions] = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.options = options or CodePhageOptions()
        self._idle: "queue.Queue[RepairSession]" = queue.Queue()
        self._sessions = tuple(
            RepairSession(options=self.options, observers=observers)
            for _ in range(size)
        )
        for session in self._sessions:
            self._idle.put(session)

    def idle_count(self) -> int:
        """How many sessions are currently checked in (approximate under load)."""
        return self._idle.qsize()

    @contextlib.contextmanager
    def checkout(self, timeout: Optional[float] = None) -> Iterator[RepairSession]:
        """Borrow one session exclusively; blocks until one is free.

        Raises :class:`queue.Empty` if ``timeout`` (seconds) elapses with no
        session available.  A session that raised inside the ``with`` body is
        still returned to the pool — the engine and checker are built to
        survive failed transfers, and recycling keeps the warm solver cache.
        """
        session = self._idle.get(timeout=timeout)
        try:
            yield session
        finally:
            self._idle.put(session)

    def solver_statistics(self) -> dict:
        """Pool-wide solver accounting: per-session counters summed.

        Gauge-like fields (``batch_dedupe_rate``) take the maximum instead.
        Reads the counters without checking sessions out, so numbers for a
        session mid-request may be slightly stale — fine for monitoring.
        """
        merged: dict = {}
        for session in self._sessions:
            stats = session.solver_statistics()
            backends = stats.pop("backends", {})
            for name, value in stats.items():
                if name == "batch_dedupe_rate":
                    merged[name] = max(merged.get(name, 0.0), value)
                else:
                    merged[name] = merged.get(name, 0) + value
            merged_backends = merged.setdefault("backends", {})
            for backend, counters in backends.items():
                slot = merged_backends.setdefault(backend, {})
                for name, value in counters.items():
                    slot[name] = slot.get(name, 0) + value
        return merged


def repair(
    request: RepairRequest,
    options: Optional[CodePhageOptions] = None,
    observers: Sequence[Observer] = (),
) -> RepairReport:
    """One-shot facade: build a session, run one request, return its report."""
    return RepairSession(options=options, observers=observers).run(request)
