"""``repro.api`` — the public repair surface.

One facade for every driver: build a :class:`RepairRequest`, run it through
:func:`repair` (one-shot) or a :class:`RepairSession` (batch, shared solver
cache), and read the :class:`RepairReport` — the
:class:`~repro.core.pipeline.TransferOutcome` plus the typed
:class:`~repro.core.events.PipelineEvent` stream that produced it.

The stage-graph machinery behind the facade (stages, contracts, search
policies, the engine) is re-exported here for extension: register an
observer for progress/metrics, pick a :class:`SearchPolicy` by name
(``"first-validated"``, ``"smallest-patch"``, ``"all-donors"``), or add a
new policy against :class:`TransferEngine`.

The legacy entry points (``repro.core.CodePhage.transfer``/``repair``) are
thin shims over this module and produce identical outcomes (enforced by
``tests/api/test_facade_parity.py``).
"""

from ..core.events import (
    CandidateRejected,
    DonorAttempted,
    EventBus,
    EventLog,
    Observer,
    PatchValidated,
    PipelineEvent,
    ResidualErrorFound,
    StageFinished,
    StageStarted,
    StageTimingObserver,
)
from ..core.pipeline import CodePhageOptions, TransferMetrics, TransferOutcome
from ..core.stages import (
    POLICIES,
    AllDonorsPolicy,
    ContractError,
    FirstValidatedPolicy,
    RepairResult,
    SearchPolicy,
    SmallestPatchPolicy,
    Stage,
    TransferContext,
    TransferEngine,
    get_policy,
)
from ..lang.vm import default_execution_tier, set_default_execution_tier
from .facade import RepairReport, RepairRequest, RepairSession, SessionPool, repair
from .progress import ProgressPrinter

__all__ = [
    "AllDonorsPolicy",
    "CandidateRejected",
    "CodePhageOptions",
    "ContractError",
    "DonorAttempted",
    "EventBus",
    "EventLog",
    "FirstValidatedPolicy",
    "Observer",
    "POLICIES",
    "PatchValidated",
    "PipelineEvent",
    "ProgressPrinter",
    "RepairReport",
    "RepairRequest",
    "RepairResult",
    "RepairSession",
    "ResidualErrorFound",
    "SearchPolicy",
    "SessionPool",
    "SmallestPatchPolicy",
    "Stage",
    "StageFinished",
    "StageStarted",
    "StageTimingObserver",
    "TransferContext",
    "TransferEngine",
    "TransferMetrics",
    "TransferOutcome",
    "default_execution_tier",
    "get_policy",
    "repair",
    "set_default_execution_tier",
]
