"""Render the pipeline event stream as live CLI progress lines.

:class:`ProgressPrinter` is an ordinary event observer (subscribe it to a
:class:`~repro.core.events.EventBus` or pass it to
:func:`repro.api.repair` via ``observers``); ``codephage transfer
--progress`` wires one to stderr.

When the process-wide metrics registry (:mod:`repro.obs.metrics`) is
enabled — ``codephage transfer --progress`` enables it — the printer also
surfaces a live snapshot line (donor attempts, solver queries, cache hit
rate, VM instructions) at each search decision.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from ..core.events import (
    CandidateRejected,
    DonorAttempted,
    PatchValidated,
    PipelineEvent,
    ResidualErrorFound,
    StageFinished,
)
from ..obs import metrics as obs_metrics


class ProgressPrinter:
    """Prints one line per stage completion / search decision."""

    def __init__(self, stream: Optional[TextIO] = None, verbose: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        #: Verbose mode also prints every rejected candidate.
        self.verbose = verbose

    def __call__(self, event: PipelineEvent) -> None:
        line = self._format(event)
        if line is not None:
            print(line, file=self.stream, flush=True)
        if isinstance(event, (DonorAttempted, PatchValidated, ResidualErrorFound)):
            snapshot = self.metrics_line()
            if snapshot is not None:
                print(snapshot, file=self.stream, flush=True)

    def metrics_line(self) -> Optional[str]:
        """A live registry snapshot line (None while metrics are disabled)."""
        registry = obs_metrics.REGISTRY
        if not registry.enabled:
            return None
        queries = registry.counter("solver.queries")
        hits = registry.counter("solver.cache_hits")
        rate = hits / queries if queries else 0.0
        return (
            f"    metrics: {int(registry.counter('pipeline.donor_attempts'))} donor "
            f"attempt(s), {int(queries)} solver queries ({rate:.0%} cache hits), "
            f"{int(registry.counter('vm.instructions_retired'))} VM instructions"
        )

    def _format(self, event: PipelineEvent) -> Optional[str]:
        if isinstance(event, DonorAttempted):
            return f"donor {event.donor} ({event.index + 1}/{event.total})"
        if isinstance(event, StageFinished):
            detail = f"  [{event.detail}]" if event.detail else ""
            return (
                f"  round {event.round_index}: {event.stage:16s} "
                f"{event.elapsed_s * 1000.0:8.1f} ms{detail}"
            )
        if isinstance(event, PatchValidated):
            return (
                f"  + validated patch at {event.function}:{event.line} "
                f"(check size {event.excised_size} -> {event.translated_size})"
            )
        if isinstance(event, ResidualErrorFound):
            return (
                f"  ! {event.count} residual error(s) after round "
                f"{event.round_index}; transferring another check"
            )
        if isinstance(event, CandidateRejected) and self.verbose:
            return (
                f"    - rejected {event.kind} at {event.function}:{event.line}: "
                f"{event.reason}"
            )
        return None
