"""Viewnior 1.4 (gdk-pixbuf based image viewer) — donor application.

Viewnior's gdk-pixbuf loaders detect overflow of the pixel-buffer size with a
division-based check::

    channels  = has_alpha ? 4 : 3;
    rowstride = width * channels;
    rowstride = (rowstride + 3) & ~3;      /* align rows to 32-bit boundaries */
    if (bytes / rowstride != height)       /* overflow */
        return NULL;

and, in the TIFF loader, an additional row-stride check
(``rowstride = width * 4; if (rowstride / 4 != width)``).  These checks are the
donors for the CWebP (§4.6.2), Dillo (§4.7.3), and Display (§4.8.1, §4.8.3)
errors; the paper's translated patches show the characteristic
``(x + 3) & 4294967292`` alignment mask.
"""

from __future__ import annotations

from .registry import Application, register_application

SOURCE = """
// Viewnior 1.4 / gdk-pixbuf loaders (MicroC re-implementation).

struct pixbuf_info {
    u32 width;
    u32 height;
    u32 channels;
    u32 rowstride;
};

int load_jpeg() {
    struct pixbuf_info pb;
    u8 hi;
    u8 lo;

    // Skip SOF0 marker, frame length, and precision (offsets 2..6).
    skip_bytes(5);
    hi = read_byte();
    lo = read_byte();
    pb.height = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    pb.width = (((u32) hi) << 8) | ((u32) lo);
    pb.channels = 3;

    if ((pb.width == 0) || (pb.height == 0)) {
        return 0;
    }

    u32 rowstride = pb.width * pb.channels;
    rowstride = (rowstride + 3) & (~3);
    u32 bytes = rowstride * pb.height;
    // Candidate check (gdk-pixbuf io-jpeg.c / gdk-pixbuf.c:350): overflow test.
    if (bytes / rowstride != pb.height) {
        return 0;
    }
    pb.rowstride = rowstride;

    u8* pixels = malloc(bytes);
    if (pixels == 0) {
        return 1;
    }
    store8(pixels, bytes - 1, 0);
    emit(pb.width);
    emit(pb.height);
    return 0;
}

int load_png() {
    struct pixbuf_info pb;

    // IHDR width/height live at offsets 16 and 20.
    skip_bytes(14);
    pb.width = read_u32_be();
    pb.height = read_u32_be();
    u8 bit_depth = read_byte();
    u8 color_type = read_byte();
    pb.channels = 4;

    if ((pb.width == 0) || (pb.height == 0)) {
        return 0;
    }

    u32 rowstride = pb.width * pb.channels;
    rowstride = (rowstride + 3) & (~3);
    u32 bytes = rowstride * pb.height;
    // Candidate check (gdk-pixbuf.c:350): overflow test via division.
    if (bytes / rowstride != pb.height) {
        return 0;
    }
    pb.rowstride = rowstride;

    u8* pixels = malloc(bytes);
    if (pixels == 0) {
        return 1;
    }
    store8(pixels, bytes - 1, 0);
    emit(pb.width);
    emit(pb.height);
    emit((u32) bit_depth);
    emit((u32) color_type);
    return 0;
}

int load_tiff() {
    struct pixbuf_info pb;

    // ImageWidth value at offset 18, ImageLength value at offset 30.
    skip_bytes(16);
    pb.width = read_u32_le();
    skip_bytes(8);
    pb.height = read_u32_le();
    pb.channels = 4;

    if ((pb.width == 0) || (pb.height == 0)) {
        return 0;
    }

    // Candidate check (viewnior io-tiff.c:134): rowstride overflow.
    u32 rowstride = pb.width * 4;
    if (rowstride / 4 != pb.width) {
        return 0;
    }
    u32 bytes = pb.height * rowstride;
    if (bytes / rowstride != pb.height) {
        return 0;
    }
    pb.rowstride = rowstride;

    u8* pixels = malloc(bytes);
    if (pixels == 0) {
        return 1;
    }
    store8(pixels, bytes - 1, 0);
    emit(pb.width);
    emit(pb.height);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 255) && (m1 == 216)) {
        return load_jpeg();
    }
    if ((m0 == 137) && (m1 == 80)) {
        return load_png();
    }
    if ((m0 == 73) && (m1 == 73)) {
        return load_tiff();
    }
    return 2;
}
"""

VIEWNIOR = register_application(
    Application(
        name="viewnior",
        version="1.4",
        source=SOURCE,
        formats=("jpeg", "png", "tiff"),
        role="donor",
        library="gdk-pixbuf",
        description=(
            "Elegant gdk-pixbuf image viewer; its division-based overflow checks are the "
            "donor checks for CWebP, Dillo, and Display integer-overflow errors."
        ),
    )
)
