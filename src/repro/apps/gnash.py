"""GNU Gnash 0.8.11 — donor application (SWF player).

Gnash's embedded-JPEG decoding path contains the checks the paper transfers
into Swfplay (§4.9):

* ``jpeg-8b/jdinput.c``: sampling factors bounded by ``MAX_SAMP_FACTOR`` (4)
  and dimensions bounded by ``JPEG_MAX_DIMENSION`` (65500);
* the RGBA merge path: a channel-aware overflow check built from successive
  divisions of ``std::numeric_limits<int32_t>::max()``.
"""

from __future__ import annotations

from .registry import Application, register_application

SOURCE = """
// Gnash 0.8.11 embedded-JPEG decoder (MicroC re-implementation).

struct jpeg_component {
    i32 h_samp_factor;
    i32 v_samp_factor;
};

struct swf_decoder {
    u32 width;
    u32 height;
    u32 channels;
};

int decode_swf_jpeg() {
    struct swf_decoder dec;
    struct jpeg_component comp;
    u8 hi;
    u8 lo;

    // Skip version, file length, and the embedded JPEG SOI (offsets 3..9).
    skip_bytes(7);
    hi = read_byte();
    lo = read_byte();
    dec.height = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    dec.width = (((u32) hi) << 8) | ((u32) lo);
    comp.h_samp_factor = (i32) read_byte();
    comp.v_samp_factor = (i32) read_byte();
    dec.channels = (u32) read_byte();

    // Candidate check (jpeg-8b/jdinput.c@233): JPEG limit on sampling factors.
    if ((comp.h_samp_factor <= 0) || (comp.h_samp_factor > 4) ||
        (comp.v_samp_factor <= 0) || (comp.v_samp_factor > 4)) {
        return 3;
    }

    // Candidate check (jpeg-8b/jdinput.c@215): a tad under 64K to prevent overflows.
    if (((i64) dec.height > 65500) || ((i64) dec.width > 65500)) {
        return 4;
    }

    // Component (YUV) buffers, sized from the sampling factors.
    u32 comp_size = dec.width * ((u32) comp.h_samp_factor) * ((u32) comp.v_samp_factor) * 2;
    u8* comp_buf = malloc(comp_size);
    if (comp_buf == 0) {
        return 1;
    }
    if (comp_size > 0) {
        store8(comp_buf, comp_size - 1, 0);
    }

    // Candidate check (gnash GnashImageJpeg.cpp): channel-aware overflow
    // check for the merged RGBA buffer, built from successive divisions.
    u32 maxSize = 2147483647;
    if ((dec.width >= maxSize) || (dec.height >= maxSize)) {
        return 5;
    }
    maxSize = maxSize / 3;
    maxSize = maxSize / dec.width;
    maxSize = maxSize / dec.height;
    if (maxSize > 0) {
        u32 rgba_size = dec.width * dec.height * 4;
        u8* rgba = malloc(rgba_size);
        if (rgba == 0) {
            return 1;
        }
        if (rgba_size > 0) {
            store8(rgba, rgba_size - 1, 0);
        }
        emit(dec.width);
        emit(dec.height);
        return 0;
    }
    return 5;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    u8 m2 = read_byte();
    if ((m0 == 70) && (m1 == 87) && (m2 == 83)) {
        return decode_swf_jpeg();
    }
    return 2;
}
"""

GNASH = register_application(
    Application(
        name="gnash",
        version="0.8.11",
        source=SOURCE,
        formats=("swf",),
        role="donor",
        library="gnash-jpeg",
        description=(
            "GNU Flash player; its sampling-factor, dimension, and channel-aware overflow "
            "checks are the donor checks for the Swfplay integer-overflow errors."
        ),
    )
)
