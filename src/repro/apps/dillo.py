"""Dillo 2.1 — recipient application (PNG integer overflows, CVE-2009-2294).

Dillo computes the PNG image buffer size as a 32-bit product of width, height,
and pixel depth.  "An overflow check is present, but the overflow check is
itself vulnerable to an overflow" (§4.7): the guard compares the (already
wrapped) 32-bit product against a limit, so carefully chosen dimensions slip
through and the allocation at png.c:203 is undersized.  A second allocation in
the FLTK image cache (fltkimagebuf.cc:39) has the same problem.

Simplification relative to the real Dillo: the two allocation sites sit on the
truecolour (``color_type == 2``) and alpha (``color_type != 2``) paths
respectively, so that each error is independently reachable with its own
seed/error-triggering input pair (in the real application the sites execute in
sequence; the paper gives each its own DIODE-discovered inputs).
"""

from __future__ import annotations

from ..lang.trace import ErrorKind
from .registry import Application, ErrorTarget, register_application

SOURCE = """
// Dillo 2.1 PNG decoding (MicroC re-implementation of png.c + fltkimagebuf.cc).

struct dillo_png {
    u32 width;
    u32 height;
    u32 bit_depth;
    u32 color_type;
    u32 rowbytes;
};

u32 describe_pair(u32 a, u32 b) {
    // Multipurpose logging helper; executed with different values on
    // different invocations (a source of unstable insertion points).
    emit(a);
    emit(b);
    return a + b;
}

int Png_datainfo_callback() {
    struct dillo_png png;
    u8 b0;
    u8 b1;
    u8 b2;
    u8 b3;

    // IHDR width/height live at offsets 16 and 20.
    skip_bytes(14);
    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    png.width = (((u32) b0) << 24) | (((u32) b1) << 16) | (((u32) b2) << 8) | ((u32) b3);
    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    png.height = (((u32) b0) << 24) | (((u32) b1) << 16) | (((u32) b2) << 8) | ((u32) b3);
    png.bit_depth = (u32) read_byte();
    png.color_type = (u32) read_byte();

    // libpng itself rejects dimensions above PNG_USER_WIDTH_MAX /
    // PNG_USER_HEIGHT_MAX (1,000,000); Dillo inherits that cap, but the
    // buffer-size computations below remain unchecked (the bug).
    if ((png.width > 1000000) || (png.height > 1000000)) {
        return 5;
    }

    u32 combined = describe_pair(png.width, png.height);

    if (png.color_type == 2) {
        // Truecolour path: the "overflow check" below is itself computed at
        // 32 bits, so it wraps together with the buffer size (the bug).
        u32 product = png.width * png.height;
        if (product > 536870911) {
            return 3;
        }
        u32 size = png.width * png.height * 4;
        // The overflow error: png.c:203 image buffer allocation.
        u8* image = malloc(size);
        if (image == 0) {
            return 1;
        }
        if (size > 0) {
            store8(image, size - 1, 0);
        }
        png.rowbytes = png.width * 4;
        u32 tail = describe_pair(png.rowbytes, size);
        emit(tail);
        return 0;
    }

    // Alpha/palette path: FLTK image cache allocation.
    u32 cache_size = png.width * 3 * png.height;
    // The overflow error: fltkimagebuf.cc:39 cache buffer allocation.
    u8* cache = malloc(cache_size);
    if (cache == 0) {
        return 1;
    }
    if (cache_size > 0) {
        store8(cache, cache_size - 1, 0);
    }
    png.rowbytes = png.width * 3;
    u32 tail2 = describe_pair(png.rowbytes, cache_size);
    emit(tail2);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 137) && (m1 == 80)) {
        return Png_datainfo_callback();
    }
    return 2;
}
"""

DILLO = register_application(
    Application(
        name="dillo",
        version="2.1",
        source=SOURCE,
        formats=("png",),
        role="recipient",
        library="libpng",
        description="Lightweight graphical web browser; overflows its PNG buffer-size computations.",
        targets=(
            ErrorTarget(
                target_id="png.c:203",
                error_kind=ErrorKind.INTEGER_OVERFLOW,
                site_function="Png_datainfo_callback",
                description="width * height * 4 overflows at the image buffer malloc",
            ),
            ErrorTarget(
                target_id="fltkimagebuf.cc:39",
                error_kind=ErrorKind.INTEGER_OVERFLOW,
                site_function="Png_datainfo_callback",
                description="width * 3 * height overflows at the FLTK cache buffer malloc",
            ),
        ),
    )
)
