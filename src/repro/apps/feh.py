"""FEH 2.9.3 (imlib2-based image viewer) — donor application.

FEH is the donor in the paper's worked example (Section 2): its imlib2 JPEG
loader guards image allocation with the ``IMAGE_DIMENSIONS_OK`` macro::

    #define IMAGE_DIMENSIONS_OK(w, h) \
        ( ((w) > 0) && ((h) > 0) && \
          ((unsigned long long)(w) * (unsigned long long)(h) <= (1ULL << 29) - 1) )

The same check protects its PNG and TIFF loaders, which is why FEH also serves
as a donor for the Dillo (PNG) and Display (TIFF) errors.  The MicroC
re-implementation assembles multi-byte fields from individual input bytes with
explicit shifts and ors — exactly the bit manipulation that makes the paper's
excised checks large before simplification.
"""

from __future__ import annotations

from .registry import Application, register_application

SOURCE = """
// FEH 2.9.3 / imlib2 loaders (MicroC re-implementation).

struct jpeg_decompress {
    u32 output_width;
    u32 output_height;
    i32 output_components;
    i32 rec_outbuf_height;
};

struct imlib_image {
    i32 w;
    i32 h;
};

int load_jpeg() {
    struct jpeg_decompress cinfo;
    struct imlib_image im;
    i32 w;
    i32 h;
    u8 hi;
    u8 lo;

    // Skip SOF0 marker, frame length, and precision (offsets 2..6).
    skip_bytes(5);

    hi = read_byte();
    lo = read_byte();
    cinfo.output_height = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    cinfo.output_width = (((u32) hi) << 8) | ((u32) lo);
    cinfo.output_components = (i32) read_byte();
    cinfo.rec_outbuf_height = 1;

    im.w = (i32) cinfo.output_width;
    im.h = (i32) cinfo.output_height;
    w = im.w;
    h = im.h;

    // Candidate check (imlib2 loader_jpeg.c): rejects dimensions whose
    // product could overflow downstream 32-bit size computations.
    if ((cinfo.rec_outbuf_height > 16) || (cinfo.output_components <= 0) ||
        (!((w > 0) && (h > 0) &&
           ((u64) w * (u64) h <= 536870911)))) {
        return 0;
    }

    u32 size = ((u32) w) * ((u32) h) * 4;
    u8* data = malloc(size);
    if (data == 0) {
        return 1;
    }
    store8(data, size - 1, 255);
    emit(cinfo.output_width);
    emit(cinfo.output_height);
    return 0;
}

int load_png() {
    i32 w32;
    i32 h32;
    u8 b0;
    u8 b1;
    u8 b2;
    u8 b3;

    // Signature bytes 2..7, IHDR length and type (offsets 8..15).
    skip_bytes(14);

    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    w32 = (i32) ((((u32) b0) << 24) | (((u32) b1) << 16) | (((u32) b2) << 8) | ((u32) b3));
    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    h32 = (i32) ((((u32) b0) << 24) | (((u32) b1) << 16) | (((u32) b2) << 8) | ((u32) b3));
    u8 bit_depth = read_byte();
    u8 color_type = read_byte();

    // Candidate check (imlib2 loader_png.c): IMAGE_DIMENSIONS_OK(w32, h32).
    if (!((w32 > 0) && (h32 > 0) &&
          ((u64) w32 * (u64) h32 <= 536870911))) {
        return 0;
    }

    u32 size = ((u32) w32) * ((u32) h32) * 4;
    u8* data = malloc(size);
    if (data == 0) {
        return 1;
    }
    store8(data, size - 1, 255);
    emit((u32) w32);
    emit((u32) h32);
    emit((u32) bit_depth);
    emit((u32) color_type);
    return 0;
}

int load_tiff() {
    i32 w32;
    i32 h32;
    u8 b0;
    u8 b1;
    u8 b2;
    u8 b3;

    // Header and IFD entry headers up to the ImageWidth value (offset 18).
    skip_bytes(16);
    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    w32 = (i32) (((u32) b0) | (((u32) b1) << 8) | (((u32) b2) << 16) | (((u32) b3) << 24));

    // ImageLength value lives at offset 30.
    skip_bytes(8);
    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    h32 = (i32) (((u32) b0) | (((u32) b1) << 8) | (((u32) b2) << 16) | (((u32) b3) << 24));

    // Candidate check (imlib2 loader_tiff.c): IMAGE_DIMENSIONS_OK(w32, h32).
    if (!((w32 > 0) && (h32 > 0) &&
          ((u64) w32 * (u64) h32 <= 536870911))) {
        return 0;
    }

    u32 size = ((u32) w32) * ((u32) h32) * 4;
    u8* data = malloc(size);
    if (data == 0) {
        return 1;
    }
    store8(data, size - 1, 255);
    emit((u32) w32);
    emit((u32) h32);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 255) && (m1 == 216)) {
        return load_jpeg();
    }
    if ((m0 == 137) && (m1 == 80)) {
        return load_png();
    }
    if ((m0 == 73) && (m1 == 73)) {
        return load_tiff();
    }
    return 2;
}
"""

FEH = register_application(
    Application(
        name="feh",
        version="2.9.3",
        source=SOURCE,
        formats=("jpeg", "png", "tiff"),
        role="donor",
        library="imlib2",
        description=(
            "Fast imlib2-based image viewer; its IMAGE_DIMENSIONS_OK check is the donor "
            "check for the CWebP, Dillo, and Display integer-overflow errors."
        ),
    )
)
