"""ImageMagick Display 6.5.2-9 — donor application (GIF reader).

The later ImageMagick point release bounds the GIF LZW minimum code size::

    #define MaximumLZWBits  12
    if (data_size > MaximumLZWBits)
        ThrowBinaryException(CorruptImageError, "CorruptImage", image.filename);

This check is the donor for the gif2tiff out-of-bounds write (§4.4).  Note
that ImageMagick Display appears in the evaluation both as a *recipient*
(version 6.5.2-8, TIFF overflows) and as a *donor* (version 6.5.2-9, GIF
check); the two versions are registered as separate applications.
"""

from __future__ import annotations

from .registry import Application, register_application

SOURCE = """
// ImageMagick Display 6.5.2-9 GIF decoder (MicroC re-implementation).

struct gif_image {
    u32 screen_width;
    u32 screen_height;
    u32 width;
    u32 height;
    i32 data_size;
};

int read_gif_image() {
    struct gif_image image;
    u8 lo;
    u8 hi;

    // "GIF89a" signature: 4 more bytes after the sniffed "GI".
    skip_bytes(4);
    lo = read_byte();
    hi = read_byte();
    image.screen_width = ((u32) lo) | (((u32) hi) << 8);
    lo = read_byte();
    hi = read_byte();
    image.screen_height = ((u32) lo) | (((u32) hi) << 8);

    // Flags, background colour, aspect ratio, separator, left, top.
    skip_bytes(8);
    lo = read_byte();
    hi = read_byte();
    image.width = ((u32) lo) | (((u32) hi) << 8);
    lo = read_byte();
    hi = read_byte();
    image.height = ((u32) lo) | (((u32) hi) << 8);
    skip_bytes(1);
    image.data_size = (i32) read_byte();

    // Candidate check (coders/gif.c): MaximumLZWBits.
    if (image.data_size > 12) {
        return 3;
    }

    u32 clear = ((u32) 1) << ((u32) image.data_size);
    u8* prefix = malloc(16388);
    if (prefix == 0) {
        return 1;
    }
    u32 i = 0;
    while (i < clear) {
        store8(prefix, i, 0);
        i = i + 1;
    }
    emit(image.width);
    emit(image.height);
    emit((u32) image.data_size);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 71) && (m1 == 73)) {
        return read_gif_image();
    }
    return 2;
}
"""

DISPLAY_DONOR = register_application(
    Application(
        name="display-6.5.2-9",
        version="6.5.2-9",
        source=SOURCE,
        formats=("gif",),
        role="donor",
        library="imagemagick-gif",
        description=(
            "ImageMagick Display (later point release); its MaximumLZWBits check is the "
            "donor check for the gif2tiff out-of-bounds write."
        ),
    )
)
