"""Swfplay 0.5.5 (Swfdec) — recipient application (SWF/JPEG overflows).

Swfplay decodes JPEG data embedded in SWF files.  Two families of 32-bit
buffer-size computations overflow (§4.9): the per-component YUVA buffers sized
from the dimensions and sampling factors (jpeg.c:192), and the merged RGBA
buffers sized as ``width * height * 4`` (jpeg_rgb_decoder.c:253 and :257).
"""

from __future__ import annotations

from ..lang.trace import ErrorKind
from .registry import Application, ErrorTarget, register_application

SOURCE = """
// Swfplay 0.5.5 embedded-JPEG decoding (MicroC re-implementation).

struct swf_jpeg_dec {
    u32 width;
    u32 height;
    u32 max_h_sample;
    u32 max_v_sample;
    u32 channels;
};

int jpeg_rgb_decode(struct swf_jpeg_dec* dec) {
    // The overflow error: jpeg_rgb_decoder.c:253 temporary RGBA buffer.
    u32 rgba_size = dec->width * dec->height * 4;
    u8* temp = malloc(rgba_size);
    if (temp == 0) {
        return 1;
    }
    if (rgba_size > 0) {
        store8(temp, rgba_size - 1, 0);
    }
    // The overflow error: jpeg_rgb_decoder.c:257 image RGBA buffer.
    u8* image = malloc(rgba_size);
    if (image == 0) {
        return 1;
    }
    if (rgba_size > 0) {
        store8(image, rgba_size - 1, 0);
    }
    emit(rgba_size);
    return 0;
}

int jpeg_decoder_decode() {
    struct swf_jpeg_dec dec;
    u8 hi;
    u8 lo;

    // Skip version, file length, and the embedded JPEG SOI (offsets 3..9).
    skip_bytes(7);
    hi = read_byte();
    lo = read_byte();
    dec.height = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    dec.width = (((u32) hi) << 8) | ((u32) lo);
    dec.max_h_sample = (u32) read_byte();
    dec.max_v_sample = (u32) read_byte();
    dec.channels = (u32) read_byte();

    // The overflow error: jpeg.c:192 per-component YUVA buffers sized from
    // the dimensions and sampling factors, with no overflow checking.
    u32 comp_size = dec.width * dec.max_h_sample * dec.max_v_sample * 2;
    u8* component = malloc(comp_size);
    if (component == 0) {
        return 1;
    }
    if (comp_size > 0) {
        store8(component, comp_size - 1, 0);
    }

    emit(dec.width);
    emit(dec.height);
    emit(dec.max_h_sample);
    emit(dec.max_v_sample);
    return jpeg_rgb_decode(&dec);
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    u8 m2 = read_byte();
    if ((m0 == 70) && (m1 == 87) && (m2 == 83)) {
        return jpeg_decoder_decode();
    }
    return 2;
}
"""

SWFPLAY = register_application(
    Application(
        name="swfplay",
        version="0.5.5",
        source=SOURCE,
        formats=("swf",),
        role="recipient",
        library="swfdec",
        description="Adobe Flash player from the Swfdec library; overflows its JPEG buffer-size computations.",
        targets=(
            ErrorTarget(
                target_id="jpeg.c:192",
                error_kind=ErrorKind.INTEGER_OVERFLOW,
                site_function="jpeg_decoder_decode",
                description="width * sampling factors overflows at the component buffer malloc",
            ),
            ErrorTarget(
                target_id="jpeg_rgb_decoder.c:253",
                error_kind=ErrorKind.INTEGER_OVERFLOW,
                site_function="jpeg_rgb_decode",
                description="width * height * 4 overflows at the RGBA merge buffer mallocs",
            ),
        ),
    )
)
