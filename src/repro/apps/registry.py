"""Registry of donor and recipient applications.

Each application is a MicroC re-implementation of one of the paper's benchmark
programs: it reads the same (simplified) input format, performs the same
dimension/size computations, and contains the same error or the same
protective check, so that the CP pipeline observes the same dynamic behaviour
the paper describes (flipped branches, overflowing allocation sites,
divide-by-zero sites, data structures holding the relevant input fields).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Optional

from ..lang.checker import Program, compile_program
from ..lang.trace import ErrorKind


class AppError(Exception):
    """Raised for unknown applications or malformed registrations."""


@dataclass(frozen=True)
class ErrorTarget:
    """A known error location in a recipient application.

    ``target_id`` follows the paper's file:line convention (e.g.
    ``jpegdec.c:248``); ``site_function`` is the MicroC function containing the
    error site, used to match the detected error against the intended target.
    """

    target_id: str
    error_kind: ErrorKind
    site_function: str
    description: str = ""


@dataclass(frozen=True)
class Application:
    """A donor or recipient application."""

    name: str
    version: str
    source: str
    formats: tuple[str, ...]
    role: str  # "donor", "recipient", or "both"
    description: str = ""
    targets: tuple[ErrorTarget, ...] = ()
    library: str = ""  # underlying input-parsing library (for donor filtering, §4.1)

    @property
    def full_name(self) -> str:
        if self.name.endswith(self.version):
            return self.name
        return f"{self.name}-{self.version}"

    def program(self) -> Program:
        """The compiled (type-checked) program; cached per application."""
        return _compile_cached(self.name, self.version)

    def target(self, target_id: str) -> ErrorTarget:
        for target in self.targets:
            if target.target_id == target_id:
                return target
        raise AppError(f"application {self.full_name} has no target {target_id!r}")

    def reads_format(self, format_name: str) -> bool:
        return format_name in self.formats


_APPLICATIONS: dict[str, Application] = {}


@lru_cache(maxsize=None)
def _compile_cached(name: str, version: str) -> Program:
    application = get_application(name)
    return compile_program(application.source, name=application.full_name)


def register_application(application: Application) -> Application:
    if application.name in _APPLICATIONS:
        raise AppError(f"application {application.name!r} already registered")
    _APPLICATIONS[application.name] = application
    return application


def unregister_application(name: str) -> Application:
    """Remove one application and drop any cached compilation for it.

    The compile cache is keyed by name, so an unregister followed by a
    re-register under the same name (e.g. a regenerated scenario corpus)
    must not serve the previous registration's program.
    """
    try:
        application = _APPLICATIONS.pop(name)
    except KeyError:
        known = ", ".join(sorted(_APPLICATIONS))
        raise AppError(f"unknown application {name!r} (known: {known})") from None
    _compile_cached.cache_clear()
    return application


@contextmanager
def scoped_registration(*applications: Application) -> Iterator[tuple[Application, ...]]:
    """Register applications for the duration of a ``with`` block.

    Generated scenario corpora and synthetic test applications need to come
    and go without leaking duplicate-name ``AppError`` into later runs; this
    is the supported way to do that.  Registration is all-or-nothing: if one
    application clashes with an existing name, the ones registered so far
    are removed before the error propagates.
    """
    registered: list[str] = []
    try:
        for application in applications:
            register_application(application)
            registered.append(application.name)
        yield applications
    finally:
        for name in reversed(registered):
            _APPLICATIONS.pop(name, None)
        if registered:
            _compile_cached.cache_clear()


def get_application(name: str) -> Application:
    try:
        return _APPLICATIONS[name]
    except KeyError:
        known = ", ".join(sorted(_APPLICATIONS))
        raise AppError(f"unknown application {name!r} (known: {known})") from None


def all_applications() -> list[Application]:
    return [app for _, app in sorted(_APPLICATIONS.items())]


def donors() -> list[Application]:
    return [app for app in all_applications() if app.role in ("donor", "both")]


def recipients() -> list[Application]:
    return [app for app in all_applications() if app.role in ("recipient", "both")]


def donors_for_format(format_name: str) -> list[Application]:
    """Donor applications able to read the given input format."""
    return [app for app in donors() if app.reads_format(format_name)]


def clear_registry() -> None:
    """Used by tests that register synthetic applications."""
    _APPLICATIONS.clear()
    _compile_cached.cache_clear()
