"""mtPaint 3.40 — donor application.

mtPaint caps image dimensions with explicit ``MAX_WIDTH`` / ``MAX_HEIGHT``
constants (16384) before allocating pixel storage::

    if ((settings->width > MAX_WIDTH) || (settings->height > MAX_HEIGHT))
        return (TOO_BIG);

The paper transfers this check into CWebP (§4.6.1) and into Dillo (§4.7.2).
The transferred patch constrains the dimensions rather than checking the
product, which "may reject some valid input files ... consistent with the
behavior of the mtpaint donor".
"""

from __future__ import annotations

from .registry import Application, register_application

SOURCE = """
// mtPaint 3.40 PNG/JPEG loaders (MicroC re-implementation).

struct ls_settings {
    i32 width;
    i32 height;
    i32 bpp;
};

int load_jpeg() {
    struct ls_settings settings;
    u8 hi;
    u8 lo;

    // Skip SOF0 marker, frame length, and precision (offsets 2..6).
    skip_bytes(5);
    hi = read_byte();
    lo = read_byte();
    settings.height = (i32) ((((u32) hi) << 8) | ((u32) lo));
    hi = read_byte();
    lo = read_byte();
    settings.width = (i32) ((((u32) hi) << 8) | ((u32) lo));
    settings.bpp = 3;

    // Candidate check (mtpaint png.c:234 and jpeg loader): dimension caps
    // (mtpaint also rejects non-positive dimensions).
    if ((settings.width < 1) || (settings.height < 1) ||
        (settings.width > 16384) || (settings.height > 16384)) {
        return 6;
    }

    u32 size = ((u32) settings.width) * ((u32) settings.height) * ((u32) settings.bpp);
    u8* image = malloc(size);
    if (image == 0) {
        return 1;
    }
    store8(image, size - 1, 0);
    emit((u32) settings.width);
    emit((u32) settings.height);
    return 0;
}

int load_png() {
    struct ls_settings settings;
    i32 pwidth;
    i32 pheight;

    // IHDR width/height live at offsets 16 and 20.
    skip_bytes(14);
    pwidth = (i32) read_u32_be();
    pheight = (i32) read_u32_be();
    u8 bit_depth = read_byte();
    u8 color_type = read_byte();
    settings.width = pwidth;
    settings.height = pheight;
    settings.bpp = 3;

    // Candidate check (mtpaint png.c:234): dimension caps (mtpaint also
    // rejects non-positive dimensions).
    if ((pwidth < 1) || (pheight < 1) || (pwidth > 16384) || (pheight > 16384)) {
        return 6;
    }

    u32 size = ((u32) pwidth) * ((u32) pheight) * ((u32) settings.bpp);
    u8* image = malloc(size);
    if (image == 0) {
        return 1;
    }
    store8(image, size - 1, 0);
    emit((u32) pwidth);
    emit((u32) pheight);
    emit((u32) bit_depth);
    emit((u32) color_type);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 255) && (m1 == 216)) {
        return load_jpeg();
    }
    if ((m0 == 137) && (m1 == 80)) {
        return load_png();
    }
    return 2;
}
"""

MTPAINT = register_application(
    Application(
        name="mtpaint",
        version="3.40",
        source=SOURCE,
        formats=("jpeg", "png"),
        role="donor",
        library="mtpaint-loaders",
        description=(
            "Pixel-art editor; its MAX_WIDTH/MAX_HEIGHT dimension caps are the donor "
            "check for the CWebP and Dillo integer-overflow errors."
        ),
    )
)
