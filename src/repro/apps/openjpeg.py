"""OpenJPEG 1.5.2 — donor application (JPEG-2000 codec).

OpenJPEG validates the tile index of an SOT segment against the total number
of tiles before using it (j2k.c:1394)::

    if ((tileno < 0) || (tileno >= (cp->tw * cp->th))) { ... }

This is the check the paper transfers into JasPer, whose own version of the
check is off by one (§4.3).  The transfer requires recognising that OpenJPEG's
``cp->tw * cp->th`` product has the same value as JasPer's ``dec->numtiles``
field — the paper's showcase for data-structure translation.
"""

from __future__ import annotations

from .registry import Application, register_application

SOURCE = """
// OpenJPEG 1.5.2 J2K decoder (MicroC re-implementation).

struct opj_cp {
    i32 tw;
    i32 th;
    u32 image_width;
    u32 image_height;
};

int j2k_read_sot() {
    struct opj_cp cp;
    u8 hi;
    u8 lo;

    // SIZ marker and Lsiz already behind the cursor (offsets 2..5).
    skip_bytes(4);
    cp.image_width = read_u32_be();
    cp.image_height = read_u32_be();
    cp.tw = (i32) read_byte();
    cp.th = (i32) read_byte();

    // SOT marker and Lsot (offsets 16..19).
    skip_bytes(4);
    hi = read_byte();
    lo = read_byte();
    i32 tileno = (i32) ((((u32) hi) << 8) | ((u32) lo));
    u16 tile_bytes = read_u16_be();

    // Candidate check (j2k.c:1394): tile index must be within range.
    if ((tileno < 0) || (tileno >= (cp.tw * cp.th))) {
        return 3;
    }

    u32 numtiles = ((u32) cp.tw) * ((u32) cp.th);
    u8* tile_table = malloc(numtiles * 4);
    if (tile_table == 0) {
        return 1;
    }
    store8(tile_table, ((u32) tileno) * 4, 1);
    emit((u32) tileno);
    emit(numtiles);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 255) && (m1 == 79)) {
        return j2k_read_sot();
    }
    return 2;
}
"""

OPENJPEG = register_application(
    Application(
        name="openjpeg",
        version="1.5.2",
        source=SOURCE,
        formats=("jp2",),
        role="donor",
        library="openjpeg",
        description=(
            "Open-source JPEG-2000 codec; its tile-index range check is the donor check "
            "for the JasPer out-of-bounds write."
        ),
    )
)
