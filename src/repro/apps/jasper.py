"""JasPer 1.9 — recipient application (JPEG-2000 off-by-one, CVE-2012-3352).

JasPer checks the tile number of an SOT segment against the number of tiles in
the image, but the check is miscoded: at jpc_dec.c:492 it uses ``>`` where the
correct comparison (present in OpenJPEG) is ``>=``.  A tile-part whose index
equals the tile count therefore slips through and JasPer writes tile data one
slot beyond the end of the tile table (§4.3).
"""

from __future__ import annotations

from ..lang.trace import ErrorKind
from .registry import Application, ErrorTarget, register_application

SOURCE = """
// JasPer 1.9 jpc_dec.c tile handling (MicroC re-implementation).

struct jpc_dec {
    u32 numtiles;
    u32 tiles_x;
    u32 tiles_y;
    u32 image_width;
    u32 image_height;
};

struct jpc_sot {
    u32 tileno;
    u32 tile_bytes;
};

int jpc_dec_process_sot() {
    struct jpc_dec dec;
    struct jpc_sot sot;
    u8 hi;
    u8 lo;

    // SIZ segment: image size and tile grid (offsets 6..15).
    skip_bytes(4);
    dec.image_width = read_u32_be();
    dec.image_height = read_u32_be();
    dec.tiles_x = (u32) read_byte();
    dec.tiles_y = (u32) read_byte();
    dec.numtiles = dec.tiles_x * dec.tiles_y;

    u8* tile_table = malloc(dec.numtiles * 8);
    if (tile_table == 0) {
        return 1;
    }

    // SOT segment: tile index and tile-part length (offsets 16..23).
    skip_bytes(4);
    hi = read_byte();
    lo = read_byte();
    sot.tileno = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    sot.tile_bytes = (((u32) hi) << 8) | ((u32) lo);

    // The miscoded check (jpc_dec.c:492): should be >= (off-by-one).
    if (sot.tileno > dec.numtiles) {
        return 3;
    }

    // Out-of-bounds write when sot.tileno == dec.numtiles.
    store8(tile_table, sot.tileno * 8, 1);
    emit(sot.tileno);
    emit(dec.numtiles);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 255) && (m1 == 79)) {
        return jpc_dec_process_sot();
    }
    return 2;
}
"""

JASPER = register_application(
    Application(
        name="jasper",
        version="1.9",
        source=SOURCE,
        formats=("jp2",),
        role="recipient",
        library="jasper",
        description="JPEG-2000 reference implementation; off-by-one tile-number check.",
        targets=(
            ErrorTarget(
                target_id="jpc_dec.c:492",
                error_kind=ErrorKind.OUT_OF_BOUNDS_WRITE,
                site_function="jpc_dec_process_sot",
                description="tile index equal to the tile count writes past the tile table",
            ),
        ),
    )
)
