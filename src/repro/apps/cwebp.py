"""CWebP 0.3.1 — recipient application (Section 2's worked example).

CWebP's JPEG reader computes the image buffer size as
``stride * height`` with ``stride = width * components * sizeof(*rgb)``; on a
32-bit machine large ``width``/``height`` fields overflow the computation and
the subsequent ``malloc`` at jpegdec.c:248 allocates a buffer that is too
small (the DIODE-discovered integer overflow of Section 2).

The MicroC re-implementation reproduces the missing check and the allocation
site, and includes a small helper invoked with different values on different
executions — the source of the *unstable* candidate insertion points that CP
filters out (§2 reports 2 unstable points for CWebP).
"""

from __future__ import annotations

from ..lang.trace import ErrorKind
from .registry import Application, ErrorTarget, register_application

SOURCE = """
// CWebP 0.3.1 ReadJPEG (MicroC re-implementation of jpegdec.c).

struct jpeg_dec {
    u32 output_width;
    u32 output_height;
    u32 output_components;
};

u32 smaller_dimension(u32 a, u32 b) {
    // Multipurpose helper: called with (width, height) while parsing and
    // later with derived sizes; its interior points are unstable.
    if (a < b) {
        return a;
    }
    return b;
}

int ReadJPEG() {
    struct jpeg_dec dinfo;
    u8 hi;
    u8 lo;

    // Skip SOF0 marker, frame length, and precision (offsets 2..6).
    skip_bytes(5);
    hi = read_byte();
    lo = read_byte();
    dinfo.output_height = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    dinfo.output_width = (((u32) hi) << 8) | ((u32) lo);
    u32 num_components = (u32) read_byte();

    // libjpeg rejects frames with more than MAX_COMPONENTS colour components,
    // and CWebP decompresses to RGB, so the output always has 3 components;
    // the dimension computation below remains unchecked (the bug).
    if (num_components > 10) {
        return 4;
    }
    dinfo.output_components = 3;

    u32 min_dim = smaller_dimension(dinfo.output_width, dinfo.output_height);
    emit(min_dim);

    u32 stride = dinfo.output_width * dinfo.output_components;
    // The overflow error: stride * height wraps at 32 bits (jpegdec.c:248).
    u8* rgb = malloc(stride * dinfo.output_height);
    if (rgb == 0) {
        return 1;
    }
    u32 total = stride * dinfo.output_height;
    if (total > 0) {
        store8(rgb, total - 1, 0);
    }
    u32 min_size = smaller_dimension(stride, total);
    emit(min_size);
    emit(dinfo.output_width);
    emit(dinfo.output_height);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 255) && (m1 == 216)) {
        return ReadJPEG();
    }
    return 2;
}
"""

CWEBP = register_application(
    Application(
        name="cwebp",
        version="0.3.1",
        source=SOURCE,
        formats=("jpeg",),
        role="recipient",
        library="libjpeg",
        description="Google's WebP conversion tool; overflows the JPEG image-buffer size computation.",
        targets=(
            ErrorTarget(
                target_id="jpegdec.c:248",
                error_kind=ErrorKind.INTEGER_OVERFLOW,
                site_function="ReadJPEG",
                description="stride * height overflows at the image buffer malloc",
            ),
        ),
    )
)
