"""Wireshark 1.4.14 — recipient application (DCP-ETSI divide-by-zero).

The DCP-ETSI dissector divides the reassembled data length by the
per-fragment payload length to compute the fragment count; degenerate packets
with a zero payload-length field crash the dissector at
packet-dcp-etsi.c:258/:276 (§4.5).  Wireshark 1.8.6 guards the division with
``if (real_len)``; transferring that guard back is the paper's multiversion /
targeted-update scenario.
"""

from __future__ import annotations

from ..lang.trace import ErrorKind
from .registry import Application, ErrorTarget, register_application

SOURCE = """
// Wireshark 1.4.14 packet-dcp-etsi.c dissector (MicroC re-implementation).

struct pft_info {
    u32 packet_type;
    u32 total_len;
    u32 plen;
    u32 fragment_index;
};

int dissect_pft() {
    struct pft_info info;
    u8 hi;
    u8 lo;

    info.packet_type = (u32) read_byte();
    hi = read_byte();
    lo = read_byte();
    info.total_len = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    info.plen = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    info.fragment_index = (((u32) hi) << 8) | ((u32) lo);

    // The divide-by-zero error: packet-dcp-etsi.c:258 / :276 (no guard on
    // the payload length in this version).
    u32 fragments = info.total_len / info.plen;
    u32 padding = info.total_len % info.plen;

    emit(fragments);
    emit(padding);
    emit(info.total_len);
    emit(info.plen);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 68) && (m1 == 67)) {
        return dissect_pft();
    }
    return 2;
}
"""

WIRESHARK_1_4 = register_application(
    Application(
        name="wireshark-1.4.14",
        version="1.4.14",
        source=SOURCE,
        formats=("dcp",),
        role="recipient",
        library="wireshark-dcp-etsi",
        description="Network protocol analyser; divides by a zero payload-length field.",
        targets=(
            ErrorTarget(
                target_id="packet-dcp-etsi.c:258",
                error_kind=ErrorKind.DIVIDE_BY_ZERO,
                site_function="dissect_pft",
                description="fragment count division by the zero payload-length field",
            ),
        ),
    )
)
