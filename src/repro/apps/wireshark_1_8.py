"""Wireshark 1.8.6 — donor application (DCP-ETSI dissector).

The later Wireshark release guards the fragment-count division with a check on
the per-fragment payload length (§4.5)::

    if (real_len) ...

Transferring this check into Wireshark 1.4.14 is the paper's *multiversion*
scenario: a targeted update that eliminates the divide-by-zero error without
the disruption of a full upgrade.
"""

from __future__ import annotations

from .registry import Application, register_application

SOURCE = """
// Wireshark 1.8.6 packet-dcp-etsi.c dissector (MicroC re-implementation).

struct dcp_packet {
    u32 packet_type;
    u32 total_len;
    u32 real_len;
    u32 fragment_index;
};

int dissect_dcp_etsi() {
    struct dcp_packet packet;
    u8 hi;
    u8 lo;

    packet.packet_type = (u32) read_byte();
    hi = read_byte();
    lo = read_byte();
    packet.total_len = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    packet.real_len = (((u32) hi) << 8) | ((u32) lo);
    hi = read_byte();
    lo = read_byte();
    packet.fragment_index = (((u32) hi) << 8) | ((u32) lo);

    // Candidate check (packet-dcp-etsi.c, 1.8.6): only divide when the
    // payload length is non-zero.
    if (packet.real_len) {
        u32 fragments = packet.total_len / packet.real_len;
        u32 padding = packet.total_len % packet.real_len;
        emit(fragments);
        emit(padding);
    }
    emit(packet.total_len);
    emit(packet.real_len);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 68) && (m1 == 67)) {
        return dissect_dcp_etsi();
    }
    return 2;
}
"""

WIRESHARK_1_8 = register_application(
    Application(
        name="wireshark-1.8.6",
        version="1.8.6",
        source=SOURCE,
        formats=("dcp",),
        role="donor",
        library="wireshark-dcp-etsi",
        description=(
            "Network protocol analyser (later release); its payload-length guard is the "
            "donor check for the Wireshark 1.4.14 divide-by-zero error."
        ),
    )
)
