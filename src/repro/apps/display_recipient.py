"""ImageMagick Display 6.5.2-8 — recipient application (TIFF overflows, CVE-2009-1882).

Display computes pixel-buffer lengths as 32-bit products of TIFF ImageWidth,
ImageLength, bits-per-sample, and samples-per-pixel "with no overflow checking
at all in this version" (§4.8).  Two allocation sites are evaluated in the
paper: the X-window pixel buffer (xwindow.c:5619) and the resized image
created for the GUI (display.c:4393).  The second site multiplies by a larger
factor (``width << 2``), so inputs exist that overflow it while leaving the
first site intact — each target therefore has its own error-triggering input.
"""

from __future__ import annotations

from ..lang.trace import ErrorKind
from .registry import Application, ErrorTarget, register_application

SOURCE = """
// ImageMagick Display 6.5.2-8 TIFF path (MicroC re-implementation).

struct tiff_info {
    u32 width;
    u32 height;
    u32 bits_per_sample;
    u32 samples_per_pixel;
};

int ReadTIFFImage() {
    struct tiff_info tiff;
    u8 b0;
    u8 b1;
    u8 b2;
    u8 b3;

    // ImageWidth value (offset 18), ImageLength (30), BitsPerSample (42),
    // SamplesPerPixel (54); all little-endian LONG values.
    skip_bytes(16);
    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    tiff.width = ((u32) b0) | (((u32) b1) << 8) | (((u32) b2) << 16) | (((u32) b3) << 24);
    skip_bytes(8);
    b0 = read_byte();
    b1 = read_byte();
    b2 = read_byte();
    b3 = read_byte();
    tiff.height = ((u32) b0) | (((u32) b1) << 8) | (((u32) b2) << 16) | (((u32) b3) << 24);
    skip_bytes(8);
    tiff.bits_per_sample = read_u32_le();
    skip_bytes(8);
    tiff.samples_per_pixel = read_u32_le();

    // libtiff rejects unsupported sample layouts before ImageMagick sizes its
    // buffers; the dimension computation itself remains unchecked (the bug).
    if ((tiff.bits_per_sample > 32) || (tiff.samples_per_pixel > 8)) {
        return 4;
    }

    u32 bytes_per_pixel = (tiff.bits_per_sample / 8) * tiff.samples_per_pixel;

    // The overflow error: xwindow.c:5619 window pixel buffer.
    u32 window_size = tiff.width * tiff.height * bytes_per_pixel;
    u8* window_pixels = malloc(window_size);
    if (window_pixels == 0) {
        return 1;
    }
    if (window_size > 0) {
        store8(window_pixels, window_size - 1, 0);
    }

    // The overflow error: display.c:4393 resized image for the GUI.
    u32 resize_size = (tiff.width << 2) * tiff.height;
    u8* resize_pixels = malloc(resize_size);
    if (resize_pixels == 0) {
        return 1;
    }
    if (resize_size > 0) {
        store8(resize_pixels, resize_size - 1, 0);
    }

    emit(tiff.width);
    emit(tiff.height);
    emit(tiff.bits_per_sample);
    emit(tiff.samples_per_pixel);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 73) && (m1 == 73)) {
        return ReadTIFFImage();
    }
    return 2;
}
"""

DISPLAY_RECIPIENT = register_application(
    Application(
        name="display",
        version="6.5.2-8",
        source=SOURCE,
        formats=("tiff",),
        role="recipient",
        library="imagemagick-tiff",
        description="ImageMagick image viewer; overflows its TIFF pixel-buffer size computations.",
        targets=(
            ErrorTarget(
                target_id="xwindow.c:5619",
                error_kind=ErrorKind.INTEGER_OVERFLOW,
                site_function="ReadTIFFImage",
                description="width * height * bytes_per_pixel overflows at the window pixel buffer",
            ),
            ErrorTarget(
                target_id="display.c:4393",
                error_kind=ErrorKind.INTEGER_OVERFLOW,
                site_function="ReadTIFFImage",
                description="(width << 2) * height overflows at the resized image buffer",
            ),
        ),
    )
)
