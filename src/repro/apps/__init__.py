"""The donor and recipient applications of the paper's evaluation.

Importing this package registers all fourteen applications (seven donors and
seven recipients) in the registry.  Use :func:`get_application`,
:func:`donors_for_format`, and friends to look them up.
"""

from .registry import (
    AppError,
    Application,
    ErrorTarget,
    all_applications,
    clear_registry,
    donors,
    donors_for_format,
    get_application,
    recipients,
    register_application,
    scoped_registration,
    unregister_application,
)

# Importing the application modules registers them.
from . import cwebp as _cwebp  # noqa: F401
from . import dillo as _dillo  # noqa: F401
from . import display_donor as _display_donor  # noqa: F401
from . import display_recipient as _display_recipient  # noqa: F401
from . import feh as _feh  # noqa: F401
from . import gif2tiff as _gif2tiff  # noqa: F401
from . import gnash as _gnash  # noqa: F401
from . import jasper as _jasper  # noqa: F401
from . import mtpaint as _mtpaint  # noqa: F401
from . import openjpeg as _openjpeg  # noqa: F401
from . import swfplay as _swfplay  # noqa: F401
from . import viewnior as _viewnior  # noqa: F401
from . import wireshark_1_4 as _wireshark_1_4  # noqa: F401
from . import wireshark_1_8 as _wireshark_1_8  # noqa: F401

__all__ = [
    "AppError",
    "Application",
    "ErrorTarget",
    "all_applications",
    "clear_registry",
    "donors",
    "donors_for_format",
    "get_application",
    "recipients",
    "register_application",
    "scoped_registration",
    "unregister_application",
]
