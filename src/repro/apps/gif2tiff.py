"""gif2tiff 4.0.3 (libtiff tools) — recipient application (CVE-2013-4231).

gif2tiff initialises its LZW decoder tables from the GIF minimum code size
without enforcing the specification's limit of 12 bits; a larger code size
makes the initialisation loop at gif2tiff.c:355 run past the ends of the
statically sized tables (§4.4).
"""

from __future__ import annotations

from ..lang.trace import ErrorKind
from .registry import Application, ErrorTarget, register_application

SOURCE = """
// gif2tiff 4.0.3 (libtiff tools) GIF reader (MicroC re-implementation).

struct gif_reader {
    u32 screen_width;
    u32 screen_height;
    u32 width;
    u32 height;
    i32 datasize;
};

int readgifimage() {
    struct gif_reader gif;
    u8 lo;
    u8 hi;

    // "GIF89a" signature: 4 more bytes after the sniffed "GI".
    skip_bytes(4);
    lo = read_byte();
    hi = read_byte();
    gif.screen_width = ((u32) lo) | (((u32) hi) << 8);
    lo = read_byte();
    hi = read_byte();
    gif.screen_height = ((u32) lo) | (((u32) hi) << 8);

    // Flags, background colour, aspect ratio, separator, left, top.
    skip_bytes(8);
    lo = read_byte();
    hi = read_byte();
    gif.width = ((u32) lo) | (((u32) hi) << 8);
    lo = read_byte();
    hi = read_byte();
    gif.height = ((u32) lo) | (((u32) hi) << 8);
    skip_bytes(1);
    gif.datasize = (i32) read_byte();

    // No check on the LZW code size: the GIF specification limits it to 12
    // but gif2tiff never enforces that (the bug).
    u32 clear = ((u32) 1) << ((u32) gif.datasize);
    u8* prefix = malloc(4098);
    if (prefix == 0) {
        return 1;
    }
    u32 i = 0;
    // The out-of-bounds write: gif2tiff.c:355 table initialisation loop.
    while (i < clear + 2) {
        store8(prefix, i, 0);
        i = i + 1;
    }

    emit(gif.width);
    emit(gif.height);
    emit((u32) gif.datasize);
    return 0;
}

int main() {
    u8 m0 = read_byte();
    u8 m1 = read_byte();
    if ((m0 == 71) && (m1 == 73)) {
        return readgifimage();
    }
    return 2;
}
"""

GIF2TIFF = register_application(
    Application(
        name="gif2tiff",
        version="4.0.3",
        source=SOURCE,
        formats=("gif",),
        role="recipient",
        library="libtiff-tools",
        description="libtiff GIF-to-TIFF converter; unbounded LZW code size overruns its tables.",
        targets=(
            ErrorTarget(
                target_id="gif2tiff.c:355",
                error_kind=ErrorKind.OUT_OF_BOUNDS_WRITE,
                site_function="readgifimage",
                description="LZW table initialisation loop overruns the statically sized tables",
            ),
        ),
    )
)
