"""Concrete evaluation of symbolic expressions.

Evaluation is used in three places:

* the equivalence checker's randomised/exhaustive fallback and its witness
  checking (:mod:`repro.solver.equivalence`),
* validation of candidate checks against concrete seed / error-triggering
  inputs during the CP pipeline, and
* property-based tests that compare the simplifier's output against the
  original expression.

Semantics: all values are unsigned residues modulo ``2**width``; signed
operators reinterpret their operands in two's complement.  Division and
remainder by zero evaluate to all-ones / the dividend respectively, matching
the conventional SMT-LIB bitvector semantics (the MicroC VM, by contrast,
*reports* divide-by-zero as a runtime error — see :mod:`repro.lang.vm`).

Because expressions are hash-consed (:mod:`repro.symbolic.expr`),
:func:`evaluate` memoises per-node results within one call: a subtree shared
by many parents is evaluated once per ``(call, node)`` rather than once per
occurrence, so evaluation cost is proportional to the *DAG* size.  The memo
cannot span calls — it is keyed under one environment.  The un-memoised
tree-walking semantics are retained as :func:`evaluate_tree`; property tests
assert the two always agree.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    Unary,
)


class EvaluationError(Exception):
    """Raised when an expression references a field missing from the environment."""


def _mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Interpret ``value`` (an unsigned residue) as two's complement."""
    value &= _mask(width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Reduce an integer to its unsigned residue at ``width`` bits."""
    return value & _mask(width)


def evaluate(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate ``expr`` under ``env`` (field path -> unsigned integer value).

    Returns the unsigned residue of the result at ``expr.width`` bits.
    Shared subtrees are evaluated once (identity-keyed memo over the DAG).
    """
    return _evaluate(expr, env, {})


def evaluate_tree(expr: Expr, env: Mapping[str, int]) -> int:
    """Reference evaluation without subtree memoisation (tree traversal).

    Semantically identical to :func:`evaluate` — evaluation is pure, so
    sharing cannot change results — but visits every occurrence of every
    subtree.  Kept as the oracle for the interning property tests and for
    node-visit comparisons in the benchmarks.
    """
    return _evaluate(expr, env, None)


def _evaluate(expr: Expr, env: Mapping[str, int], memo: Optional[dict]) -> int:
    if memo is not None:
        cached = memo.get(expr)
        if cached is not None:
            return cached

    result = _evaluate_node(expr, env, memo)

    if memo is not None:
        memo[expr] = result
    return result


def _evaluate_node(expr: Expr, env: Mapping[str, int], memo: Optional[dict]) -> int:
    if isinstance(expr, Constant):
        return expr.value

    if isinstance(expr, InputField):
        if expr.path not in env:
            raise EvaluationError(f"no value for input field {expr.path!r}")
        return to_unsigned(env[expr.path], expr.width)

    if isinstance(expr, Unary):
        value = _evaluate(expr.operand, env, memo)
        if expr.op is Kind.NEG:
            return to_unsigned(-value, expr.width)
        if expr.op is Kind.NOT:
            return to_unsigned(~value, expr.width)
        if expr.op is Kind.LOGICAL_NOT:
            return 0 if value else 1
        raise EvaluationError(f"unknown unary operator {expr.op}")

    if isinstance(expr, Binary):
        return _evaluate_binary(expr, env, memo)

    if isinstance(expr, Extract):
        value = _evaluate(expr.operand, env, memo)
        return (value >> expr.lo) & _mask(expr.width)

    if isinstance(expr, Extend):
        value = _evaluate(expr.operand, env, memo)
        if expr.signed:
            return to_unsigned(to_signed(value, expr.operand.width), expr.width)
        return value

    if isinstance(expr, Concat):
        result = 0
        for part in expr.parts:
            result = (result << part.width) | _evaluate(part, env, memo)
        return result

    if isinstance(expr, Ite):
        if _evaluate(expr.cond, env, memo):
            return _evaluate(expr.then, env, memo)
        return _evaluate(expr.otherwise, env, memo)

    raise EvaluationError(f"unknown expression node {type(expr).__name__}")


def _evaluate_binary(expr: Binary, env: Mapping[str, int], memo: Optional[dict]) -> int:
    left = _evaluate(expr.left, env, memo)
    right = _evaluate(expr.right, env, memo)
    width = expr.left.width
    op = expr.op

    if op is Kind.ADD:
        return to_unsigned(left + right, width)
    if op is Kind.SUB:
        return to_unsigned(left - right, width)
    if op is Kind.MUL:
        return to_unsigned(left * right, width)
    if op is Kind.UDIV:
        if right == 0:
            return _mask(width)
        return left // right
    if op is Kind.SDIV:
        if right == 0:
            return _mask(width)
        sleft, sright = to_signed(left, width), to_signed(right, width)
        quotient = abs(sleft) // abs(sright)
        if (sleft < 0) != (sright < 0):
            quotient = -quotient
        return to_unsigned(quotient, width)
    if op is Kind.UREM:
        if right == 0:
            return left
        return left % right
    if op is Kind.SREM:
        if right == 0:
            return left
        sleft, sright = to_signed(left, width), to_signed(right, width)
        remainder = abs(sleft) % abs(sright)
        if sleft < 0:
            remainder = -remainder
        return to_unsigned(remainder, width)
    if op is Kind.AND:
        return left & right
    if op is Kind.OR:
        return left | right
    if op is Kind.XOR:
        return left ^ right
    if op is Kind.SHL:
        if right >= width:
            return 0
        return to_unsigned(left << right, width)
    if op is Kind.LSHR:
        if right >= width:
            return 0
        return left >> right
    if op is Kind.ASHR:
        sleft = to_signed(left, width)
        shift = min(right, width - 1)
        return to_unsigned(sleft >> shift, width)

    if op is Kind.EQ:
        return 1 if left == right else 0
    if op is Kind.NE:
        return 1 if left != right else 0
    if op is Kind.ULT:
        return 1 if left < right else 0
    if op is Kind.ULE:
        return 1 if left <= right else 0
    if op is Kind.UGT:
        return 1 if left > right else 0
    if op is Kind.UGE:
        return 1 if left >= right else 0
    if op in (Kind.SLT, Kind.SLE, Kind.SGT, Kind.SGE):
        sleft, sright = to_signed(left, width), to_signed(right, width)
        if op is Kind.SLT:
            return 1 if sleft < sright else 0
        if op is Kind.SLE:
            return 1 if sleft <= sright else 0
        if op is Kind.SGT:
            return 1 if sleft > sright else 0
        return 1 if sleft >= sright else 0

    if op is Kind.BOOL_AND:
        return 1 if left and right else 0
    if op is Kind.BOOL_OR:
        return 1 if left or right else 0

    raise EvaluationError(f"unknown binary operator {op}")
