"""Convenience constructors for symbolic expressions.

The VM instrumentation, the format layer, and the tests all build expressions
through these helpers instead of instantiating the dataclasses directly; the
helpers take care of width coercion (the most common source of bugs when
mirroring binary-level operations) and perform a little light folding so that
the shadow expressions produced during execution stay small.

Every constructor yields *interned* nodes: the node classes are hash-consed
at construction (see :mod:`repro.symbolic.expr`), so building the same
subexpression twice — here or via the dataclass constructors — returns the
same object, and equality/hashing are identity-cheap.  The helpers therefore
never need to (and must not) mutate nodes after construction.
"""

from __future__ import annotations

from .expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    Unary,
)


def const(value: int, width: int) -> Constant:
    """A constant bitvector of the given width."""
    return Constant(width=width, value=value)


def true() -> Constant:
    return Constant(width=1, value=1)


def false() -> Constant:
    return Constant(width=1, value=0)


def input_field(path: str, width: int) -> InputField:
    """A reference to a named input field."""
    return InputField(width=width, path=path)


def zext(expr: Expr, width: int) -> Expr:
    """Zero-extend ``expr`` to ``width`` (the paper's ``ToSize``)."""
    if width == expr.width:
        return expr
    if width < expr.width:
        return shrink(expr, width)
    if isinstance(expr, Constant):
        return const(expr.value, width)
    return Extend(width=width, operand=expr, signed=False)


def sext(expr: Expr, width: int) -> Expr:
    """Sign-extend ``expr`` to ``width``."""
    if width == expr.width:
        return expr
    if width < expr.width:
        return shrink(expr, width)
    if isinstance(expr, Constant):
        return const(expr.signed_value, width)
    return Extend(width=width, operand=expr, signed=True)


def shrink(expr: Expr, width: int) -> Expr:
    """Truncate ``expr`` to its low ``width`` bits (the paper's ``Shrink``)."""
    if width == expr.width:
        return expr
    if width > expr.width:
        return zext(expr, width)
    if isinstance(expr, Constant):
        return const(expr.value, width)
    return Extract(width=width, operand=expr, hi=width - 1, lo=0)


def extract(expr: Expr, hi: int, lo: int) -> Expr:
    """Extract bits ``[hi:lo]`` from ``expr``."""
    if lo == 0 and hi == expr.width - 1:
        return expr
    if isinstance(expr, Constant):
        return const(expr.value >> lo, hi - lo + 1)
    return Extract(width=hi - lo + 1, operand=expr, hi=hi, lo=lo)


def extract_high(expr: Expr, width: int) -> Expr:
    """Extract the top ``width`` bits of ``expr`` (the paper's ``ShrinkH``)."""
    return extract(expr, expr.width - 1, expr.width - width)


def extract_low(expr: Expr, width: int) -> Expr:
    """Extract the bottom ``width`` bits of ``expr`` (the paper's ``ShrinkL``)."""
    return extract(expr, width - 1, 0)


def concat(*parts: Expr) -> Expr:
    """Concatenate parts, most significant first."""
    flat: list[Expr] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    width = sum(part.width for part in flat)
    return Concat(width=width, parts=tuple(flat))


def _coerce(left: Expr, right: Expr | int, width: int | None = None) -> tuple[Expr, Expr]:
    """Bring two operands to a common width (zero-extending the narrower)."""
    if isinstance(right, int):
        right = const(right, width if width is not None else left.width)
    target = width if width is not None else max(left.width, right.width)
    return zext(left, target), zext(right, target)


def _binary(op: Kind, left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    left, right = _coerce(left, right, width)
    return Binary(width=left.width, op=op, left=left, right=right)


def add(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.ADD, left, right, width)


def sub(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.SUB, left, right, width)


def mul(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.MUL, left, right, width)


def udiv(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.UDIV, left, right, width)


def sdiv(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.SDIV, left, right, width)


def urem(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.UREM, left, right, width)


def srem(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.SREM, left, right, width)


def bvand(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.AND, left, right, width)


def bvor(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.OR, left, right, width)


def bvxor(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.XOR, left, right, width)


def shl(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.SHL, left, right, width)


def lshr(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.LSHR, left, right, width)


def ashr(left: Expr, right: Expr | int, width: int | None = None) -> Expr:
    return _binary(Kind.ASHR, left, right, width)


def neg(expr: Expr) -> Expr:
    return Unary(width=expr.width, op=Kind.NEG, operand=expr)


def bvnot(expr: Expr) -> Expr:
    return Unary(width=expr.width, op=Kind.NOT, operand=expr)


def _comparison(op: Kind, left: Expr, right: Expr | int) -> Expr:
    if isinstance(right, int):
        right = const(right, left.width)
    target = max(left.width, right.width)
    signed = op.is_signed
    left = sext(left, target) if signed else zext(left, target)
    right = sext(right, target) if signed else zext(right, target)
    return Binary(width=1, op=op, left=left, right=right)


def eq(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.EQ, left, right)


def ne(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.NE, left, right)


def ult(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.ULT, left, right)


def ule(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.ULE, left, right)


def ugt(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.UGT, left, right)


def uge(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.UGE, left, right)


def slt(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.SLT, left, right)


def sle(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.SLE, left, right)


def sgt(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.SGT, left, right)


def sge(left: Expr, right: Expr | int) -> Expr:
    return _comparison(Kind.SGE, left, right)


def logical_and(*operands: Expr) -> Expr:
    """Boolean conjunction of width-1 operands."""
    if not operands:
        return true()
    result = operands[0]
    for operand in operands[1:]:
        result = Binary(width=1, op=Kind.BOOL_AND, left=result, right=operand)
    return result


def logical_or(*operands: Expr) -> Expr:
    """Boolean disjunction of width-1 operands."""
    if not operands:
        return false()
    result = operands[0]
    for operand in operands[1:]:
        result = Binary(width=1, op=Kind.BOOL_OR, left=result, right=operand)
    return result


def logical_not(operand: Expr) -> Expr:
    """Boolean negation of a width-1 operand."""
    if isinstance(operand, Unary) and operand.op is Kind.LOGICAL_NOT:
        return operand.operand
    return Unary(width=1, op=Kind.LOGICAL_NOT, operand=operand)


def ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr:
    """If-then-else; branches are coerced to a common width."""
    width = max(then.width, otherwise.width)
    return Ite(width=width, cond=cond, then=zext(then, width), otherwise=zext(otherwise, width))


def is_nonzero(expr: Expr) -> Expr:
    """Convert a bitvector to a width-1 truth value (``expr != 0``)."""
    if expr.width == 1:
        return expr
    # A zero-extended boolean is non-zero exactly when the boolean is true.
    if isinstance(expr, Extend) and not expr.signed and expr.operand.width == 1:
        return expr.operand
    if (
        isinstance(expr, Concat)
        and expr.parts[-1].width == 1
        and all(
            isinstance(part, Constant) and part.value == 0 for part in expr.parts[:-1]
        )
    ):
        return expr.parts[-1]
    return ne(expr, const(0, expr.width))
