"""Application-independent symbolic bitvector expressions.

This package is the representation Code Phage uses to carry a check out of the
donor ("check excision") and into the recipient ("check translation"):
expression trees whose leaves are input fields and constants and whose
interior nodes are fixed-width bitvector operations.
"""

from . import builder
from .evaluate import EvaluationError, evaluate, evaluate_tree, to_signed, to_unsigned
from .expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    ExprError,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    NEGATED_COMPARISON,
    SWAPPED_COMPARISON,
    Unary,
    clear_intern_table,
    intern_table_size,
    structurally_equal,
)
from .metrics import (
    CheckSize,
    arithmetic_count,
    comparison_count,
    field_reference_count,
    leaf_count,
    operation_count,
    size_reduction,
)
from .printer import c_type_for_width, to_c_string, to_paper_string
from .simplify import (
    DEFAULT_OPTIONS,
    FIGURE5_RULES,
    SimplifyOptions,
    apply_figure5_rule,
    clear_simplify_cache,
    reset_simplify_cache_stats,
    simplify,
    simplify_cache_stats,
    simplify_reference,
)

__all__ = [
    "Binary",
    "Concat",
    "Constant",
    "CheckSize",
    "DEFAULT_OPTIONS",
    "EvaluationError",
    "Expr",
    "ExprError",
    "Extend",
    "Extract",
    "FIGURE5_RULES",
    "InputField",
    "Ite",
    "Kind",
    "NEGATED_COMPARISON",
    "SWAPPED_COMPARISON",
    "SimplifyOptions",
    "Unary",
    "apply_figure5_rule",
    "arithmetic_count",
    "builder",
    "c_type_for_width",
    "clear_intern_table",
    "clear_simplify_cache",
    "comparison_count",
    "evaluate",
    "evaluate_tree",
    "field_reference_count",
    "intern_table_size",
    "leaf_count",
    "operation_count",
    "reset_simplify_cache_stats",
    "simplify",
    "simplify_cache_stats",
    "simplify_reference",
    "size_reduction",
    "structurally_equal",
    "to_c_string",
    "to_paper_string",
    "to_signed",
    "to_unsigned",
]
