"""Metrics over symbolic expressions.

These back the "Check Size" column of the paper's Figure 8 (written there as
``X -> Y``: the number of operations in the excised application-independent
check versus the number of operations in the translated check inserted into
the recipient) and the rewrite-rule ablation benchmark.

All metrics count tree occurrences *with multiplicity* — Figure 8's check
size is a property of the expression tree, and interning must not change any
reported number.  Hash-consing (:mod:`repro.symbolic.expr`) nevertheless
makes them cheap: ``operation_count``/``leaf_count``/``depth`` are
precomputed on the node at interning time, and the remaining counters use an
identity-keyed memo so each distinct node of the DAG is visited once, even
when the tree it denotes is exponentially larger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .expr import (
    Binary,
    Expr,
    InputField,
    Kind,
    register_clear_callback,
)


@dataclass(frozen=True)
class CheckSize:
    """Size of a check before and after translation (the Fig. 8 ``X -> Y``)."""

    excised_ops: int
    translated_ops: int

    @property
    def reduction_factor(self) -> float:
        if self.translated_ops == 0:
            return float(self.excised_ops) if self.excised_ops else 1.0
        return self.excised_ops / self.translated_ops

    def __str__(self) -> str:
        return f"{self.excised_ops} -> {self.translated_ops}"


#: (metric tag, node) -> count with multiplicity; identity-keyed DAG memo.
_COUNT_MEMO: dict[tuple[str, Expr], int] = {}

register_clear_callback(_COUNT_MEMO.clear)


def _counted(tag: str, expr: Expr, own: Callable[[Expr], bool]) -> int:
    """Tree count of nodes satisfying ``own``, memoised per distinct node.

    Counts with multiplicity obey ``count(n) = own(n) + sum(count(child))``,
    so the memoised recursion returns exactly what a full tree walk would.
    """
    key = (tag, expr)
    cached = _COUNT_MEMO.get(key)
    if cached is not None:
        return cached
    total = (1 if own(expr) else 0) + sum(
        _counted(tag, child, own) for child in expr.children()
    )
    _COUNT_MEMO[key] = total
    return total


def operation_count(expr: Expr) -> int:
    """Number of operator nodes in ``expr`` (leaves do not count).  O(1)."""
    return expr.op_count()


def leaf_count(expr: Expr) -> int:
    """Number of leaf nodes (constants and input fields).  O(1)."""
    return expr._leaf_count


def field_reference_count(expr: Expr) -> int:
    """Number of input-field leaf occurrences (with multiplicity)."""
    return _counted("field-ref", expr, lambda node: isinstance(node, InputField))


def comparison_count(expr: Expr) -> int:
    """Number of comparison operators in ``expr``."""
    return _counted(
        "comparison",
        expr,
        lambda node: isinstance(node, Binary) and node.op.is_comparison,
    )


_ARITHMETIC = frozenset(
    {Kind.ADD, Kind.SUB, Kind.MUL, Kind.UDIV, Kind.SDIV, Kind.UREM, Kind.SREM}
)


def arithmetic_count(expr: Expr) -> int:
    """Number of arithmetic (non-bitwise, non-comparison) operators."""
    return _counted(
        "arithmetic",
        expr,
        lambda node: isinstance(node, Binary) and node.op in _ARITHMETIC,
    )


def size_reduction(before: Expr, after: Expr) -> CheckSize:
    """The Fig. 8-style size pair for an excised/translated check pair."""
    return CheckSize(excised_ops=operation_count(before), translated_ops=operation_count(after))
