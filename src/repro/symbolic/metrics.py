"""Metrics over symbolic expressions.

These back the "Check Size" column of the paper's Figure 8 (written there as
``X -> Y``: the number of operations in the excised application-independent
check versus the number of operations in the translated check inserted into
the recipient) and the rewrite-rule ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .expr import Binary, Constant, Expr, InputField, Kind


@dataclass(frozen=True)
class CheckSize:
    """Size of a check before and after translation (the Fig. 8 ``X -> Y``)."""

    excised_ops: int
    translated_ops: int

    @property
    def reduction_factor(self) -> float:
        if self.translated_ops == 0:
            return float(self.excised_ops) if self.excised_ops else 1.0
        return self.excised_ops / self.translated_ops

    def __str__(self) -> str:
        return f"{self.excised_ops} -> {self.translated_ops}"


def operation_count(expr: Expr) -> int:
    """Number of operator nodes in ``expr`` (leaves do not count)."""
    return expr.op_count()


def leaf_count(expr: Expr) -> int:
    """Number of leaf nodes (constants and input fields)."""
    return sum(1 for node in expr.walk() if isinstance(node, (Constant, InputField)))


def field_reference_count(expr: Expr) -> int:
    """Number of input-field leaf occurrences (with multiplicity)."""
    return sum(1 for node in expr.walk() if isinstance(node, InputField))


def comparison_count(expr: Expr) -> int:
    """Number of comparison operators in ``expr``."""
    return sum(
        1
        for node in expr.walk()
        if isinstance(node, Binary) and node.op.is_comparison
    )


def arithmetic_count(expr: Expr) -> int:
    """Number of arithmetic (non-bitwise, non-comparison) operators."""
    arithmetic = {Kind.ADD, Kind.SUB, Kind.MUL, Kind.UDIV, Kind.SDIV, Kind.UREM, Kind.SREM}
    return sum(1 for node in expr.walk() if isinstance(node, Binary) and node.op in arithmetic)


def size_reduction(before: Expr, after: Expr) -> CheckSize:
    """The Fig. 8-style size pair for an excised/translated check pair."""
    return CheckSize(excised_ops=operation_count(before), translated_ops=operation_count(after))
