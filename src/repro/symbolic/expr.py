"""Application-independent symbolic bitvector expressions.

Code Phage excises checks from donor applications as symbolic expressions
over *input fields*: the free variables are named fields of the input file
(e.g. ``/start_frame/content/height``) and the operators are fixed-width
bitvector operations, mirroring the expression trees that the paper's
Valgrind-based instrumentation reconstructs from binary executions.

The classes in this module form an immutable expression IR.  Every node has a
bit ``width``; arithmetic is modular at that width, and signed operators
interpret operands in two's complement.  Comparison and boolean nodes have
width 1.

The IR deliberately stays close to the paper's vocabulary (Section 2 shows
excised checks written with ``Constant``, ``HachField``, ``Add``, ``Shl``,
``BvAnd``, ``ToSize``, ``Shrink``, ``ULessEqual``...).  The textual form used
by the paper is produced by :mod:`repro.symbolic.printer`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class Kind(enum.Enum):
    """Operator kinds for unary, binary, and comparison nodes."""

    # Unary operators.
    NEG = "Neg"
    NOT = "BvNot"
    LOGICAL_NOT = "Not"

    # Binary arithmetic operators.
    ADD = "Add"
    SUB = "Sub"
    MUL = "Mul"
    UDIV = "Div"
    SDIV = "SDiv"
    UREM = "Rem"
    SREM = "SRem"

    # Binary bitwise operators.
    AND = "BvAnd"
    OR = "BvOr"
    XOR = "BvXor"
    SHL = "Shl"
    LSHR = "UShr"
    ASHR = "SShr"

    # Comparison operators (result width 1).
    EQ = "Equal"
    NE = "NotEqual"
    ULT = "ULess"
    ULE = "ULessEqual"
    UGT = "UGreater"
    UGE = "UGreaterEqual"
    SLT = "SLess"
    SLE = "SLessEqual"
    SGT = "SGreater"
    SGE = "SGreaterEqual"

    # Boolean connectives (operands and result width 1).
    BOOL_AND = "And"
    BOOL_OR = "Or"

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_boolean(self) -> bool:
        return self in (Kind.BOOL_AND, Kind.BOOL_OR, Kind.LOGICAL_NOT)

    @property
    def is_commutative(self) -> bool:
        return self in _COMMUTATIVE

    @property
    def is_signed(self) -> bool:
        return self in _SIGNED


_COMPARISONS = frozenset(
    {
        Kind.EQ,
        Kind.NE,
        Kind.ULT,
        Kind.ULE,
        Kind.UGT,
        Kind.UGE,
        Kind.SLT,
        Kind.SLE,
        Kind.SGT,
        Kind.SGE,
    }
)

_COMMUTATIVE = frozenset(
    {Kind.ADD, Kind.MUL, Kind.AND, Kind.OR, Kind.XOR, Kind.EQ, Kind.NE, Kind.BOOL_AND, Kind.BOOL_OR}
)

_SIGNED = frozenset({Kind.SDIV, Kind.SREM, Kind.ASHR, Kind.SLT, Kind.SLE, Kind.SGT, Kind.SGE})

#: Comparison kind -> its negation, used by the simplifier and patch renderer.
NEGATED_COMPARISON = {
    Kind.EQ: Kind.NE,
    Kind.NE: Kind.EQ,
    Kind.ULT: Kind.UGE,
    Kind.ULE: Kind.UGT,
    Kind.UGT: Kind.ULE,
    Kind.UGE: Kind.ULT,
    Kind.SLT: Kind.SGE,
    Kind.SLE: Kind.SGT,
    Kind.SGT: Kind.SLE,
    Kind.SGE: Kind.SLT,
}

#: Comparison kind -> the kind obtained by swapping the operands.
SWAPPED_COMPARISON = {
    Kind.EQ: Kind.EQ,
    Kind.NE: Kind.NE,
    Kind.ULT: Kind.UGT,
    Kind.ULE: Kind.UGE,
    Kind.UGT: Kind.ULT,
    Kind.UGE: Kind.ULE,
    Kind.SLT: Kind.SGT,
    Kind.SLE: Kind.SGE,
    Kind.SGT: Kind.SLT,
    Kind.SGE: Kind.SLE,
}


class ExprError(Exception):
    """Raised when an expression is constructed with inconsistent widths."""


@dataclass(frozen=True)
class Expr:
    """Base class for all symbolic expression nodes."""

    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ExprError(f"expression width must be positive, got {self.width}")

    # -- structural helpers -------------------------------------------------

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions of this node."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def fields(self) -> frozenset[str]:
        """Paths of every input field referenced by this expression."""
        return frozenset(
            node.path for node in self.walk() if isinstance(node, InputField)
        )

    def op_count(self) -> int:
        """Number of operator nodes (the paper's "check size" metric).

        Leaves (constants and input fields) do not count; every operator node
        (unary, binary, extract, extend, concat, ite) counts as one.
        """
        return sum(1 for node in self.walk() if not isinstance(node, (Constant, InputField)))

    def depth(self) -> int:
        """Height of the expression tree (a leaf has depth 1)."""
        kids = self.children()
        if not kids:
            return 1
        return 1 + max(child.depth() for child in kids)

    @property
    def is_boolean(self) -> bool:
        return self.width == 1

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from .printer import to_paper_string

        return to_paper_string(self)


@dataclass(frozen=True)
class Constant(Expr):
    """A literal bitvector constant of the given width."""

    value: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))

    @property
    def signed_value(self) -> int:
        """The value interpreted as a two's-complement signed integer."""
        if self.value >= 1 << (self.width - 1):
            return self.value - (1 << self.width)
        return self.value


@dataclass(frozen=True)
class InputField(Expr):
    """A named input field (the paper's ``HachField``/``Variable`` leaf).

    ``path`` is the Hachoir-style field path, e.g.
    ``/start_frame/content/height``; in raw mode it is ``/raw/offset_NN``.
    """

    path: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.path:
            raise ExprError("input field path must be non-empty")


@dataclass(frozen=True)
class Unary(Expr):
    """A unary operator application (negation, bitwise not, logical not)."""

    op: Kind = Kind.NEG
    operand: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.operand is None:
            raise ExprError("unary node requires an operand")
        if self.op is Kind.LOGICAL_NOT:
            if self.width != 1 or self.operand.width != 1:
                raise ExprError("logical not operates on width-1 expressions")
        elif self.operand.width != self.width:
            raise ExprError(
                f"unary {self.op.value}: operand width {self.operand.width} != node width {self.width}"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Binary(Expr):
    """A binary operator application.

    For arithmetic/bitwise kinds both operands and the result share the node
    width.  For comparisons and boolean connectives the result width is 1; the
    operand width of a comparison is recorded by the operands themselves.
    """

    op: Kind = Kind.ADD
    left: Expr = field(default=None)  # type: ignore[assignment]
    right: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.left is None or self.right is None:
            raise ExprError("binary node requires two operands")
        if self.left.width != self.right.width:
            raise ExprError(
                f"binary {self.op.value}: operand widths differ "
                f"({self.left.width} vs {self.right.width})"
            )
        if self.op.is_comparison or self.op.is_boolean:
            if self.width != 1:
                raise ExprError(f"{self.op.value} produces a width-1 result")
            if self.op.is_boolean and self.left.width != 1:
                raise ExprError(f"{self.op.value} operates on width-1 operands")
        elif self.left.width != self.width:
            raise ExprError(
                f"binary {self.op.value}: operand width {self.left.width} != node width {self.width}"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Extract(Expr):
    """Bit extraction ``operand[hi:lo]`` (inclusive bounds, lo is bit 0)."""

    operand: Expr = field(default=None)  # type: ignore[assignment]
    hi: int = 0
    lo: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.operand is None:
            raise ExprError("extract requires an operand")
        if not (0 <= self.lo <= self.hi < self.operand.width):
            raise ExprError(
                f"extract bounds [{self.hi}:{self.lo}] out of range for width {self.operand.width}"
            )
        if self.width != self.hi - self.lo + 1:
            raise ExprError("extract width must equal hi - lo + 1")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Extend(Expr):
    """Zero or sign extension of ``operand`` to a wider width.

    The paper writes zero extension as ``ToSize``/``Width`` and truncation as
    ``Shrink``; truncation is represented here as :class:`Extract` of the low
    bits (see :func:`repro.symbolic.builder.shrink`).
    """

    operand: Expr = field(default=None)  # type: ignore[assignment]
    signed: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.operand is None:
            raise ExprError("extend requires an operand")
        if self.width < self.operand.width:
            raise ExprError(
                f"extend target width {self.width} narrower than operand width {self.operand.width}"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Concat(Expr):
    """Concatenation of parts, most-significant part first.

    The Figure 5 rewrite rules reason about 16-bit values that are "a
    concatenation of two 8-bit bytes"; :class:`Concat` is the explicit
    representation of that shape.
    """

    parts: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.parts) < 2:
            raise ExprError("concat requires at least two parts")
        total = sum(part.width for part in self.parts)
        if total != self.width:
            raise ExprError(f"concat width {self.width} != sum of part widths {total}")

    def children(self) -> tuple[Expr, ...]:
        return self.parts


@dataclass(frozen=True)
class Ite(Expr):
    """If-then-else over bitvectors (used for conditional donor computations)."""

    cond: Expr = field(default=None)  # type: ignore[assignment]
    then: Expr = field(default=None)  # type: ignore[assignment]
    otherwise: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cond is None or self.then is None or self.otherwise is None:
            raise ExprError("ite requires condition, then, and otherwise operands")
        if self.cond.width != 1:
            raise ExprError("ite condition must have width 1")
        if self.then.width != self.width or self.otherwise.width != self.width:
            raise ExprError("ite branch widths must match node width")

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)


def structurally_equal(a: Expr, b: Expr) -> bool:
    """Deep structural equality (dataclass equality already provides this)."""
    return a == b
