"""Application-independent symbolic bitvector expressions, hash-consed.

Code Phage excises checks from donor applications as symbolic expressions
over *input fields*: the free variables are named fields of the input file
(e.g. ``/start_frame/content/height``) and the operators are fixed-width
bitvector operations, mirroring the expression trees that the paper's
Valgrind-based instrumentation reconstructs from binary executions.

The classes in this module form an immutable expression IR.  Every node has a
bit ``width``; arithmetic is modular at that width, and signed operators
interpret operands in two's complement.  Comparison and boolean nodes have
width 1.

The IR deliberately stays close to the paper's vocabulary (Section 2 shows
excised checks written with ``Constant``, ``HachField``, ``Add``, ``Shl``,
``BvAnd``, ``ToSize``, ``Shrink``, ``ULessEqual``...).  The textual form used
by the paper is produced by :mod:`repro.symbolic.printer`.

Hash-consing
------------

Every node is *interned*: constructing a node that is structurally equal to
one built earlier — through any path, the :mod:`repro.symbolic.builder`
helpers or the dataclass constructors directly — returns the **same object**.
The intern table lives in :class:`_InternMeta`, the metaclass of
:class:`Expr`, so interning is total: there is no way to obtain a
non-canonical node (unpickling re-interns via :meth:`Expr.__reduce__`).

Consequences the rest of the pipeline relies on:

* **Equality is identity.**  ``a == b`` iff ``a is b``; deep structural
  comparison is never needed.  ``__hash__`` returns a hash precomputed at
  interning time, so expressions are O(1) dictionary keys — which turns the
  memo tables in :mod:`repro.symbolic.simplify`,
  :mod:`repro.symbolic.evaluate`, :mod:`repro.symbolic.metrics`, and
  :mod:`repro.solver.bitblast` into true DAG traversals: a subtree shared by
  many parents is processed once, not once per occurrence.
* **Tree metrics are O(1).**  ``size``/``op_count``/``leaf_count``/``depth``
  are computed bottom-up at interning time from the (already interned)
  children.  They still count occurrences with multiplicity — the paper's
  "check size" metric is over the expression *tree* — but cost nothing to
  read.
* **Digests replace reprs as cache keys.**  :attr:`Expr.digest` is a
  content hash computed bottom-up from child digests; it is stable across
  processes and runs (unlike ``id``/interning order) and injective modulo
  SHA-1 collisions (unlike the paper-notation rendering).  The solver's
  persistent query cache and the sampling RNG are seeded from it.
* **Ordering is stable within a process.**  :attr:`Expr.intern_id` is a
  monotonically increasing creation index, usable as a deterministic sort
  key for nodes created in a fixed order.

The intern table holds strong references (worker processes are per-job and
short-lived; see :mod:`repro.campaign.scheduler`).  Long-running hosts can
call :func:`clear_intern_table`, which also flushes every registered
dependent memo table.  The table is not thread-safe; the concurrency model
of this codebase is multiprocessing, where each process owns its table.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Callable, Iterator


class Kind(enum.Enum):
    """Operator kinds for unary, binary, and comparison nodes."""

    # Unary operators.
    NEG = "Neg"
    NOT = "BvNot"
    LOGICAL_NOT = "Not"

    # Binary arithmetic operators.
    ADD = "Add"
    SUB = "Sub"
    MUL = "Mul"
    UDIV = "Div"
    SDIV = "SDiv"
    UREM = "Rem"
    SREM = "SRem"

    # Binary bitwise operators.
    AND = "BvAnd"
    OR = "BvOr"
    XOR = "BvXor"
    SHL = "Shl"
    LSHR = "UShr"
    ASHR = "SShr"

    # Comparison operators (result width 1).
    EQ = "Equal"
    NE = "NotEqual"
    ULT = "ULess"
    ULE = "ULessEqual"
    UGT = "UGreater"
    UGE = "UGreaterEqual"
    SLT = "SLess"
    SLE = "SLessEqual"
    SGT = "SGreater"
    SGE = "SGreaterEqual"

    # Boolean connectives (operands and result width 1).
    BOOL_AND = "And"
    BOOL_OR = "Or"

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_boolean(self) -> bool:
        return self in (Kind.BOOL_AND, Kind.BOOL_OR, Kind.LOGICAL_NOT)

    @property
    def is_commutative(self) -> bool:
        return self in _COMMUTATIVE

    @property
    def is_signed(self) -> bool:
        return self in _SIGNED


_COMPARISONS = frozenset(
    {
        Kind.EQ,
        Kind.NE,
        Kind.ULT,
        Kind.ULE,
        Kind.UGT,
        Kind.UGE,
        Kind.SLT,
        Kind.SLE,
        Kind.SGT,
        Kind.SGE,
    }
)

_COMMUTATIVE = frozenset(
    {Kind.ADD, Kind.MUL, Kind.AND, Kind.OR, Kind.XOR, Kind.EQ, Kind.NE, Kind.BOOL_AND, Kind.BOOL_OR}
)

_SIGNED = frozenset({Kind.SDIV, Kind.SREM, Kind.ASHR, Kind.SLT, Kind.SLE, Kind.SGT, Kind.SGE})

#: Comparison kind -> its negation, used by the simplifier and patch renderer.
NEGATED_COMPARISON = {
    Kind.EQ: Kind.NE,
    Kind.NE: Kind.EQ,
    Kind.ULT: Kind.UGE,
    Kind.ULE: Kind.UGT,
    Kind.UGT: Kind.ULE,
    Kind.UGE: Kind.ULT,
    Kind.SLT: Kind.SGE,
    Kind.SLE: Kind.SGT,
    Kind.SGT: Kind.SLE,
    Kind.SGE: Kind.SLT,
}

#: Comparison kind -> the kind obtained by swapping the operands.
SWAPPED_COMPARISON = {
    Kind.EQ: Kind.EQ,
    Kind.NE: Kind.NE,
    Kind.ULT: Kind.UGT,
    Kind.ULE: Kind.UGE,
    Kind.UGT: Kind.ULT,
    Kind.UGE: Kind.ULE,
    Kind.SLT: Kind.SGT,
    Kind.SLE: Kind.SGE,
    Kind.SGT: Kind.SLT,
    Kind.SGE: Kind.SLE,
}


class ExprError(Exception):
    """Raised when an expression is constructed with inconsistent widths."""


# ---------------------------------------------------------------------------
# Interning machinery
# ---------------------------------------------------------------------------

#: Structural key -> canonical node.  Strong references; see module docstring.
_INTERN_TABLE: dict[tuple, "Expr"] = {}

#: Callbacks run by :func:`clear_intern_table` so identity-keyed memo tables
#: elsewhere (simplify, metrics, blast-cost) release their node references in
#: lock-step with the intern table.
_CLEAR_CALLBACKS: list[Callable[[], None]] = []

_intern_counter = 0

#: Per-class field-name tuples: ``dataclasses.fields()`` re-derives its list
#: on every call, and ``_intern_key`` runs on *every* node construction — the
#: hottest path of symbolic tracking — so the names are computed once per
#: class here.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclass_fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def register_clear_callback(callback: Callable[[], None]) -> None:
    """Register a memo-flush hook invoked by :func:`clear_intern_table`."""
    _CLEAR_CALLBACKS.append(callback)


def clear_intern_table() -> None:
    """Drop all interned nodes and flush registered dependent memo tables.

    Nodes created before the clear remain valid expressions but will no
    longer be identical to structurally equal nodes created afterwards, so
    callers should not mix pre- and post-clear nodes.  Intended for tests
    and benchmarks that measure cold-cache behaviour.
    """
    _INTERN_TABLE.clear()
    for callback in _CLEAR_CALLBACKS:
        callback()


def intern_table_size() -> int:
    """Number of canonical nodes currently interned (tests/benchmarks)."""
    return len(_INTERN_TABLE)


class _InternMeta(type):
    """Metaclass routing every construction through the intern table.

    ``Binary(width=8, ...)`` first builds a candidate instance (running the
    dataclass ``__post_init__`` width validation), then looks up its
    structural key; on a hit the candidate is discarded and the canonical
    node returned, so object identity coincides with structural equality.
    """

    def __call__(cls, *args, **kwargs):
        # Fast path: when every field is supplied, the structural key can be
        # assembled straight from the arguments, so an intern hit skips the
        # candidate construction entirely.  ``Constant`` masks its value in
        # ``__post_init__``; the same mask is applied to keep keys canonical.
        names = _field_names(cls)
        key = None
        if len(args) + len(kwargs) == len(names):
            try:
                if not kwargs:
                    key = (cls,) + args
                elif not args:
                    key = (cls, *map(kwargs.__getitem__, names))
                else:
                    key = (cls,) + args + tuple(
                        map(kwargs.__getitem__, names[len(args):])
                    )
                if cls._masks_value:
                    key = (cls, key[1], key[2] & ((1 << key[1]) - 1))
                canonical = _INTERN_TABLE.get(key)
                if canonical is not None:
                    return canonical
            except (KeyError, TypeError, ValueError):
                key = None
        instance = super().__call__(*args, **kwargs)
        if key is None:
            key = instance._intern_key()
            canonical = _INTERN_TABLE.get(key)
            if canonical is not None:
                return canonical
        instance._finalize(key)
        # setdefault, not assignment: two threads racing past the miss above
        # both build a candidate, but only the first insert wins and *both*
        # receive the winner — a plain assignment would let the loser replace
        # the canonical node, silently breaking identity equality (and every
        # identity-keyed memo) for nodes the other thread already holds.
        return _INTERN_TABLE.setdefault(key, instance)


@dataclass(frozen=True, eq=False, repr=True)
class Expr(metaclass=_InternMeta):
    """Base class for all symbolic expression nodes (hash-consed)."""

    width: int

    #: Whether ``__post_init__`` masks the ``value`` field (``Constant``
    #: only); consulted by the metaclass intern fast path.
    _masks_value = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ExprError(f"expression width must be positive, got {self.width}")

    # -- interning ----------------------------------------------------------

    def _intern_key(self) -> tuple:
        """Structural identity key; children contribute by object identity."""
        return (type(self),) + tuple(
            getattr(self, name) for name in _field_names(type(self))
        )

    def _finalize(self, key: tuple) -> None:
        """Precompute hash and tree metrics; runs once, at interning time.

        Children are already canonical (construction is bottom-up), so their
        precomputed metrics are available and this is O(arity) per node.
        ``key`` is the structural key the metaclass already assembled.
        """
        global _intern_counter
        _intern_counter += 1
        kids = self.children()
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "intern_id", _intern_counter)
        object.__setattr__(self, "size", 1 + sum(k.size for k in kids))
        object.__setattr__(
            self,
            "_op_count",
            (0 if isinstance(self, (Constant, InputField)) else 1)
            + sum(k._op_count for k in kids),
        )
        object.__setattr__(
            self,
            "_leaf_count",
            (1 if isinstance(self, (Constant, InputField)) else 0)
            + sum(k._leaf_count for k in kids),
        )
        object.__setattr__(
            self, "_depth", 1 + max((k._depth for k in kids), default=0)
        )

    def __hash__(self) -> int:
        return self._hash

    # ``__eq__`` is inherited from object: identity.  Interning guarantees
    # structurally equal nodes are the same object, so this is structural
    # equality at pointer-comparison cost.

    def __reduce__(self):
        """Pickle/deepcopy through the constructor so copies re-intern."""
        return (
            type(self),
            tuple(getattr(self, name) for name in _field_names(type(self))),
        )

    @property
    def digest(self) -> str:
        """Process-independent content hash (hex), computed bottom-up.

        Unlike :attr:`intern_id` (creation order) or ``id()`` (address),
        the digest depends only on structure, so it is the right key for the
        cross-process persistent solver cache and for seeding sampling RNGs.
        Computed lazily and cached on the node.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha1(self._digest_payload().encode("utf-8")).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def _digest_payload(self) -> str:
        parts = [type(self).__name__, str(self.width)]
        for name in _field_names(type(self)):
            if name == "width":
                continue
            value = getattr(self, name)
            if isinstance(value, Expr):
                parts.append(value.digest)
            elif isinstance(value, tuple):
                parts.extend(item.digest for item in value)
            elif isinstance(value, Kind):
                parts.append(value.name)
            else:
                parts.append(repr(value))
        return "|".join(parts)

    # -- structural helpers -------------------------------------------------

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions of this node."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression *tree* (with multiplicity).

        A subtree shared by several parents is yielded once per occurrence;
        use :meth:`walk_unique` for DAG traversal.
        """
        yield self
        for child in self.children():
            yield from child.walk()

    def walk_unique(self) -> Iterator["Expr"]:
        """Each distinct node of the expression DAG exactly once (pre-order).

        Because nodes are interned, "distinct" is object identity; on checks
        with heavy subtree sharing this visits exponentially fewer nodes
        than :meth:`walk`.
        """
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            marker = id(node)
            if marker in seen:
                continue
            seen.add(marker)
            yield node
            stack.extend(reversed(node.children()))

    def fields(self) -> frozenset[str]:
        """Paths of every input field referenced by this expression.

        Cached on the node: interning makes the same expression object recur
        across branch records and insertion snapshots, so the DAG walk runs
        once per distinct node.
        """
        cached = self.__dict__.get("_fields")
        if cached is None:
            cached = frozenset(
                node.path
                for node in self.walk_unique()
                if isinstance(node, InputField)
            )
            object.__setattr__(self, "_fields", cached)
        return cached

    def op_count(self) -> int:
        """Number of operator nodes (the paper's "check size" metric).

        Leaves (constants and input fields) do not count; every operator node
        (unary, binary, extract, extend, concat, ite) counts as one, *with
        multiplicity* — the metric is over the tree, as in Figure 8.
        Precomputed at interning time; O(1).
        """
        return self._op_count

    def depth(self) -> int:
        """Height of the expression tree (a leaf has depth 1).  O(1)."""
        return self._depth

    @property
    def is_boolean(self) -> bool:
        return self.width == 1

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from .printer import to_paper_string

        return to_paper_string(self)


@dataclass(frozen=True, eq=False)
class Constant(Expr):
    """A literal bitvector constant of the given width."""

    value: int = 0

    _masks_value = True

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))

    @property
    def signed_value(self) -> int:
        """The value interpreted as a two's-complement signed integer."""
        if self.value >= 1 << (self.width - 1):
            return self.value - (1 << self.width)
        return self.value


@dataclass(frozen=True, eq=False)
class InputField(Expr):
    """A named input field (the paper's ``HachField``/``Variable`` leaf).

    ``path`` is the Hachoir-style field path, e.g.
    ``/start_frame/content/height``; in raw mode it is ``/raw/offset_NN``.
    """

    path: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.path:
            raise ExprError("input field path must be non-empty")


@dataclass(frozen=True, eq=False)
class Unary(Expr):
    """A unary operator application (negation, bitwise not, logical not)."""

    op: Kind = Kind.NEG
    operand: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.operand is None:
            raise ExprError("unary node requires an operand")
        if self.op is Kind.LOGICAL_NOT:
            if self.width != 1 or self.operand.width != 1:
                raise ExprError("logical not operates on width-1 expressions")
        elif self.operand.width != self.width:
            raise ExprError(
                f"unary {self.op.value}: operand width {self.operand.width} != node width {self.width}"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True, eq=False)
class Binary(Expr):
    """A binary operator application.

    For arithmetic/bitwise kinds both operands and the result share the node
    width.  For comparisons and boolean connectives the result width is 1; the
    operand width of a comparison is recorded by the operands themselves.
    """

    op: Kind = Kind.ADD
    left: Expr = field(default=None)  # type: ignore[assignment]
    right: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.left is None or self.right is None:
            raise ExprError("binary node requires two operands")
        if self.left.width != self.right.width:
            raise ExprError(
                f"binary {self.op.value}: operand widths differ "
                f"({self.left.width} vs {self.right.width})"
            )
        if self.op.is_comparison or self.op.is_boolean:
            if self.width != 1:
                raise ExprError(f"{self.op.value} produces a width-1 result")
            if self.op.is_boolean and self.left.width != 1:
                raise ExprError(f"{self.op.value} operates on width-1 operands")
        elif self.left.width != self.width:
            raise ExprError(
                f"binary {self.op.value}: operand width {self.left.width} != node width {self.width}"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Extract(Expr):
    """Bit extraction ``operand[hi:lo]`` (inclusive bounds, lo is bit 0)."""

    operand: Expr = field(default=None)  # type: ignore[assignment]
    hi: int = 0
    lo: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.operand is None:
            raise ExprError("extract requires an operand")
        if not (0 <= self.lo <= self.hi < self.operand.width):
            raise ExprError(
                f"extract bounds [{self.hi}:{self.lo}] out of range for width {self.operand.width}"
            )
        if self.width != self.hi - self.lo + 1:
            raise ExprError("extract width must equal hi - lo + 1")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True, eq=False)
class Extend(Expr):
    """Zero or sign extension of ``operand`` to a wider width.

    The paper writes zero extension as ``ToSize``/``Width`` and truncation as
    ``Shrink``; truncation is represented here as :class:`Extract` of the low
    bits (see :func:`repro.symbolic.builder.shrink`).
    """

    operand: Expr = field(default=None)  # type: ignore[assignment]
    signed: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.operand is None:
            raise ExprError("extend requires an operand")
        if self.width < self.operand.width:
            raise ExprError(
                f"extend target width {self.width} narrower than operand width {self.operand.width}"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True, eq=False)
class Concat(Expr):
    """Concatenation of parts, most-significant part first.

    The Figure 5 rewrite rules reason about 16-bit values that are "a
    concatenation of two 8-bit bytes"; :class:`Concat` is the explicit
    representation of that shape.
    """

    parts: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.parts) < 2:
            raise ExprError("concat requires at least two parts")
        total = sum(part.width for part in self.parts)
        if total != self.width:
            raise ExprError(f"concat width {self.width} != sum of part widths {total}")

    def children(self) -> tuple[Expr, ...]:
        return self.parts


@dataclass(frozen=True, eq=False)
class Ite(Expr):
    """If-then-else over bitvectors (used for conditional donor computations)."""

    cond: Expr = field(default=None)  # type: ignore[assignment]
    then: Expr = field(default=None)  # type: ignore[assignment]
    otherwise: Expr = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cond is None or self.then is None or self.otherwise is None:
            raise ExprError("ite requires condition, then, and otherwise operands")
        if self.cond.width != 1:
            raise ExprError("ite condition must have width 1")
        if self.then.width != self.width or self.otherwise.width != self.width:
            raise ExprError("ite branch widths must match node width")

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)


def structurally_equal(a: Expr, b: Expr) -> bool:
    """Deep structural equality (identity, thanks to hash-consing)."""
    return a is b
