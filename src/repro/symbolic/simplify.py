"""Simplification of excised symbolic expressions.

Section 3.2 of the paper describes *bit manipulation optimizations* applied as
symbolic expressions are recorded: rewrite rules that simplify the shift/mask
patterns binaries use to extract, align, or combine operands (Figure 5).  The
rules matter because they "disentangle bytes from adjacent input fields that
were read into the same word" and dramatically shrink the excised expressions.

This module provides:

* :class:`SimplifyOptions` — feature switches (used by the rewrite-rule
  ablation benchmark to reproduce the paper's "rules on/off" claim),
* :func:`simplify` — the main entry point, a post-order pass combining
  constant folding, algebraic identities, and a general *bit-slice
  normalisation* that subsumes the four Figure 5 rules, and
* :func:`apply_figure5_rule` / :data:`FIGURE5_RULES` — literal implementations
  of the paper's four rules, kept separate so they can be tested and
  documented one-to-one against the figure.

Soundness contract: for every expression ``e`` and environment ``env``,
``evaluate(simplify(e), env) == evaluate(e, env)``.  This is enforced by
property-based tests in ``tests/symbolic/test_simplify_properties.py``.

Memoisation
-----------

Expressions are hash-consed (:mod:`repro.symbolic.expr`), so a node can be
used as an O(1) identity dictionary key.  :func:`simplify` exploits that with
a process-wide memo table keyed by ``(options, node)``: a subtree shared by
many parents — or appearing in many queries, which is the common case when
the rewrite stage compares one excised check against dozens of recipient
names — is simplified exactly once per process.  The memo makes the pass a
DAG traversal; the un-memoised tree-walking algorithm is preserved as
:func:`simplify_reference` and property tests assert both always return the
same canonical node.  :func:`simplify_cache_stats` exposes hit/visit
counters for the interning benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from . import builder
from .evaluate import to_signed, to_unsigned
from .expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    NEGATED_COMPARISON,
    Unary,
    register_clear_callback,
)


@dataclass(frozen=True)
class SimplifyOptions:
    """Feature switches for the simplifier.

    ``bit_slicing`` corresponds to the paper's Figure 5 family of rules (and
    their generalisations to other operand sizes); ``constant_folding`` and
    ``algebraic_identities`` are the unconditional clean-ups any symbolic
    tracker performs.  The ablation benchmark disables ``bit_slicing`` to
    measure its effect on excised-check size.
    """

    constant_folding: bool = True
    algebraic_identities: bool = True
    bit_slicing: bool = True
    max_slice_width: int = 128

    @classmethod
    def none(cls) -> "SimplifyOptions":
        return cls(constant_folding=False, algebraic_identities=False, bit_slicing=False)

    @classmethod
    def without_bit_slicing(cls) -> "SimplifyOptions":
        return cls(bit_slicing=False)


DEFAULT_OPTIONS = SimplifyOptions()


# ---------------------------------------------------------------------------
# Bit-slice analysis
# ---------------------------------------------------------------------------
#
# A *slice vector* describes each bit of an expression as either a constant
# (0/1) or bit ``index`` of an *atom* expression.  Expressions built from
# concatenation, extraction, constant shifts, zero extension, and disjoint
# or/and/xor with constants have exact slice vectors; any other expression is
# its own (opaque) atom.  Rebuilding a minimal expression from the slice
# vector performs, in one uniform step, all of the Figure 5 disentanglement
# rules and their generalisations to 8/16/32/64-bit combinations.

_CONST_ZERO = ("const", 0)
_CONST_ONE = ("const", 1)


def _atom_bits(expr: Expr) -> list[tuple]:
    return [("atom", expr, i) for i in range(expr.width)]


def _const_bits(value: int, width: int) -> list[tuple]:
    return [_CONST_ONE if (value >> i) & 1 else _CONST_ZERO for i in range(width)]


def _bit_slices(expr: Expr, options: SimplifyOptions) -> list[tuple]:
    """Slice vector for ``expr``, least-significant bit first."""
    if expr.width > options.max_slice_width:
        return _atom_bits(expr)

    if isinstance(expr, Constant):
        return _const_bits(expr.value, expr.width)

    if isinstance(expr, InputField):
        return _atom_bits(expr)

    if isinstance(expr, Concat):
        bits: list[tuple] = []
        for part in reversed(expr.parts):
            bits.extend(_bit_slices(part, options))
        return bits

    if isinstance(expr, Extract):
        inner = _bit_slices(expr.operand, options)
        return inner[expr.lo : expr.hi + 1]

    if isinstance(expr, Extend):
        inner = _bit_slices(expr.operand, options)
        pad = expr.width - expr.operand.width
        if expr.signed:
            top = inner[-1]
            if top in (_CONST_ZERO, _CONST_ONE):
                return inner + [top] * pad
            return _atom_bits(expr)
        return inner + [_CONST_ZERO] * pad

    if isinstance(expr, Binary):
        op = expr.op
        if op in (Kind.SHL, Kind.LSHR) and isinstance(expr.right, Constant):
            inner = _bit_slices(expr.left, options)
            shift = expr.right.value
            if shift >= expr.width:
                return _const_bits(0, expr.width)
            if op is Kind.SHL:
                return [_CONST_ZERO] * shift + inner[: expr.width - shift]
            return inner[shift:] + [_CONST_ZERO] * shift
        if op in (Kind.AND, Kind.OR, Kind.XOR):
            left = _bit_slices(expr.left, options)
            right = _bit_slices(expr.right, options)
            combined = _combine_bitwise(op, left, right)
            if combined is not None:
                return combined

    return _atom_bits(expr)


def _combine_bitwise(op: Kind, left: list[tuple], right: list[tuple]) -> Optional[list[tuple]]:
    """Bitwise combination of slice vectors; None when bits genuinely mix."""
    result: list[tuple] = []
    for l_bit, r_bit in zip(left, right):
        l_const = l_bit if l_bit in (_CONST_ZERO, _CONST_ONE) else None
        r_const = r_bit if r_bit in (_CONST_ZERO, _CONST_ONE) else None
        if op is Kind.AND:
            if l_const is _CONST_ZERO or r_const is _CONST_ZERO:
                result.append(_CONST_ZERO)
            elif l_const is _CONST_ONE:
                result.append(r_bit)
            elif r_const is _CONST_ONE:
                result.append(l_bit)
            elif l_bit == r_bit:
                result.append(l_bit)
            else:
                return None
        elif op is Kind.OR:
            if l_const is _CONST_ONE or r_const is _CONST_ONE:
                result.append(_CONST_ONE)
            elif l_const is _CONST_ZERO:
                result.append(r_bit)
            elif r_const is _CONST_ZERO:
                result.append(l_bit)
            elif l_bit == r_bit:
                result.append(l_bit)
            else:
                return None
        else:  # XOR
            if l_const is not None and r_const is not None:
                bit = (l_const is _CONST_ONE) ^ (r_const is _CONST_ONE)
                result.append(_CONST_ONE if bit else _CONST_ZERO)
            elif l_const is _CONST_ZERO:
                result.append(r_bit)
            elif r_const is _CONST_ZERO:
                result.append(l_bit)
            else:
                return None
    return result


def _rebuild_from_slices(bits: Sequence[tuple]) -> Expr:
    """Reassemble the smallest Concat/Extract expression matching ``bits``."""
    pieces: list[Expr] = []  # most significant first, built in reverse below
    index = 0
    segments: list[Expr] = []
    while index < len(bits):
        bit = bits[index]
        if bit in (_CONST_ZERO, _CONST_ONE):
            value = 0
            count = 0
            while index < len(bits) and bits[index] in (_CONST_ZERO, _CONST_ONE):
                if bits[index] is _CONST_ONE:
                    value |= 1 << count
                count += 1
                index += 1
            segments.append(builder.const(value, count))
        else:
            _, atom, start = bit
            count = 1
            while (
                index + count < len(bits)
                and bits[index + count][0] == "atom"
                and bits[index + count][1] == atom
                and bits[index + count][2] == start + count
            ):
                count += 1
            segments.append(builder.extract(atom, start + count - 1, start))
            index += count
    # segments are least-significant first; Concat wants most-significant first.
    pieces = list(reversed(segments))
    if len(pieces) == 1:
        return pieces[0]
    # Prefer a zero extension over an explicit concatenation with a leading
    # zero constant: it reads like the paper's ToSize and interacts better
    # with the boolean unwrapping rules.
    if isinstance(pieces[0], Constant) and pieces[0].value == 0:
        total_width = sum(piece.width for piece in pieces)
        low = pieces[1] if len(pieces) == 2 else builder.concat(*pieces[1:])
        return builder.zext(low, total_width)
    return builder.concat(*pieces)


def _slice_normalise(expr: Expr, options: SimplifyOptions) -> Expr:
    bits = _bit_slices(expr, options)
    rebuilt = _rebuild_from_slices(bits)
    if rebuilt.width != expr.width:
        rebuilt = builder.zext(rebuilt, expr.width)
    # Prefer the rebuilt form only if it is no larger than the original.
    if rebuilt.op_count() <= expr.op_count():
        return rebuilt
    return expr


# ---------------------------------------------------------------------------
# Constant folding and algebraic identities
# ---------------------------------------------------------------------------


def _fold_constants(expr: Expr) -> Expr:
    """Fold nodes whose operands are all constants."""
    from .evaluate import evaluate

    if isinstance(expr, (Constant, InputField)):
        return expr
    if all(isinstance(child, Constant) for child in expr.children()):
        try:
            return builder.const(evaluate(expr, {}), expr.width)
        except Exception:  # pragma: no cover - defensive; evaluation is total here
            return expr
    return expr


def _algebraic(expr: Expr) -> Expr:
    """Local algebraic identities (identity/absorbing elements, double ops)."""
    if isinstance(expr, Unary):
        if expr.op is Kind.LOGICAL_NOT:
            inner = expr.operand
            if isinstance(inner, Unary) and inner.op is Kind.LOGICAL_NOT:
                return inner.operand
            if isinstance(inner, Binary) and inner.op in NEGATED_COMPARISON:
                return Binary(
                    width=1,
                    op=NEGATED_COMPARISON[inner.op],
                    left=inner.left,
                    right=inner.right,
                )
            if isinstance(inner, Constant):
                return builder.const(0 if inner.value else 1, 1)
        if expr.op is Kind.NEG and isinstance(expr.operand, Unary) and expr.operand.op is Kind.NEG:
            return expr.operand.operand
        if expr.op is Kind.NOT and isinstance(expr.operand, Unary) and expr.operand.op is Kind.NOT:
            return expr.operand.operand
        return expr

    if isinstance(expr, Extend):
        inner = expr.operand
        if isinstance(inner, Extend) and inner.signed == expr.signed:
            return Extend(width=expr.width, operand=inner.operand, signed=expr.signed)
        if not expr.signed and isinstance(inner, Extend) and not inner.signed:
            return Extend(width=expr.width, operand=inner.operand, signed=False)
        return expr

    if isinstance(expr, Extract):
        inner = expr.operand
        if isinstance(inner, Extract):
            return builder.extract(inner.operand, inner.lo + expr.hi, inner.lo + expr.lo)
        if isinstance(inner, Extend) and not inner.signed and expr.hi < inner.operand.width:
            return builder.extract(inner.operand, expr.hi, expr.lo)
        if isinstance(inner, Extend) and not inner.signed and expr.lo >= inner.operand.width:
            return builder.const(0, expr.width)
        return expr

    if not isinstance(expr, Binary):
        return expr

    op, left, right = expr.op, expr.left, expr.right
    zero = Constant(width=left.width, value=0) if left.width else None
    all_ones = (1 << left.width) - 1

    if op is Kind.ADD:
        if isinstance(right, Constant) and right.value == 0:
            return left
        if isinstance(left, Constant) and left.value == 0:
            return right
    elif op is Kind.SUB:
        if isinstance(right, Constant) and right.value == 0:
            return left
        if left == right:
            return zero
    elif op is Kind.MUL:
        if isinstance(right, Constant):
            if right.value == 1:
                return left
            if right.value == 0:
                return zero
        if isinstance(left, Constant):
            if left.value == 1:
                return right
            if left.value == 0:
                return zero
    elif op in (Kind.UDIV, Kind.SDIV):
        if isinstance(right, Constant) and right.value == 1:
            return left
    elif op is Kind.AND:
        if isinstance(right, Constant):
            if right.value == 0:
                return zero
            if right.value == all_ones:
                return left
        if isinstance(left, Constant):
            if left.value == 0:
                return zero
            if left.value == all_ones:
                return right
        if left == right:
            return left
    elif op is Kind.OR:
        if isinstance(right, Constant):
            if right.value == 0:
                return left
            if right.value == all_ones:
                return right
        if isinstance(left, Constant):
            if left.value == 0:
                return right
            if left.value == all_ones:
                return left
        if left == right:
            return left
    elif op is Kind.XOR:
        if isinstance(right, Constant) and right.value == 0:
            return left
        if isinstance(left, Constant) and left.value == 0:
            return right
        if left == right:
            return zero
    elif op in (Kind.SHL, Kind.LSHR, Kind.ASHR):
        if isinstance(right, Constant) and right.value == 0:
            return left
        if isinstance(left, Constant) and left.value == 0 and op is not Kind.ASHR:
            return zero
    elif op is Kind.BOOL_AND:
        if isinstance(right, Constant):
            return left if right.value else builder.false()
        if isinstance(left, Constant):
            return right if left.value else builder.false()
        if left == right:
            return left
    elif op is Kind.BOOL_OR:
        if isinstance(right, Constant):
            return builder.true() if right.value else left
        if isinstance(left, Constant):
            return builder.true() if left.value else right
        if left == right:
            return left
    elif op.is_comparison:
        folded = _fold_comparison_with_range(expr)
        if folded is not None:
            return folded

    return expr


def _fold_comparison_with_range(expr: Binary) -> Optional[Expr]:
    """Fold comparisons that are tautological at the operand width."""
    left, right, op = expr.left, expr.right, expr.op
    width = left.width
    max_unsigned = (1 << width) - 1
    # (zext(b) != 0) == b and (zext(b) == 0) == !b for width-1 b: these arise
    # from C code that stores a comparison result in an int and branches on it.
    if isinstance(right, Constant) and right.value == 0 and op in (Kind.NE, Kind.EQ):
        if isinstance(left, Extend) and not left.signed and left.operand.width == 1:
            inner = left.operand
            return inner if op is Kind.NE else builder.logical_not(inner)
    if isinstance(right, Constant):
        if op is Kind.ULE and right.value == max_unsigned:
            return builder.true()
        if op is Kind.UGT and right.value == max_unsigned:
            return builder.false()
        if op is Kind.UGE and right.value == 0:
            return builder.true()
        if op is Kind.ULT and right.value == 0:
            return builder.false()
    if isinstance(left, Constant):
        if op is Kind.UGE and left.value == max_unsigned:
            return builder.true()
        if op is Kind.ULE and left.value == 0:
            return builder.true()
    if left == right:
        if op in (Kind.EQ, Kind.ULE, Kind.UGE, Kind.SLE, Kind.SGE):
            return builder.true()
        if op in (Kind.NE, Kind.ULT, Kind.UGT, Kind.SLT, Kind.SGT):
            return builder.false()
    return None


# ---------------------------------------------------------------------------
# Main simplification entry point
# ---------------------------------------------------------------------------


def _rebuild(expr: Expr, children: Sequence[Expr]) -> Expr:
    """Recreate ``expr`` with new children (widths are preserved by construction)."""
    if isinstance(expr, Unary):
        return Unary(width=expr.width, op=expr.op, operand=children[0])
    if isinstance(expr, Binary):
        return Binary(width=expr.width, op=expr.op, left=children[0], right=children[1])
    if isinstance(expr, Extract):
        return Extract(width=expr.width, operand=children[0], hi=expr.hi, lo=expr.lo)
    if isinstance(expr, Extend):
        return Extend(width=expr.width, operand=children[0], signed=expr.signed)
    if isinstance(expr, Concat):
        return Concat(width=expr.width, parts=tuple(children))
    if isinstance(expr, Ite):
        return Ite(width=expr.width, cond=children[0], then=children[1], otherwise=children[2])
    return expr


#: Process-wide memo: (options, interned node) -> simplified interned node.
#: Holds strong references; flushed together with the intern table.
_SIMPLIFY_MEMO: dict[tuple[SimplifyOptions, Expr], Expr] = {}

#: Hit/visit counters for the interning benchmarks.  ``visits`` counts nodes
#: actually simplified (memo misses); ``hits`` counts memo short-circuits.
_STATS = {"visits": 0, "hits": 0}


def simplify_cache_stats() -> dict[str, int]:
    """Snapshot of the simplify memo counters (``visits``/``hits``)."""
    return dict(_STATS)


def reset_simplify_cache_stats() -> None:
    _STATS["visits"] = 0
    _STATS["hits"] = 0


def clear_simplify_cache() -> None:
    """Flush the memo (also triggered by ``expr.clear_intern_table``)."""
    _SIMPLIFY_MEMO.clear()


register_clear_callback(clear_simplify_cache)


def simplify(expr: Expr, options: SimplifyOptions = DEFAULT_OPTIONS) -> Expr:
    """Simplify ``expr`` while preserving its value under every environment.

    Memoised over the expression DAG: shared subtrees (within this call or
    across any earlier call in the process) are simplified once.
    """
    return _simplify(expr, options, _SIMPLIFY_MEMO)


def simplify_reference(expr: Expr, options: SimplifyOptions = DEFAULT_OPTIONS) -> Expr:
    """Un-memoised reference simplification (pure tree traversal).

    Runs the identical rewrite logic without consulting or populating the
    memo table; the interning property tests assert it always returns the
    same canonical node as :func:`simplify`.
    """
    return _simplify(expr, options, None)


def _simplify(
    expr: Expr, options: SimplifyOptions, memo: Optional[dict[tuple[SimplifyOptions, Expr], Expr]]
) -> Expr:
    if memo is not None:
        key = (options, expr)
        cached = memo.get(key)
        if cached is not None:
            _STATS["hits"] += 1
            return cached
    _STATS["visits"] += 1
    original = expr

    children = expr.children()
    if children:
        new_children = tuple(_simplify(child, options, memo) for child in children)
        if new_children != children:
            expr = _rebuild(expr, new_children)

    if options.constant_folding:
        expr = _fold_constants(expr)
    if options.algebraic_identities:
        previous = None
        while previous != expr:
            previous = expr
            expr = _algebraic(expr)
            if options.constant_folding:
                expr = _fold_constants(expr)
    if options.bit_slicing and not isinstance(expr, (Constant, InputField)):
        if expr.op_count() and not expr.is_boolean:
            expr = _slice_normalise(expr, options)

    if memo is not None:
        memo[(options, original)] = expr
    return expr


# ---------------------------------------------------------------------------
# Literal Figure 5 rules
# ---------------------------------------------------------------------------
#
# The four rules of Figure 5, stated for 16-bit values E that are the
# concatenation of two independent 8-bit bytes [b1, b2] (b1 = high byte):
#
#   ShrinkH(8, Shl(8, E))   =>  b2
#   ShrinkL(8, Shr(8, E))   =>  b1
#   BvOrH(b1, Shr(8, E'))   =>  [b1, b2]   where E' = [b2, b3]
#   BvOrL(b1, Shl(8, E'))   =>  [b3, b1]   where E' = [b2, b3]
#
# They are implemented here exactly as stated so that tests can check the
# reproduction one-to-one against the paper; ``simplify`` subsumes them via
# bit-slice normalisation.


def _as_byte_pair(expr: Expr) -> Optional[tuple[Expr, Expr]]:
    """Match ``expr`` against the shape [b1, b2]: a 16-bit concat of two bytes."""
    if isinstance(expr, Concat) and expr.width == 16 and len(expr.parts) == 2:
        high, low = expr.parts
        if high.width == 8 and low.width == 8:
            return high, low
    return None


def rule_shrink_high_of_shl(expr: Expr) -> Optional[Expr]:
    """ShrinkH(8, Shl(8, [b1, b2])) => b2."""
    if not (isinstance(expr, Extract) and expr.width == 8):
        return None
    inner = expr.operand
    if not (isinstance(inner, Binary) and inner.op is Kind.SHL and inner.width == 16):
        return None
    if not (isinstance(inner.right, Constant) and inner.right.value == 8):
        return None
    if expr.lo != 8 or expr.hi != 15:
        return None
    pair = _as_byte_pair(inner.left)
    if pair is None:
        return None
    return pair[1]


def rule_shrink_low_of_shr(expr: Expr) -> Optional[Expr]:
    """ShrinkL(8, Shr(8, [b1, b2])) => b1."""
    if not (isinstance(expr, Extract) and expr.width == 8 and expr.lo == 0 and expr.hi == 7):
        return None
    inner = expr.operand
    if not (isinstance(inner, Binary) and inner.op is Kind.LSHR and inner.width == 16):
        return None
    if not (isinstance(inner.right, Constant) and inner.right.value == 8):
        return None
    pair = _as_byte_pair(inner.left)
    if pair is None:
        return None
    return pair[0]


def rule_bvor_high_of_shr(expr: Expr) -> Optional[Expr]:
    """BvOrH(b1, Shr(8, [b2, b3])) => [b1, b2]."""
    if not (isinstance(expr, Binary) and expr.op is Kind.OR and expr.width == 16):
        return None
    for new_byte, shifted in ((expr.left, expr.right), (expr.right, expr.left)):
        if not (
            isinstance(new_byte, Binary)
            and new_byte.op is Kind.SHL
            and isinstance(new_byte.right, Constant)
            and new_byte.right.value == 8
            and isinstance(new_byte.left, Extend)
            and not new_byte.left.signed
            and new_byte.left.operand.width == 8
        ):
            continue
        if not (
            isinstance(shifted, Binary)
            and shifted.op is Kind.LSHR
            and isinstance(shifted.right, Constant)
            and shifted.right.value == 8
        ):
            continue
        pair = _as_byte_pair(shifted.left)
        if pair is None:
            continue
        return builder.concat(new_byte.left.operand, pair[0])
    return None


def rule_bvor_low_of_shl(expr: Expr) -> Optional[Expr]:
    """BvOrL(b1, Shl(8, [b2, b3])) => [b3, b1]."""
    if not (isinstance(expr, Binary) and expr.op is Kind.OR and expr.width == 16):
        return None
    for new_byte, shifted in ((expr.left, expr.right), (expr.right, expr.left)):
        if not (isinstance(new_byte, Extend) and not new_byte.signed and new_byte.operand.width == 8):
            continue
        if not (
            isinstance(shifted, Binary)
            and shifted.op is Kind.SHL
            and isinstance(shifted.right, Constant)
            and shifted.right.value == 8
        ):
            continue
        pair = _as_byte_pair(shifted.left)
        if pair is None:
            continue
        return builder.concat(pair[1], new_byte.operand)
    return None


FIGURE5_RULES: tuple[Callable[[Expr], Optional[Expr]], ...] = (
    rule_shrink_high_of_shl,
    rule_shrink_low_of_shr,
    rule_bvor_high_of_shr,
    rule_bvor_low_of_shl,
)


def apply_figure5_rule(expr: Expr) -> Optional[Expr]:
    """Apply the first matching Figure 5 rule to ``expr``, or return None."""
    for rule in FIGURE5_RULES:
        result = rule(expr)
        if result is not None:
            return result
    return None
