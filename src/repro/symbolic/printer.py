"""Renderers for symbolic expressions.

Two textual forms are produced:

* :func:`to_paper_string` — the prefix form used throughout the paper
  (``ULessEqual(32, Mul(64, ...), Constant(536870911))``), suitable for
  logging excised checks and for the EXPERIMENTS.md report.
* :func:`to_c_string` — a C-like infix form, used when a check expressed over
  *recipient paths* is rendered into the final source patch
  (see :mod:`repro.core.patch`).
"""

from __future__ import annotations

from .expr import (
    Binary,
    Concat,
    Constant,
    Expr,
    Extend,
    Extract,
    InputField,
    Ite,
    Kind,
    Unary,
)

_PAPER_UNARY = {
    Kind.NEG: "Neg",
    Kind.NOT: "BvNot",
    Kind.LOGICAL_NOT: "Not",
}

_C_BINARY = {
    Kind.ADD: "+",
    Kind.SUB: "-",
    Kind.MUL: "*",
    Kind.UDIV: "/",
    Kind.SDIV: "/",
    Kind.UREM: "%",
    Kind.SREM: "%",
    Kind.AND: "&",
    Kind.OR: "|",
    Kind.XOR: "^",
    Kind.SHL: "<<",
    Kind.LSHR: ">>",
    Kind.ASHR: ">>",
    Kind.EQ: "==",
    Kind.NE: "!=",
    Kind.ULT: "<",
    Kind.ULE: "<=",
    Kind.UGT: ">",
    Kind.UGE: ">=",
    Kind.SLT: "<",
    Kind.SLE: "<=",
    Kind.SGT: ">",
    Kind.SGE: ">=",
    Kind.BOOL_AND: "&&",
    Kind.BOOL_OR: "||",
}

_C_TYPE_FOR_WIDTH = {
    1: "int",
    8: "unsigned char",
    16: "unsigned short",
    32: "unsigned int",
    64: "unsigned long long",
}


def to_paper_string(expr: Expr) -> str:
    """Render ``expr`` in the paper's prefix notation."""
    if isinstance(expr, Constant):
        if expr.value > 255:
            return f"Constant({hex(expr.value)})"
        return f"Constant({expr.value})"
    if isinstance(expr, InputField):
        return f"HachField({expr.width},'{expr.path}')"
    if isinstance(expr, Unary):
        return f"{_PAPER_UNARY[expr.op]}({expr.width},{to_paper_string(expr.operand)})"
    if isinstance(expr, Binary):
        width = expr.left.width if (expr.op.is_comparison or expr.op.is_boolean) else expr.width
        return (
            f"{expr.op.value}({width},"
            f"{to_paper_string(expr.left)},{to_paper_string(expr.right)})"
        )
    if isinstance(expr, Extract):
        if expr.lo == 0:
            return f"Shrink({expr.width},{to_paper_string(expr.operand)})"
        return f"Extract({expr.hi},{expr.lo},{to_paper_string(expr.operand)})"
    if isinstance(expr, Extend):
        name = "SExt" if expr.signed else "ToSize"
        return f"{name}({expr.width},{to_paper_string(expr.operand)})"
    if isinstance(expr, Concat):
        inner = ",".join(to_paper_string(part) for part in expr.parts)
        return f"Concat({expr.width},{inner})"
    if isinstance(expr, Ite):
        return (
            f"Ite({expr.width},{to_paper_string(expr.cond)},"
            f"{to_paper_string(expr.then)},{to_paper_string(expr.otherwise)})"
        )
    raise TypeError(f"cannot render {type(expr).__name__}")


def c_type_for_width(width: int, signed: bool = False) -> str:
    """The C type CP uses to materialise a value of the given bit width."""
    base = _C_TYPE_FOR_WIDTH.get(width)
    if base is None:
        # Round up to the next supported width.
        for candidate in (8, 16, 32, 64):
            if width <= candidate:
                base = _C_TYPE_FOR_WIDTH[candidate]
                break
        else:
            base = _C_TYPE_FOR_WIDTH[64]
    if signed and base.startswith("unsigned "):
        return base[len("unsigned ") :]
    return base


def to_c_string(expr: Expr, name_for_field=None) -> str:
    """Render ``expr`` as a C expression.

    ``name_for_field`` maps an :class:`InputField` path to the C-level name to
    emit (a recipient data-structure path such as ``dinfo.output_width``); by
    default the field path itself is emitted.
    """

    def render(node: Expr) -> str:
        if isinstance(node, Constant):
            suffix = "ULL" if node.width > 32 else ""
            return f"{node.value}{suffix}"
        if isinstance(node, InputField):
            if name_for_field is not None:
                return str(name_for_field(node.path))
            return node.path
        if isinstance(node, Unary):
            if node.op is Kind.NEG:
                return f"(-{render(node.operand)})"
            if node.op is Kind.NOT:
                return f"(~{render(node.operand)})"
            return f"(!{render(node.operand)})"
        if isinstance(node, Binary):
            op = _C_BINARY[node.op]
            left, right = render(node.left), render(node.right)
            if node.op.is_signed and not node.op.is_comparison:
                cast = c_type_for_width(node.width, signed=True)
                return f"(({cast}) {left} {op} ({cast}) {right})"
            return f"({left} {op} {right})"
        if isinstance(node, Extract):
            inner = render(node.operand)
            cast = c_type_for_width(node.width)
            if node.lo == 0:
                return f"(({cast}) ({inner}))"
            mask = (1 << node.width) - 1
            return f"(({cast}) (({inner} >> {node.lo}) & {mask}))"
        if isinstance(node, Extend):
            cast = c_type_for_width(node.width, signed=node.signed)
            return f"(({cast}) {render(node.operand)})"
        if isinstance(node, Concat):
            pieces = []
            shift = node.width
            cast = c_type_for_width(node.width)
            for part in node.parts:
                shift -= part.width
                rendered = f"(({cast}) {render(part)})"
                if shift:
                    pieces.append(f"({rendered} << {shift})")
                else:
                    pieces.append(rendered)
            return "(" + " | ".join(pieces) + ")"
        if isinstance(node, Ite):
            return f"({render(node.cond)} ? {render(node.then)} : {render(node.otherwise)})"
        raise TypeError(f"cannot render {type(node).__name__}")

    return render(expr)
